//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the e1–e7 benches link
//! against this miniature instead: [`Criterion::benchmark_group`],
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input` + [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The harness is honest but simple: per benchmark it warms up for the
//! configured time, then takes `sample_size` wall-clock samples (each sized
//! to fill `measurement_time / sample_size`) and prints min/median/mean.
//! There is no statistical outlier analysis, HTML report, or saved baseline.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as upstream criterion provides.
pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free arg.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".json"));
        Criterion { filter, ran: 0 }
    }
}

impl Criterion {
    /// Mirror of upstream's CLI hookup; the shim parses args in `default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Upstream prints a summary at exit; the shim prints per-bench lines
    /// as they finish, so this only flags a filter that matched nothing —
    /// otherwise an empty run is indistinguishable from success.
    pub fn final_summary(&mut self) {
        if self.ran == 0 {
            if let Some(filter) = &self.filter {
                eprintln!("warning: no benchmarks matched filter {filter:?}");
            }
        }
    }
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (upstream default 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement begins.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Total measurement duration budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
        self.criterion.ran += 1;
    }
}

/// Passed to benchmark closures; `iter` performs the measurement.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean duration of one routine call, per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then taking the configured number
    /// of samples. Each sample runs the routine enough times to cover its
    /// share of the measurement budget, so very fast routines still get
    /// resolvable timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and calibrate how long one call takes.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_call.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<60} (no samples — closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<60} min {:>12} med {:>12} mean {:>12} ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            sorted.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirror of `criterion::criterion_group!` — defines a function running each
/// target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Mirror of `criterion::criterion_main!` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_formats() {
        let mut c = Criterion {
            filter: None,
            ran: 0,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(10));
        let mut ran = false;
        group.bench_function("tiny", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42usize, |b, n| {
            b.iter(|| black_box(*n) + 1)
        });
        group.finish();
        assert!(ran);
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
    }
}
