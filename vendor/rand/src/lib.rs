//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! crate we vendor a tiny, API-compatible replacement: [`rngs::StdRng`]
//! (seedable from a `u64`, backed by xoshiro256**), the [`Rng`] extension
//! trait with `gen`, `gen_bool` and `gen_range` over integer and float
//! ranges, and [`SeedableRng`].
//!
//! Determinism is the only contract the workspace relies on: the same seed
//! always yields the same stream. The streams do **not** match upstream
//! `rand`'s ChaCha-based `StdRng` — all in-repo golden values were produced
//! with this shim.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from the full value domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`. Panics on empty ranges,
    /// matching `rand` 0.8.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*}
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // `start + x*(end-start)` can round up to `end` when the endpoints
        // sit at large-ulp magnitudes; clamp to keep the range half-open.
        (self.start + f64::sample_standard(rng) * (self.end - self.start)).min(self.end.next_down())
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value whose type implements [`Standard`].
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`. Panics unless `p ∈ [0, 1]`,
    /// matching `rand` 0.8.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Same seed ⇒ same stream, on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_range_stays_half_open_at_large_ulp() {
        // ulp(1e16) is 2.0, so an unclamped lerp returns the excluded end
        // on about half of all draws.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(1e16f64..1e16 + 2.0);
            assert!(
                (1e16..1e16 + 2.0).contains(&v),
                "v={v} escaped the half-open range"
            );
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
