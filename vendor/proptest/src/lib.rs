//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides an
//! API-compatible miniature: the [`strategy::Strategy`] trait with
//! `prop_map`/`boxed`, strategies for integer/float ranges, tuples, `Just`,
//! `any`, character-class regex strings and [`collection::vec`], plus the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`]
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number and message;
//!   reruns are deterministic (the seed is derived from the test path, or
//!   `PROPTEST_SEED` when set), so failures reproduce exactly;
//! * regex strategies support only `[class]{lo,hi}` patterns (character
//!   classes with ranges and `\n`/`\t`/`\\` escapes), which is all the
//!   workspace's generators need.

#![deny(unsafe_code)]

/// Test-runner configuration and the deterministic RNG behind every strategy.
pub mod test_runner {
    use std::fmt;

    /// Mirror of `proptest::test_runner::Config` — only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case (produced by `prop_assert!`-style macros).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Shorthand for a property body's result type.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Extracts a human-readable message from a `catch_unwind` payload.
    /// Used by the `proptest!` macro; not part of the upstream API.
    #[doc(hidden)]
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else {
            "panicked with a non-string payload".to_string()
        }
    }

    /// Deterministic splitmix64 stream seeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from `PROPTEST_SEED` if set, else from a hash of `test_path`
        /// so distinct tests explore distinct streams but reruns repeat.
        pub fn from_env(test_path: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                // A set-but-invalid seed must not silently fall back: the
                // user believes they are reproducing a specific stream.
                match seed.parse::<u64>() {
                    Ok(seed) => return TestRng { state: seed },
                    Err(e) => panic!("PROPTEST_SEED={seed:?} is not a u64: {e}"),
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be positive.
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and the combinators built on it.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values — the heart of proptest's API.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous alternatives can share
        /// a `Vec` (see [`Union`] / `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*}
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // Clamp: the lerp can round up to `end` at large-ulp magnitudes,
            // and the range contract is half-open.
            (self.start + rng.next_f64() * (self.end - self.start)).min(self.end.next_down())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*}
    }
    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    }

    /// `&'static str` as a `[class]{lo,hi}` regex strategy producing `String`s.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "unsupported regex strategy {self:?} (shim supports only `[class]{{lo,hi}}`)"
                )
            });
            let len = lo + rng.index(hi - lo + 1);
            (0..len)
                .map(|_| alphabet[rng.index(alphabet.len())])
                .collect()
        }
    }

    /// Parses `[chars]{lo,hi}` into (alphabet, lo, hi). Returns `None` on
    /// anything the shim does not support.
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = {
            // Find the unescaped closing bracket.
            let mut idx = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == ']' {
                    idx = Some(i);
                    break;
                }
            }
            idx?
        };
        let class: Vec<char> = {
            let mut out = Vec::new();
            let mut chars = rest[..close].chars().peekable();
            while let Some(c) = chars.next() {
                let c = if c == '\\' {
                    match chars.next()? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                } else {
                    c
                };
                // `a-z` range (a `-` not followed by a class member is literal).
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next();
                    match lookahead.next() {
                        Some(end) if end != ']' => {
                            chars = lookahead;
                            let end = if end == '\\' { chars.next()? } else { end };
                            for v in (c as u32)..=(end as u32) {
                                out.extend(char::from_u32(v));
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                out.push(c);
            }
            out
        };
        if class.is_empty() {
            return None;
        }
        let reps = &rest[close + 1..];
        let (lo, hi) = if reps.is_empty() {
            (1, 1)
        } else {
            let body = reps.strip_prefix('{')?.strip_suffix('}')?;
            let (a, b) = body.split_once(',')?;
            (a.trim().parse().ok()?, b.trim().parse().ok()?)
        };
        if lo > hi {
            return None;
        }
        Some((class, lo, hi))
    }
}

/// `any::<T>()` — full-domain values with a bias toward edge cases.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias: edge values show up often, as upstream's do.
                    match rng.next_u64() % 8 {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        4 => (rng.next_u64() % 256) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*}
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Mirror of `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let len = self.size.start + rng.index(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size` (half-open, as upstream).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property-test file conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among heterogeneous strategies sharing a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`, minus shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_env(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // catch_unwind so a panicking body (an `.unwrap()` inside a
                // property) still reports which case triggered it.
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        },
                    ),
                );
                let __failure: ::core::option::Option<::std::string::String> = match __outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {
                        ::core::option::Option::None
                    }
                    ::core::result::Result::Ok(::core::result::Result::Err(__e)) => {
                        ::core::option::Option::Some(__e.to_string())
                    }
                    ::core::result::Result::Err(__payload) => ::core::option::Option::Some(
                        $crate::test_runner::panic_message(__payload.as_ref()),
                    ),
                };
                if let ::core::option::Option::Some(__msg) = __failure {
                    ::core::panic!(
                        "proptest case {}/{} of `{}` failed: {}\n(deterministic seed — rerun reproduces; set PROPTEST_SEED to explore)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Asserts within a property body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_generates_within_alphabet() {
        let mut rng = TestRng::from_env("shim::class");
        let strat = "[a-c\\n\\t\"\\\\]{0,12}";
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 12);
            for c in s.chars() {
                assert!(
                    matches!(c, 'a'..='c' | '\n' | '\t' | '"' | '\\'),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..8, 10i64..20), v in crate::collection::vec(0usize..5, 0..6)) {
            prop_assert!(a < 8);
            prop_assert!((10..20).contains(&b));
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x < 5, "x = {x}");
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (5i64..9).prop_map(|v| v * 10), any::<i64>()]) {
            // Any i64 is fine; the point is that heterogeneous alternatives compile.
            let _ = x;
        }

        /// A panicking body (e.g. an `.unwrap()`) must still be attributed
        /// to its case, not abort with a bare panic.
        #[test]
        #[should_panic(expected = "proptest case 1/64 of `body_panic_reports_case` failed: panicked: boom")]
        fn body_panic_reports_case(x in 0u8..4) {
            let _ = x;
            panic!("boom");
        }
    }
}
