//! Property suite for the CSR triple store: on random graphs, every
//! index-backed read path must agree with a naive full-scan oracle over the
//! triple list, across **all eight pattern shapes** and across every way the
//! store can be in — pure bulk load, pure incremental inserts (delta
//! resident), bulk-then-incremental (CSR runs plus delta), and explicitly
//! compacted. This pins down the tentpole invariant of the storage rework:
//! the sorted-columns/delta-buffer split is invisible to readers.
//!
//! The sharded-vs-flat oracle extends the same bar across shard counts
//! {1, 2, 7, 16}: a subject-hash-partitioned graph built through the same
//! insertion sequence must be **bit-identical** to the flat store on every
//! read — exact `triples()`/`matching()` sequences (not just sets), counts,
//! and summary statistics — in all four storage states.

use proptest::prelude::*;
use rdfcube::{Graph, Term, Triple, TriplePattern};

/// Shard counts under test: flat, even split, prime, power of two.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// A random triple spec over a small closed universe, so that patterns
/// probe both present and absent components and collisions are common.
fn arb_spec() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..12, 0u8..6, 0u8..12), 0..80)
}

fn term(kind: &str, n: u8) -> Term {
    Term::iri(format!("{kind}{n}"))
}

/// Builds the same graph four ways:
/// 1. per-triple inserts only (everything in the delta buffer);
/// 2. bulk load of the whole batch;
/// 3. bulk load of the first half, per-triple inserts for the rest
///    (CSR runs + live delta — the insert-then-bulk-merge path);
/// 4. variant 3 followed by an explicit `compact()`.
fn build_all_ways(spec: &[(u8, u8, u8)]) -> Vec<Graph> {
    build_all_ways_sharded(spec, 1)
}

/// [`build_all_ways`] into an `n_shards`-way subject-hash-partitioned
/// graph, through the **same insertion sequence** — so the dictionaries
/// (and therefore the `TermId`s) are identical to the flat build and every
/// read can be compared bit-for-bit.
fn build_all_ways_sharded(spec: &[(u8, u8, u8)], n_shards: usize) -> Vec<Graph> {
    let mut incremental = Graph::with_shards(n_shards);
    for &(s, p, o) in spec {
        incremental.insert(&term("s", s), &term("p", p), &term("o", o));
    }

    let mut bulk = Graph::with_shards(n_shards);
    let batch: Vec<Triple> = spec
        .iter()
        .map(|&(s, p, o)| {
            Triple::new(
                bulk.encode(&term("s", s)),
                bulk.encode(&term("p", p)),
                bulk.encode(&term("o", o)),
            )
        })
        .collect();
    bulk.bulk_insert_ids(batch);

    let mut mixed = Graph::with_shards(n_shards);
    let half = spec.len() / 2;
    let first: Vec<Triple> = spec[..half]
        .iter()
        .map(|&(s, p, o)| {
            Triple::new(
                mixed.encode(&term("s", s)),
                mixed.encode(&term("p", p)),
                mixed.encode(&term("o", o)),
            )
        })
        .collect();
    mixed.bulk_insert_ids(first);
    for &(s, p, o) in &spec[half..] {
        mixed.insert(&term("s", s), &term("p", p), &term("o", o));
    }

    let mut compacted = mixed.clone();
    compacted.compact();
    assert_eq!(compacted.pending_delta_len(), 0);

    vec![incremental, bulk, mixed, compacted]
}

/// Decoded, sorted triple list — the graph's content independent of id
/// assignment order, comparable across differently-built dictionaries.
fn content(g: &Graph) -> Vec<String> {
    let mut out: Vec<String> = g
        .triples()
        .map(|t| {
            let (s, p, o) = g.decode(t);
            format!("{s} {p} {o}")
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// All construction paths produce the same graph.
    #[test]
    fn construction_paths_agree(spec in arb_spec()) {
        let graphs = build_all_ways(&spec);
        let reference = content(&graphs[0]);
        for (i, g) in graphs.iter().enumerate() {
            prop_assert_eq!(content(g), reference.clone(), "construction path {}", i);
            prop_assert_eq!(g.len(), reference.len(), "len of path {}", i);
        }
    }

    /// `matching` and `count_matching` agree with a full-scan oracle for all
    /// eight pattern shapes, in every storage state.
    #[test]
    fn matching_agrees_with_full_scan_oracle(spec in arb_spec(), probe in 0usize..80) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            if all.is_empty() {
                prop_assert_eq!(g.count_matching(TriplePattern::default()), 0);
                continue;
            }
            let t = all[probe % all.len()];
            for mask in 0u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(t.s),
                    (mask & 2 != 0).then_some(t.p),
                    (mask & 4 != 0).then_some(t.o),
                );
                let mut via_index = g.matching(pat);
                let mut via_scan: Vec<Triple> =
                    all.iter().copied().filter(|x| pat.matches(x)).collect();
                via_index.sort();
                via_scan.sort();
                prop_assert_eq!(
                    &via_index, &via_scan,
                    "path {} shape {:#05b} mismatch", i, mask
                );
                prop_assert_eq!(
                    g.count_matching(pat), via_scan.len(),
                    "path {} shape {:#05b} count", i, mask
                );
            }
        }
    }

    /// Pattern shapes probed with components *absent* from the graph return
    /// empty results instead of panicking or over-matching, in every state.
    #[test]
    fn absent_components_match_nothing(spec in arb_spec()) {
        for g in build_all_ways(&spec) {
            // An id the dictionary never handed out: the offset tables are
            // shorter than it, which the range guards must absorb.
            let ghost = rdfcube::TermId((g.dict().len() + 7) as u32);
            for mask in 1u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(ghost),
                    (mask & 2 != 0).then_some(ghost),
                    (mask & 4 != 0).then_some(ghost),
                );
                prop_assert_eq!(g.matching(pat).len(), 0);
                prop_assert_eq!(g.count_matching(pat), 0);
            }
        }
    }

    /// Summary statistics (distinct subjects/predicates/objects, per-predicate
    /// counts) agree with the oracle in every storage state.
    #[test]
    fn summary_statistics_agree_with_oracle(spec in arb_spec()) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            let distinct = |f: fn(&Triple) -> rdfcube::TermId| {
                let mut ids: Vec<_> = all.iter().map(f).collect();
                ids.sort();
                ids.dedup();
                ids.len()
            };
            prop_assert_eq!(g.subject_count(), distinct(|t| t.s), "subjects, path {}", i);
            prop_assert_eq!(g.predicate_count(), distinct(|t| t.p), "predicates, path {}", i);
            prop_assert_eq!(g.object_count(), distinct(|t| t.o), "objects, path {}", i);
            let total: usize = g.predicate_counts().iter().map(|(_, n)| n).sum();
            prop_assert_eq!(total, g.len(), "predicate_counts sum, path {}", i);
            for (p, n) in g.predicate_counts() {
                let oracle = all.iter().filter(|t| t.p == p).count();
                prop_assert_eq!(n, oracle, "count of predicate {} on path {}", p, i);
            }
        }
    }

    /// The sharded-vs-flat oracle: for every tested shard count and every
    /// storage state, the sharded graph is bit-identical to the flat one —
    /// exact enumeration sequences for `triples()` and all eight
    /// `matching()` shapes (order included), all counts, and all summary
    /// statistics; and the per-shard statistics partition the store.
    #[test]
    fn sharded_reads_bit_identical_to_flat(spec in arb_spec(), probe in 0usize..80) {
        let flat = build_all_ways(&spec);
        for &n in &SHARD_COUNTS[1..] {
            let sharded = build_all_ways_sharded(&spec, n);
            for (state, (f, g)) in flat.iter().zip(&sharded).enumerate() {
                prop_assert_eq!(g.shard_count(), n);
                prop_assert_eq!(g.len(), f.len(), "len, state {} @ {}", state, n);
                prop_assert_eq!(
                    g.pending_delta_len(), f.pending_delta_len(),
                    "delta, state {} @ {}", state, n
                );
                let seq: Vec<Triple> = f.triples().collect();
                prop_assert_eq!(
                    &g.triples().collect::<Vec<_>>(), &seq,
                    "triples() order, state {} @ {}", state, n
                );
                prop_assert_eq!(g.subject_count(), f.subject_count());
                prop_assert_eq!(g.predicate_count(), f.predicate_count());
                prop_assert_eq!(g.object_count(), f.object_count());
                prop_assert_eq!(g.predicate_counts(), f.predicate_counts());

                // Per-shard statistics partition the store exactly.
                let len_sum: usize = (0..n).map(|w| g.shard_len(w)).sum();
                prop_assert_eq!(len_sum, g.len(), "shard_len sum, state {}", state);
                let subj_sum: usize = (0..n).map(|w| g.shard_subject_count(w)).sum();
                prop_assert_eq!(subj_sum, g.subject_count(), "subject sum, state {}", state);

                if seq.is_empty() {
                    continue;
                }
                let t = seq[probe % seq.len()];
                for mask in 0u8..8 {
                    let pat = TriplePattern::new(
                        (mask & 1 != 0).then_some(t.s),
                        (mask & 2 != 0).then_some(t.p),
                        (mask & 4 != 0).then_some(t.o),
                    );
                    // Order-sensitive equality: the k-way shard merge must
                    // reproduce the flat enumeration exactly.
                    prop_assert_eq!(
                        g.matching(pat), f.matching(pat),
                        "matching() order, state {} shape {:#05b} @ {}", state, mask, n
                    );
                    prop_assert_eq!(g.count_matching(pat), f.count_matching(pat));
                    let shard_sum: usize =
                        (0..n).map(|w| g.count_matching_in_shard(w, pat)).sum();
                    prop_assert_eq!(
                        shard_sum, g.count_matching(pat),
                        "shard count sum, state {} shape {:#05b}", state, mask
                    );
                }
            }
        }
    }

    /// `objects` / `subjects` enumerations agree with the oracle, including
    /// values that only live in the delta buffer.
    #[test]
    fn adjacency_enumeration_agrees(spec in arb_spec(), probe in 0usize..80) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            if all.is_empty() {
                continue;
            }
            let t = all[probe % all.len()];
            let mut objs: Vec<_> = g.objects(t.s, t.p).collect();
            let mut objs_oracle: Vec<_> = all
                .iter()
                .filter(|x| x.s == t.s && x.p == t.p)
                .map(|x| x.o)
                .collect();
            objs.sort();
            objs_oracle.sort();
            prop_assert_eq!(objs, objs_oracle, "objects, path {}", i);

            let mut subs: Vec<_> = g.subjects(t.p, t.o).collect();
            let mut subs_oracle: Vec<_> = all
                .iter()
                .filter(|x| x.p == t.p && x.o == t.o)
                .map(|x| x.s)
                .collect();
            subs.sort();
            subs_oracle.sort();
            prop_assert_eq!(subs, subs_oracle, "subjects, path {}", i);
        }
    }
}
