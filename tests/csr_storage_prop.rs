//! Property suite for the CSR triple store: on random graphs, every
//! index-backed read path must agree with a naive full-scan oracle over the
//! triple list, across **all eight pattern shapes** and across every way the
//! store can be in — pure bulk load, pure incremental inserts (delta
//! resident), bulk-then-incremental (CSR runs plus delta), and explicitly
//! compacted. This pins down the tentpole invariant of the storage rework:
//! the sorted-columns/delta-buffer split is invisible to readers.

use proptest::prelude::*;
use rdfcube::{Graph, Term, Triple, TriplePattern};

/// A random triple spec over a small closed universe, so that patterns
/// probe both present and absent components and collisions are common.
fn arb_spec() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..12, 0u8..6, 0u8..12), 0..80)
}

fn term(kind: &str, n: u8) -> Term {
    Term::iri(format!("{kind}{n}"))
}

/// Builds the same graph four ways:
/// 1. per-triple inserts only (everything in the delta buffer);
/// 2. bulk load of the whole batch;
/// 3. bulk load of the first half, per-triple inserts for the rest
///    (CSR runs + live delta — the insert-then-bulk-merge path);
/// 4. variant 3 followed by an explicit `compact()`.
fn build_all_ways(spec: &[(u8, u8, u8)]) -> Vec<Graph> {
    let mut incremental = Graph::new();
    for &(s, p, o) in spec {
        incremental.insert(&term("s", s), &term("p", p), &term("o", o));
    }

    let mut bulk = Graph::new();
    let batch: Vec<Triple> = spec
        .iter()
        .map(|&(s, p, o)| {
            Triple::new(
                bulk.encode(&term("s", s)),
                bulk.encode(&term("p", p)),
                bulk.encode(&term("o", o)),
            )
        })
        .collect();
    bulk.bulk_insert_ids(batch);

    let mut mixed = Graph::new();
    let half = spec.len() / 2;
    let first: Vec<Triple> = spec[..half]
        .iter()
        .map(|&(s, p, o)| {
            Triple::new(
                mixed.encode(&term("s", s)),
                mixed.encode(&term("p", p)),
                mixed.encode(&term("o", o)),
            )
        })
        .collect();
    mixed.bulk_insert_ids(first);
    for &(s, p, o) in &spec[half..] {
        mixed.insert(&term("s", s), &term("p", p), &term("o", o));
    }

    let mut compacted = mixed.clone();
    compacted.compact();
    assert_eq!(compacted.pending_delta_len(), 0);

    vec![incremental, bulk, mixed, compacted]
}

/// Decoded, sorted triple list — the graph's content independent of id
/// assignment order, comparable across differently-built dictionaries.
fn content(g: &Graph) -> Vec<String> {
    let mut out: Vec<String> = g
        .triples()
        .map(|t| {
            let (s, p, o) = g.decode(t);
            format!("{s} {p} {o}")
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// All construction paths produce the same graph.
    #[test]
    fn construction_paths_agree(spec in arb_spec()) {
        let graphs = build_all_ways(&spec);
        let reference = content(&graphs[0]);
        for (i, g) in graphs.iter().enumerate() {
            prop_assert_eq!(content(g), reference.clone(), "construction path {}", i);
            prop_assert_eq!(g.len(), reference.len(), "len of path {}", i);
        }
    }

    /// `matching` and `count_matching` agree with a full-scan oracle for all
    /// eight pattern shapes, in every storage state.
    #[test]
    fn matching_agrees_with_full_scan_oracle(spec in arb_spec(), probe in 0usize..80) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            if all.is_empty() {
                prop_assert_eq!(g.count_matching(TriplePattern::default()), 0);
                continue;
            }
            let t = all[probe % all.len()];
            for mask in 0u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(t.s),
                    (mask & 2 != 0).then_some(t.p),
                    (mask & 4 != 0).then_some(t.o),
                );
                let mut via_index = g.matching(pat);
                let mut via_scan: Vec<Triple> =
                    all.iter().copied().filter(|x| pat.matches(x)).collect();
                via_index.sort();
                via_scan.sort();
                prop_assert_eq!(
                    &via_index, &via_scan,
                    "path {} shape {:#05b} mismatch", i, mask
                );
                prop_assert_eq!(
                    g.count_matching(pat), via_scan.len(),
                    "path {} shape {:#05b} count", i, mask
                );
            }
        }
    }

    /// Pattern shapes probed with components *absent* from the graph return
    /// empty results instead of panicking or over-matching, in every state.
    #[test]
    fn absent_components_match_nothing(spec in arb_spec()) {
        for g in build_all_ways(&spec) {
            // An id the dictionary never handed out: the offset tables are
            // shorter than it, which the range guards must absorb.
            let ghost = rdfcube::TermId((g.dict().len() + 7) as u32);
            for mask in 1u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(ghost),
                    (mask & 2 != 0).then_some(ghost),
                    (mask & 4 != 0).then_some(ghost),
                );
                prop_assert_eq!(g.matching(pat).len(), 0);
                prop_assert_eq!(g.count_matching(pat), 0);
            }
        }
    }

    /// Summary statistics (distinct subjects/predicates/objects, per-predicate
    /// counts) agree with the oracle in every storage state.
    #[test]
    fn summary_statistics_agree_with_oracle(spec in arb_spec()) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            let distinct = |f: fn(&Triple) -> rdfcube::TermId| {
                let mut ids: Vec<_> = all.iter().map(f).collect();
                ids.sort();
                ids.dedup();
                ids.len()
            };
            prop_assert_eq!(g.subject_count(), distinct(|t| t.s), "subjects, path {}", i);
            prop_assert_eq!(g.predicate_count(), distinct(|t| t.p), "predicates, path {}", i);
            prop_assert_eq!(g.object_count(), distinct(|t| t.o), "objects, path {}", i);
            let total: usize = g.predicate_counts().iter().map(|(_, n)| n).sum();
            prop_assert_eq!(total, g.len(), "predicate_counts sum, path {}", i);
            for (p, n) in g.predicate_counts() {
                let oracle = all.iter().filter(|t| t.p == p).count();
                prop_assert_eq!(n, oracle, "count of predicate {} on path {}", p, i);
            }
        }
    }

    /// `objects` / `subjects` enumerations agree with the oracle, including
    /// values that only live in the delta buffer.
    #[test]
    fn adjacency_enumeration_agrees(spec in arb_spec(), probe in 0usize..80) {
        for (i, g) in build_all_ways(&spec).iter().enumerate() {
            let all: Vec<Triple> = g.triples().collect();
            if all.is_empty() {
                continue;
            }
            let t = all[probe % all.len()];
            let mut objs: Vec<_> = g.objects(t.s, t.p).collect();
            let mut objs_oracle: Vec<_> = all
                .iter()
                .filter(|x| x.s == t.s && x.p == t.p)
                .map(|x| x.o)
                .collect();
            objs.sort();
            objs_oracle.sort();
            prop_assert_eq!(objs, objs_oracle, "objects, path {}", i);

            let mut subs: Vec<_> = g.subjects(t.p, t.o).collect();
            let mut subs_oracle: Vec<_> = all
                .iter()
                .filter(|x| x.p == t.p && x.o == t.o)
                .map(|x| x.s)
                .collect();
            subs.sort();
            subs_oracle.sort();
            prop_assert_eq!(subs, subs_oracle, "subjects, path {}", i);
        }
    }
}
