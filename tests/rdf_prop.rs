//! Property tests for the RDF substrate: serialization round trips and
//! RDFS saturation laws on arbitrary graphs.

use proptest::prelude::*;
use rdfcube::rdf::vocab;
use rdfcube::{parse_ntriples, saturate, to_ntriples, Graph, Term};

/// Arbitrary terms over a closed universe, including literals with quotes,
/// escapes, language tags and datatypes to stress the writer/parser.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..10).prop_map(|n| Term::iri(format!("http://ex.org/n{n}"))),
        (0u8..5).prop_map(|n| Term::blank(format!("b{n}"))),
        "[a-zA-Z \"\\\\\n\t]{0,12}".prop_map(Term::literal),
        any::<i64>().prop_map(Term::integer),
        (0u8..5)
            .prop_map(|n| { Term::Literal(rdfcube::rdf::Literal::lang(format!("w{n}"), "en")) }),
    ]
}

fn arb_graph() -> impl Strategy<Value = Vec<(Term, u8, Term)>> {
    proptest::collection::vec((arb_term(), 0u8..6, arb_term()), 0..50)
}

fn build(spec: Vec<(Term, u8, Term)>) -> Graph {
    let mut g = Graph::new();
    for (s, p, o) in spec {
        // Subjects must be IRIs or blank nodes in RDF; coerce literals.
        let s = match s {
            Term::Literal(l) => Term::iri(format!("lit-{}", l.lexical().len())),
            other => other,
        };
        let p = Term::iri(format!("http://ex.org/p{p}"));
        g.insert(&s, &p, &o);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// write → parse is the identity on graphs.
    #[test]
    fn ntriples_round_trip(spec in arb_graph()) {
        let g = build(spec);
        let text = to_ntriples(&g);
        let back = parse_ntriples(&text).unwrap();
        prop_assert_eq!(g.len(), back.len());
        for t in g.triples() {
            let (s, p, o) = g.decode(t);
            prop_assert!(back.contains(s, p, o), "lost {s} {p} {o}");
        }
        // And serialization is canonical: same bytes again.
        prop_assert_eq!(text, to_ntriples(&back));
    }

    /// Saturation is (a) monotone — never removes triples; (b) idempotent —
    /// a second run adds nothing; (c) sound for the subclass rule on a
    /// random hierarchy.
    #[test]
    fn saturation_laws(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        typings in proptest::collection::vec((0u8..8, 0u8..6), 0..12),
    ) {
        let mut g = Graph::new();
        let sc = Term::iri(vocab::RDFS_SUBCLASSOF);
        let ty = Term::iri(vocab::RDF_TYPE);
        for &(a, b) in &edges {
            g.insert(&Term::iri(format!("C{a}")), &sc, &Term::iri(format!("C{b}")));
        }
        for &(x, c) in &typings {
            g.insert(&Term::iri(format!("x{x}")), &ty, &Term::iri(format!("C{c}")));
        }
        let before: Vec<_> = g.triples().collect();
        let added = saturate(&mut g);
        prop_assert_eq!(g.len(), before.len() + added, "monotone growth");
        for t in before {
            let (s, p, o) = (t.s, t.p, t.o);
            prop_assert!(g.contains_ids(s, p, o), "saturation removed a triple");
        }
        let second = saturate(&mut g);
        prop_assert_eq!(second, 0, "idempotence");

        // Soundness + completeness of rule 5 via reachability: x type C and
        // C →* D implies x type D.
        let reach = |from: u8, edges: &[(u8, u8)]| -> Vec<u8> {
            let mut seen = vec![from];
            let mut frontier = vec![from];
            while let Some(c) = frontier.pop() {
                for &(a, b) in edges {
                    if a == c && !seen.contains(&b) {
                        seen.push(b);
                        frontier.push(b);
                    }
                }
            }
            seen
        };
        for &(x, c) in &typings {
            for d in reach(c, &edges) {
                prop_assert!(
                    g.contains(
                        &Term::iri(format!("x{x}")),
                        &ty,
                        &Term::iri(format!("C{d}"))
                    ),
                    "missing inferred typing x{x} : C{d}"
                );
            }
        }
    }

    /// The store's pattern matching agrees with brute-force filtering for
    /// arbitrary patterns over arbitrary graphs.
    #[test]
    fn pattern_matching_oracle(spec in arb_graph(), mask in 0u8..8, probe in 0usize..50) {
        let g = build(spec);
        let all: Vec<_> = g.triples().collect();
        if all.is_empty() {
            return Ok(());
        }
        let t = all[probe % all.len()];
        let pat = rdfcube::TriplePattern::new(
            (mask & 1 != 0).then_some(t.s),
            (mask & 2 != 0).then_some(t.p),
            (mask & 4 != 0).then_some(t.o),
        );
        let mut via_index = g.matching(pat);
        let mut via_scan: Vec<_> = all.iter().copied().filter(|x| pat.matches(x)).collect();
        via_index.sort();
        via_scan.sort();
        prop_assert_eq!(&via_index, &via_scan);
        prop_assert_eq!(g.count_matching(pat), via_scan.len());
    }
}
