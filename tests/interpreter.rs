//! Tests for the script interpreter (the `rdfcube` console).

use rdfcube::interp::{InterpError, Interpreter};

/// The paper's running example as a console script.
const SCRIPT: &str = r#"
# Figure 1 world
loadstr <user1> rdf:type <Person> ; <age> 28 ; <city> "Madrid" . \
        <user3> rdf:type <Person> ; <age> 35 ; <city> "NY" . \
        <user4> rdf:type <Person> ; <age> 35 ; <city> "NY" . \
        <user1> <posted> <p1>, <p2>, <p3> . \
        <p1> <on> <s1> . <p2> <on> <s1> . <p3> <on> <s2> . \
        <user3> <posted> <p4> . <p4> <on> <s2> . \
        <user4> <posted> <p5> . <p5> <on> <s3> .
saturate
node Blogger n(?x) :- ?x rdf:type Person
node Age n(?a) :- ?x age ?a
node City n(?c) :- ?x city ?c
node BlogPost n(?p) :- ?x posted ?p
node Site n(?s) :- ?p on ?s
edge hasAge Blogger Age e(?x, ?a) :- ?x age ?a
edge livesIn Blogger City e(?x, ?c) :- ?x city ?c
edge wrotePost Blogger BlogPost e(?x, ?p) :- ?x posted ?p
edge postedOn BlogPost Site e(?p, ?s) :- ?p on ?s
materialize
cube Q1 count c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity \
    | m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v
slice Q2 from Q1 dage 35
dice Q3 from Q1 dage 20..30
drillout Q4 from Q1 dage
drillin Q5 from Q4 dage
show Q1
pres Q1
stats
"#;

#[test]
fn paper_example_script_end_to_end() {
    let mut interp = Interpreter::new();
    let out = interp
        .run_script(SCRIPT)
        .map_err(|(l, e)| format!("line {l}: {e}"))
        .unwrap();
    assert!(out.contains("loaded 19 triples"), "out: {out}");
    assert!(out.contains("cube Q1: 2 cells materialized"), "out: {out}");
    assert!(
        out.contains("cube Q2: 1 cells via selection over ans(Q)"),
        "out: {out}"
    );
    assert!(
        out.contains("cube Q3: 1 cells via selection over ans(Q)"),
        "out: {out}"
    );
    assert!(
        out.contains("cube Q4: 2 cells via Algorithm 1"),
        "out: {out}"
    );
    assert!(
        out.contains("cube Q5: 2 cells via Algorithm 2"),
        "out: {out}"
    );
    // Example 2's answer in the rendered table.
    assert!(out.contains("Madrid"));
    assert!(out.contains("| 3"), "count 3 for (28, Madrid): {out}");
    assert!(out.contains("pres(Q1): 5 rows"), "out: {out}");
    assert!(out.contains("2 cubes materialized") || out.contains("5 cubes materialized"));
}

#[test]
fn instance_shortcut_skips_the_lens() {
    let mut interp = Interpreter::new();
    let out = interp
        .run_script(
            "loadstr <a> rdf:type <C> ; <dim> <x> ; <val> 3 .\n\
             instance\n\
             cube Q count c(?f, ?d) :- ?f rdf:type C, ?f dim ?d | m(?f, ?v) :- ?f val ?v\n\
             show Q\n",
        )
        .unwrap();
    assert!(out.contains("cube Q: 1 cells"));
}

#[test]
fn errors_carry_line_numbers() {
    let mut interp = Interpreter::new();
    let err = interp
        .run_script("loadstr <a> <b> <c> .\nfrobnicate\n")
        .unwrap_err();
    assert_eq!(err.0, 2);
    assert!(matches!(err.1, InterpError::Usage(_)));
}

#[test]
fn state_errors() {
    let mut interp = Interpreter::new();
    assert!(matches!(
        interp.exec("saturate"),
        Err(InterpError::State(_))
    ));
    assert!(matches!(
        interp.exec("materialize"),
        Err(InterpError::State(_))
    ));
    assert!(matches!(
        interp.exec("cube Q count c(?x) :- ?x p ?x | m(?x,?v) :- ?x q ?v"),
        Err(InterpError::State(_))
    ));
    interp.exec("loadstr <a> <p> <b> .").unwrap();
    interp.exec("instance").unwrap();
    assert!(matches!(
        interp.exec("show nope"),
        Err(InterpError::UnknownCube(_))
    ));
    assert!(matches!(
        interp.exec("cube Q wat c | m"),
        Err(InterpError::Usage(_))
    ));
    assert!(matches!(
        interp.exec("slice A from B"),
        Err(InterpError::Usage(_))
    ));
}

#[test]
fn dice_value_lists_and_help() {
    let mut interp = Interpreter::new();
    interp
        .run_script(
            "loadstr <a> rdf:type <C> ; <dim> \"x\" ; <val> 3 . \
                     <b> rdf:type <C> ; <dim> \"y\" ; <val> 4 .\n\
             instance\n\
             cube Q sum c(?f, ?d) :- ?f rdf:type C, ?f dim ?d | m(?f, ?v) :- ?f val ?v\n",
        )
        .unwrap();
    let out = interp.exec("dice Q2 from Q \"x\"").err();
    // dim name missing → usage error
    assert!(out.is_some());
    let out = interp.exec("dice Q2 from Q d \"x\",\"z\"").unwrap();
    assert!(out.contains("cube Q2: 1 cells"));
    assert!(interp.exec("help").unwrap().contains("drillout"));
}

#[test]
fn rollup_command() {
    let mut interp = Interpreter::new();
    let out = interp
        .run_script(
            "loadstr <m> <locatedIn> <spain> . <n> <locatedIn> <usa> . \
                     <a> rdf:type <C> ; <city> <m> ; <val> 3 . \
                     <b> rdf:type <C> ; <city> <n> ; <val> 4 .\n\
             instance\n\
             cube Q sum c(?f, ?d) :- ?f rdf:type C, ?f city ?d | m(?f, ?v) :- ?f val ?v\n\
             rollup R from Q d via locatedIn\n\
             show R\n",
        )
        .map_err(|(l, e)| format!("line {l}: {e}"))
        .unwrap();
    assert!(
        out.contains("cube R: 2 cells via roll-up composition"),
        "out: {out}"
    );
    assert!(out.contains("spain"));
}

#[test]
fn loading_twice_accumulates() {
    let mut interp = Interpreter::new();
    interp.exec("loadstr <a> <p> <b> .").unwrap();
    let out = interp.exec("loadstr <c> <p> <d> . <a> <p> <b> .").unwrap();
    assert!(out.contains("loaded 1 new triples"), "out: {out}");
}

#[test]
fn load_from_file() {
    let path = std::env::temp_dir().join("rdfcube_interp_test.ttl");
    std::fs::write(&path, "<a> <p> <b> . <a> <p> <c> .").unwrap();
    let mut interp = Interpreter::new();
    let out = interp.exec(&format!("load {}", path.display())).unwrap();
    assert!(out.contains("loaded 2 triples"), "out: {out}");
    std::fs::remove_file(&path).ok();
    // Missing file is an Io error, not a panic.
    assert!(matches!(
        interp.exec("load /definitely/not/here.ttl"),
        Err(InterpError::Io(_))
    ));
}

#[test]
fn blank_node_turtle_through_the_console() {
    let mut interp = Interpreter::new();
    let out = interp
        .run_script(
            "loadstr <u> <addr> [ <city> \"Madrid\" ] . <u> rdf:type <C> ; <val> 2 .\n\
             instance\n\
             cube Q sum c(?x, ?d) :- ?x rdf:type C, ?x addr ?a, ?a city ?d \
                  | m(?x, ?v) :- ?x val ?v\n\
             show Q\n",
        )
        .map_err(|(l, e)| format!("line {l}: {e}"))
        .unwrap();
    assert!(out.contains("Madrid"), "out: {out}");
}
