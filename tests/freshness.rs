//! Cube-freshness regressions and planner-equivalence checks.
//!
//! Every catalog entry carries the instance triple count it was
//! materialized at (its *watermark*). These tests pin the contract: a
//! query answered after the instance grew must never be served cells
//! materialized before the growth — the serving paths (`answer_query`,
//! `transform`, `touch`, shared-plane snapshots) detect the moved
//! watermark and recompute. The second half pins the two explain planners
//! (`explain_query` vs `explain_query_linear`) to identical choices on
//! randomized workloads, including the same-body/different-root family
//! collision the linear baseline historically fell for.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rdfcube::core::ViewSignature;
use rdfcube::prelude::*;
use rdfcube::rdf::vocab::RDF_TYPE;
use rdfcube::CoreError;

const WORLD: &str = "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
     <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
     <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
     <user1> <wrotePost> <p1>, <p2>, <p3> .
     <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
     <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
     <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .";

/// Triples for a brand-new blogger, inserted mid-session; they add posts
/// to the (35, "NY") cell and create a new (41, "Berlin") group.
fn growth_triples() -> Vec<(Term, Term, Term)> {
    let t = Term::iri;
    vec![
        (t("user9"), t(RDF_TYPE), t("Blogger")),
        (t("user9"), t("hasAge"), Term::integer(41)),
        (t("user9"), t("livesIn"), Term::literal("Berlin")),
        (t("user9"), t("wrotePost"), t("p9")),
        (t("p9"), t("postedOn"), t("s1")),
        (t("user3"), t("wrotePost"), t("p10")),
        (t("p10"), t("postedOn"), t("s3")),
    ]
}

/// A pristine session over a clone of `g` — from-scratch ground truth
/// that shares `g`'s dictionary, so cells compare id-for-id.
fn ground_truth(g: &Graph) -> OlapSession {
    OlapSession::new(g.clone())
}

const CLASSIFIER: &str =
    "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity";
const MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v";

/// The stale-cube regression (pre-watermark code served the first
/// materialization forever): the *same* query answered before and after
/// an insert must return different cells, and the second answer must
/// equal a from-scratch evaluation on the grown instance.
#[test]
fn repeated_query_is_refreshed_after_inserts() {
    let mut s = OlapSession::new(parse_turtle(WORLD).unwrap());
    let eq = s.parse_query(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    let (h1, _) = s.answer_query(eq.clone()).unwrap();
    let before = s.answer(h1).clone();

    assert_eq!(s.insert_triples(growth_triples()), 7);

    let (h2, _) = s.answer_query(eq).unwrap();
    assert_eq!(h1, h2, "identical queries must converge on one handle");

    let mut fresh = ground_truth(s.instance());
    let fh = fresh.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    assert!(
        !s.answer(h2).same_cells(&before),
        "the inserted triples must change the cube — served stale cells"
    );
    assert!(
        s.answer(h2).same_cells(fresh.answer(fh)),
        "refreshed cube must equal from-scratch on the grown instance"
    );
    assert!(
        s.catalog().counters().refreshes >= 1,
        "the refresh must be visible in the counters"
    );
}

/// Direct handle reads keep the watermark contract: `answer` serves the
/// materialized cells until `touch` (or a query) refreshes them, and
/// `is_fresh` reports the divergence in between.
#[test]
fn touch_refreshes_stale_handles() {
    let mut s = OlapSession::new(parse_turtle(WORLD).unwrap());
    let h = s.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    let before = s.answer(h).clone();
    assert!(s.is_fresh(h));

    s.insert_triples(growth_triples());
    assert!(!s.is_fresh(h), "watermark must have moved");
    assert!(
        s.answer(h).same_cells(&before),
        "direct reads serve the materialized watermark until touched"
    );

    assert!(s.touch(h).unwrap(), "touch must recompute a stale cube");
    assert!(s.is_fresh(h));
    let mut fresh = ground_truth(s.instance());
    let fh = fresh.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    assert!(s.answer(h).same_cells(fresh.answer(fh)));
}

/// `transform` must not derive from a stale source: slicing a cube whose
/// watermark the instance grew past has to equal the slice computed on
/// the grown instance from scratch.
#[test]
fn transform_after_inserts_derives_from_fresh_cells() {
    let mut s = OlapSession::new(parse_turtle(WORLD).unwrap());
    let h = s.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    s.insert_triples(growth_triples());

    let op = OlapOp::Slice {
        dim: "dage".into(),
        value: Term::integer(35),
    };
    let (sliced, _) = s.transform(h, &op).unwrap();

    let mut fresh = ground_truth(s.instance());
    let fh = fresh.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    let (fresh_sliced, _) = fresh.transform(fh, &op).unwrap();
    assert!(
        s.answer(sliced).same_cells(fresh.answer(fresh_sliced)),
        "transform derived from stale source cells"
    );
}

/// The shared query plane re-checks watermarks across epochs: cubes
/// materialized before a mutation epoch refresh on first use afterwards.
#[test]
fn shared_epoch_refreshes_after_mutation_epoch() {
    let mut s = OlapSession::new(parse_turtle(WORLD).unwrap());
    let h = s.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();

    let shared = s.into_shared();
    let before = shared.snapshot(h).unwrap().answer().clone();

    let mut s = shared.into_session();
    s.insert_triples(growth_triples());
    let shared = s.into_shared();

    let after = shared.snapshot(h).unwrap();
    assert!(!after.answer().same_cells(&before));
    let mut fresh = ground_truth(shared.instance());
    let fh = fresh.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    assert!(after.answer().same_cells(fresh.answer(fh)));
    assert!(shared.counters().refreshes >= 1);
}

// ---------------------------------------------------------------------
// Planner equivalence: explain_query vs explain_query_linear.
// ---------------------------------------------------------------------

fn assert_explains_agree(s: &OlapSession, eq: &ExtendedQuery, ctx: &str) {
    let a = s.explain_query(eq);
    let b = s.explain_query_linear(eq);
    assert_eq!(a.strategy, b.strategy, "strategy diverged ({ctx})");
    assert_eq!(a.source, b.source, "source diverged ({ctx})");
    assert_eq!(a.catalog_hit, b.catalog_hit, "hit flag diverged ({ctx})");
    assert!(
        (a.estimated_cost - b.estimated_cost).abs() < 1e-6,
        "estimated cost diverged ({ctx}): {} vs {}",
        a.estimated_cost,
        b.estimated_cost
    );
}

const BODIES: [&str; 4] = [
    CLASSIFIER,
    "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
    "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
    "c(?x, ?dage, ?dsite) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x wrotePost ?p, ?p postedOn ?dsite",
];

/// Independently-written probes: renamed variables, reordered patterns.
const PROBES: [&str; 4] = [
    "q(?u, ?years, ?town) :- ?u hasAge ?years, ?u rdf:type Blogger, ?u livesIn ?town",
    "q(?u, ?years) :- ?u rdf:type Blogger, ?u hasAge ?years",
    "q(?b, ?town) :- ?b livesIn ?town, ?b rdf:type Blogger",
    "q(?b, ?years, ?where) :- ?b wrotePost ?p, ?p postedOn ?where, \
     ?b hasAge ?years, ?b rdf:type Blogger",
];

const SITE_MEASURE: &str = "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s";
const WORDS_MEASURE: &str = "w(?u, ?n) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q hasWordCount ?n";

fn blogger_session(triples: usize) -> OlapSession {
    let cfg = BloggerConfig::with_approx_triples(triples);
    OlapSession::new(rdfcube::datagen::generate_instance(&cfg))
}

/// Registers a randomized cube workload (bodies × measures × aggregates,
/// plus seeded Σ-diced variants) and returns seeded probe queries.
fn random_workload(s: &mut OlapSession, seed: u64) -> Vec<ExtendedQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    for body in BODIES {
        for (measure, agg) in [
            (SITE_MEASURE, AggFunc::Count),
            (WORDS_MEASURE, AggFunc::Sum),
        ] {
            let eq = s.parse_query(body, measure, agg).unwrap();
            if rng.gen_bool(0.5) {
                if let Ok(i) = eq.query().dim_index("dage") {
                    let lo = 18 + rng.gen_range(0..20i64);
                    let hi = lo + rng.gen_range(1..25i64);
                    let mut sigma = Sigma::all(eq.query().n_dims());
                    sigma.set(i, ValueSelector::IntRange { lo, hi });
                    s.register_query(ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap())
                        .unwrap();
                }
            }
            s.register_query(eq).unwrap();
        }
    }
    let mut probes = Vec::new();
    for probe in PROBES {
        for (measure, agg) in [
            (SITE_MEASURE, AggFunc::Count),
            (WORDS_MEASURE, AggFunc::Max),
        ] {
            let eq = s.parse_query(probe, measure, agg).unwrap();
            if let Ok(i) = eq.query().dim_index("years") {
                let lo = 18 + rng.gen_range(0..30i64);
                let hi = lo + rng.gen_range(1..20i64);
                let mut sigma = Sigma::all(eq.query().n_dims());
                sigma.set(i, ValueSelector::IntRange { lo, hi });
                probes.push(ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap());
            }
            probes.push(eq);
        }
    }
    probes
}

/// Both planners must pick the identical strategy/source/cost on seeded
/// random workloads — on the pristine catalog, after answering (which
/// materializes new candidates), and after inserts made entries stale.
#[test]
fn explain_planners_agree_on_random_workloads() {
    for seed in [1u64, 7, 42] {
        let mut s = blogger_session(4_000);
        let probes = random_workload(&mut s, seed);
        for eq in &probes {
            assert_explains_agree(&s, eq, &format!("seed {seed}, pristine"));
        }
        for eq in &probes {
            s.answer_query(eq.clone()).unwrap();
        }
        for eq in &probes {
            assert_explains_agree(&s, eq, &format!("seed {seed}, post-answer"));
        }
        s.insert_triples(growth_triples());
        for eq in &probes {
            assert_explains_agree(&s, eq, &format!("seed {seed}, stale"));
        }
    }
}

/// Same equivalence under a tight budget, where eviction makes the
/// rehydration surcharge part of every candidate's cost.
#[test]
fn explain_planners_agree_under_eviction() {
    let cfg = BloggerConfig::with_approx_triples(4_000);
    let mut s = OlapSession::with_budget(rdfcube::datagen::generate_instance(&cfg), 48 * 1024);
    let probes = random_workload(&mut s, 11);
    for eq in &probes {
        s.answer_query(eq.clone()).unwrap();
    }
    assert!(
        s.catalog().counters().evictions > 0,
        "budget must actually evict for this test to bite"
    );
    for eq in &probes {
        assert_explains_agree(&s, eq, "budgeted");
    }
}

/// The family-collision regression the linear baseline historically fell
/// for: two queries over the *same* canonical body and measure whose fact
/// (root) variables differ. Reusing one for the other is unsound — their
/// cells genuinely differ — and both planners must now reject the match.
#[test]
fn same_body_different_root_is_not_reused() {
    let world = "<a> <knows> <b> . <b> <knows> <a> . <a> <hasAge> 30 . <b> <hasAge> 40 .";
    let mut s = OlapSession::new(parse_turtle(world).unwrap());
    // Root = the aged endpoint of the mutual-knows pair.
    let src = s
        .parse_query(
            "c(?x, ?d) :- ?x knows ?y, ?y knows ?x, ?x hasAge ?d",
            "m(?x, ?v) :- ?x hasAge ?v",
            AggFunc::Sum,
        )
        .unwrap();
    // Root = the *other* endpoint; the dimension is still the first
    // endpoint's age. Same body and measure up to renaming.
    let tgt = s
        .parse_query(
            "c(?q, ?d) :- ?p knows ?q, ?q knows ?p, ?p hasAge ?d",
            "m(?q, ?v) :- ?q hasAge ?v",
            AggFunc::Sum,
        )
        .unwrap();

    // Precondition for the test to bite: identical canonical body and
    // measure, different canonical root.
    let s_sig = ViewSignature::of(src.query());
    let t_sig = ViewSignature::of(tgt.query());
    assert_eq!(s_sig.key.body, t_sig.key.body, "bodies must collide");
    assert_eq!(
        s_sig.key.measure, t_sig.key.measure,
        "measures must collide"
    );
    assert_ne!(s_sig.key.root, t_sig.key.root, "roots must differ");

    let h_src = s.register_query(src).unwrap();
    assert_explains_agree(&s, &tgt, "root collision");
    assert!(
        !s.explain_query(&tgt).catalog_hit,
        "a different-root cube is not a sound derivation source"
    );

    // Demonstrate the unsoundness the root check prevents: the two cubes'
    // cells differ on this instance.
    let src_cells = s.answer(h_src).clone();
    let (h_tgt, explained) = s.answer_query(tgt).unwrap();
    assert!(matches!(explained.strategy, Strategy::FromScratch));
    assert!(
        !s.answer(h_tgt).same_cells(&src_cells),
        "the colliding cubes coincide; the regression test lost its teeth"
    );
}

/// Foreign handles stay typed errors on the freshness paths too.
#[test]
fn freshness_accessors_reject_foreign_handles() {
    let mut a = OlapSession::new(parse_turtle(WORLD).unwrap());
    let _ = a.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    let h1 = a
        .register(CLASSIFIER, SITE_MEASURE, AggFunc::Count)
        .unwrap();
    let mut b = OlapSession::new(parse_turtle(WORLD).unwrap());
    let _ = b.register(CLASSIFIER, MEASURE, AggFunc::Count).unwrap();
    assert!(matches!(b.touch(h1), Err(CoreError::UnknownHandle(_))));
    assert!(!b.is_fresh(h1));
    assert!(!b.is_resident(h1));
}
