//! Property tests for the query engine: the optimized evaluator must agree
//! with the naive nested-loop oracle on arbitrary graphs and queries, under
//! both semantics.

use proptest::prelude::*;
use rdfcube::engine::{evaluate, evaluate_in_order, evaluate_nested_loop, Bgp, Semantics};
use rdfcube::engine::{PatternTerm, QueryPattern};
use rdfcube::{Graph, Term};

/// A small closed universe: subjects/objects n0..n7, predicates p0..p3,
/// literals v0..v3.
fn arb_graph() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..4, 0u8..12), 0..40)
}

/// Query shape: up to 3 patterns, terms drawn from {var x/y/z, const}.
/// Position encoding: 0..3 = variable index, 3.. = constant index.
type PatternSpec = ((u8, u8), (u8, u8), (u8, u8));

fn arb_query() -> impl Strategy<Value = Vec<PatternSpec>> {
    proptest::collection::vec(
        (
            (0u8..2, 0u8..10), // subject: kind (0=var, 1=const), payload
            (0u8..2, 0u8..5),  // predicate
            (0u8..2, 0u8..13), // object
        ),
        1..4,
    )
}

fn build_graph(spec: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &(s, p, o) in spec {
        let s = Term::iri(format!("n{s}"));
        let p = Term::iri(format!("p{p}"));
        let o = if o < 8 {
            Term::iri(format!("n{o}"))
        } else {
            Term::literal(format!("v{}", o - 8))
        };
        g.insert(&s, &p, &o);
    }
    g
}

/// Builds a BGP over the graph's dictionary; returns `None` if the random
/// head would be invalid (no variables at all).
fn build_query(g: &mut Graph, spec: &[PatternSpec]) -> Option<Bgp> {
    let mut bgp = Bgp::new("q");
    let var_names = ["x", "y", "z"];
    let mut used_vars = Vec::new();
    for &((sk, sv), (pk, pv), (ok, ov)) in spec {
        let mut mk = |kind: u8, payload: u8, pos: usize, bgp: &mut Bgp, g: &mut Graph| {
            if kind == 0 {
                let name = var_names[(payload as usize) % 3];
                let v = bgp.var(name);
                if !used_vars.contains(&v) {
                    used_vars.push(v);
                }
                PatternTerm::Var(v)
            } else {
                let term = match pos {
                    0 => Term::iri(format!("n{}", payload % 8)),
                    1 => Term::iri(format!("p{}", payload % 4)),
                    _ => {
                        if payload < 8 {
                            Term::iri(format!("n{payload}"))
                        } else {
                            Term::literal(format!("v{}", payload - 8))
                        }
                    }
                };
                PatternTerm::Const(g.dict_mut().encode(&term))
            }
        };
        let s = mk(sk, sv, 0, &mut bgp, g);
        let p = mk(pk, pv, 1, &mut bgp, g);
        let o = mk(ok, ov, 2, &mut bgp, g);
        bgp.push_pattern(QueryPattern::new(s, p, o));
    }
    if used_vars.is_empty() {
        return None;
    }
    bgp.set_head(used_vars);
    Some(bgp)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn evaluators_agree(graph_spec in arb_graph(), query_spec in arb_query()) {
        let mut g = build_graph(&graph_spec);
        let Some(q) = build_query(&mut g, &query_spec) else {
            return Ok(());
        };
        for semantics in [Semantics::Set, Semantics::Bag] {
            let fast = evaluate(&g, &q, semantics).unwrap();
            let in_order = evaluate_in_order(&g, &q, semantics).unwrap();
            let oracle = evaluate_nested_loop(&g, &q, semantics).unwrap();
            prop_assert!(fast.same_bag(&oracle), "greedy vs oracle, {semantics:?}");
            prop_assert!(in_order.same_bag(&oracle), "in-order vs oracle, {semantics:?}");
        }
    }

    /// Set semantics is always a sub-bag of bag semantics with no duplicates.
    #[test]
    fn set_is_distinct_bag(graph_spec in arb_graph(), query_spec in arb_query()) {
        let mut g = build_graph(&graph_spec);
        let Some(q) = build_query(&mut g, &query_spec) else {
            return Ok(());
        };
        let set = evaluate(&g, &q, Semantics::Set).unwrap();
        let bag = evaluate(&g, &q, Semantics::Bag).unwrap();
        prop_assert!(set.same_bag(&bag.distinct()));
        prop_assert!(set.len() <= bag.len());
    }
}
