//! Failure-injection tests: malformed inputs and invalid operations must
//! produce typed errors (never panics) at every layer of the stack.

use rdfcube::core::CoreError;
use rdfcube::prelude::*;
use rdfcube::{parse_query, Dictionary, EngineError};

#[test]
fn malformed_rdf_inputs() {
    for bad in [
        "<s> <p>",                // incomplete triple
        "<s> <p> <o>",            // missing dot
        "<s> <p> \"unterminated", // unterminated literal
        "<s> <p> <o> extra .",    // junk
        "@prefix broken",         // broken directive
        "ex:s <p> <o> .",         // unknown prefix
        "<s> <p> \"x\"^^ .",      // dangling datatype
        "<s> <p> _: .",           // broken bnode — empty label then dot-as-object fails
    ] {
        assert!(
            parse_turtle(bad).is_err(),
            "accepted malformed turtle: {bad}"
        );
    }
    assert!(
        parse_ntriples("<s> <p> 28 .").is_err(),
        "ntriples must reject bare numbers"
    );
}

#[test]
fn malformed_queries() {
    let mut dict = Dictionary::new();
    for bad in [
        "",                          // empty
        "q",                         // no head
        "q()",                       // no body
        "q(?x) :-",                  // empty body
        "q(?x) : ?x p ?x",           // bad separator
        "q(?x) :- ?x p",             // incomplete pattern
        "q(?x, ?y) :- ?x p ?x",      // ?y unbound
        "q(?x) :- ?x nope:local ?y", // unknown prefix
        "q(?) :- ?x p ?x",           // empty variable name
    ] {
        assert!(
            parse_query(bad, &mut dict).is_err(),
            "accepted malformed query: {bad}"
        );
    }
}

#[test]
fn invalid_analytical_queries() {
    let mut dict = Dictionary::new();
    // Ternary measure.
    assert!(matches!(
        AnalyticalQuery::parse(
            "c(?x) :- ?x rdf:type C",
            "m(?x, ?v, ?w) :- ?x p ?v, ?x q ?w",
            AggFunc::Count,
            &mut dict,
        ),
        Err(CoreError::SchemaViolation(_))
    ));
    // Unary measure.
    assert!(AnalyticalQuery::parse(
        "c(?x) :- ?x rdf:type C",
        "m(?x) :- ?x p ?x",
        AggFunc::Count,
        &mut dict,
    )
    .is_err());
    // Disconnected classifier.
    assert!(AnalyticalQuery::parse(
        "c(?x, ?d) :- ?x rdf:type C, ?y dim ?d",
        "m(?x, ?v) :- ?x p ?v",
        AggFunc::Count,
        &mut dict,
    )
    .is_err());
}

#[test]
fn invalid_operations_on_sessions() {
    let instance = parse_turtle("<a> rdf:type <C> ; <dim> <d1> ; <val> 3 .").unwrap();
    let mut s = OlapSession::new(instance);
    let h = s
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();

    // Unknown dimension.
    assert!(matches!(
        s.transform(
            h,
            &OlapOp::Slice {
                dim: "ghost".into(),
                value: Term::integer(1)
            }
        ),
        Err(CoreError::UnknownDimension(_))
    ));
    // Unknown variable for drill-in.
    assert!(matches!(
        s.transform(
            h,
            &OlapOp::DrillIn {
                var: "ghost".into()
            }
        ),
        Err(CoreError::UnknownVariable(_))
    ));
    // Drill-in on an existing dimension.
    assert!(matches!(
        s.transform(h, &OlapOp::DrillIn { var: "d".into() }),
        Err(CoreError::InvalidOperation(_))
    ));
    // Empty dice.
    assert!(s
        .transform(
            h,
            &OlapOp::Dice {
                constraints: vec![]
            }
        )
        .is_err());
    // Failed transforms must not have materialized anything.
    assert_eq!(s.len(), 1);
}

#[test]
fn eviction_is_invisible_to_answers() {
    // A budgeted session that can hold roughly one cube at a time must
    // keep every handle usable (evicted payloads recompute on touch) and
    // answer every transformation exactly like an unbudgeted session.
    let turtle = "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
         <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
         <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
         <user1> <wrotePost> <p1>, <p2>, <p3> .
         <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
         <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
         <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .";
    let classifier =
        "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity";
    let measure = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v";

    let mut free = OlapSession::new(parse_turtle(turtle).unwrap());
    let free_base = free.register(classifier, measure, AggFunc::Count).unwrap();
    let one_cube =
        free.cube(free_base).answer().approx_bytes() + free.cube(free_base).pres().approx_bytes();

    let mut tight =
        OlapSession::with_budget(parse_turtle(turtle).unwrap(), one_cube + one_cube / 2);
    let base = tight.register(classifier, measure, AggFunc::Count).unwrap();

    let ops = [
        OlapOp::Slice {
            dim: "dage".into(),
            value: Term::integer(35),
        },
        OlapOp::DrillOut {
            dims: vec!["dage".into()],
        },
        OlapOp::DrillOut {
            dims: vec!["dcity".into()],
        },
    ];
    for op in &ops {
        // Each derived cube competes with the base for the tight budget,
        // so by the later iterations the base has been evicted at least
        // once — transform on its handle must still work and agree.
        let (free_h, _) = free.transform(free_base, op).unwrap();
        let (tight_h, _) = tight.transform(base, op).unwrap();
        assert!(
            tight.answer(tight_h).same_cells(free.answer(free_h)),
            "budgeted answer diverged for {op:?}"
        );
        assert!(
            tight.catalog().resident_bytes() <= tight.catalog().budget().unwrap(),
            "resident bytes exceeded the budget"
        );
    }
    assert!(
        tight.catalog().counters().evictions > 0,
        "the tight budget must actually have evicted something"
    );
    // The base cube's handle survives even while evicted: touch recomputes
    // and its answer equals the never-evicted session's.
    if !tight.is_resident(base) {
        assert!(tight.touch(base).unwrap());
    }
    assert!(tight.answer(base).same_cells(free.answer(free_base)));
    // Peak memory stayed under the budget throughout (the budget exceeds
    // the largest single cube, so the always-keep-newest rule never had
    // to overshoot).
    assert!(
        tight.catalog().peak_resident_bytes() <= tight.catalog().budget().unwrap(),
        "peak {} exceeded budget {}",
        tight.catalog().peak_resident_bytes(),
        tight.catalog().budget().unwrap()
    );
}

#[test]
fn foreign_and_evicted_handles_are_typed_errors() {
    let turtle = "<a> rdf:type <C> ; <dim> <d1> ; <val> 3 .";
    let mut a = OlapSession::new(parse_turtle(turtle).unwrap());
    let _ = a
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();
    let foreign = a
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Count,
        )
        .unwrap();

    // Session `b` holds a single cube, so `foreign` (index 1 in `a`) is
    // out of range there: every accessor must answer with a typed error,
    // never a panic.
    let mut b = OlapSession::new(parse_turtle(turtle).unwrap());
    let _ = b
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();
    assert!(b.try_cube(foreign).is_none());
    assert!(b.try_query(foreign).is_none());
    assert!(!b.is_resident(foreign));
    assert!(!b.is_fresh(foreign));
    assert!(matches!(
        b.cube_checked(foreign),
        Err(CoreError::UnknownHandle(1))
    ));
    assert!(matches!(b.touch(foreign), Err(CoreError::UnknownHandle(1))));
    assert!(matches!(
        b.transform(
            foreign,
            &OlapOp::DrillOut {
                dims: vec!["d".into()]
            }
        ),
        Err(CoreError::UnknownHandle(1))
    ));

    // The shared plane keeps the same contract.
    let shared = b.into_shared();
    assert!(matches!(
        shared.snapshot(foreign),
        Err(CoreError::UnknownHandle(1))
    ));
    assert!(shared.try_query(foreign).is_none());

    // An evicted payload is the *other* typed failure: the handle is
    // known, the cells are not resident.
    let one_cube = a.cube(foreign).answer().approx_bytes() + a.cube(foreign).pres().approx_bytes();
    let mut tight = OlapSession::with_budget(parse_turtle(turtle).unwrap(), one_cube);
    let first = tight
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();
    let _second = tight
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Count,
        )
        .unwrap();
    assert!(!tight.is_resident(first), "budget should have evicted #0");
    assert!(matches!(
        tight.cube_checked(first),
        Err(CoreError::CubeNotResident(0))
    ));
    assert!(tight.try_cube(first).is_none());
    // ... and touch heals it.
    assert!(tight.touch(first).unwrap());
    assert!(tight.cube_checked(first).is_ok());
}

#[test]
#[should_panic(expected = "does not belong to this session")]
fn cube_accessor_panic_is_documented_and_typed() {
    let turtle = "<a> rdf:type <C> ; <dim> <d1> ; <val> 3 .";
    let mut a = OlapSession::new(parse_turtle(turtle).unwrap());
    let _ = a
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();
    let foreign = a
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Count,
        )
        .unwrap();
    let b = OlapSession::new(parse_turtle(turtle).unwrap());
    let _ = b.cube(foreign); // panics: index 1 does not exist in `b`
}

#[test]
fn non_numeric_aggregation_errors_cleanly() {
    let instance = parse_turtle("<a> rdf:type <C> ; <dim> <d1> ; <val> \"NaNope\" .").unwrap();
    let mut s = OlapSession::new(instance);
    let result = s.register(
        "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
        "m(?x, ?v) :- ?x val ?v",
        AggFunc::Sum,
    );
    assert!(matches!(
        result,
        Err(CoreError::Engine(EngineError::NonNumericAggregate(_)))
    ));
    // Count works fine on the same non-numeric measure.
    assert!(s
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Count,
        )
        .is_ok());
}

#[test]
fn schema_violations() {
    let mut schema = AnalyticalSchema::new("s");
    schema.add_node("C", "n(?x) :- ?x rdf:type Thing").add_edge(
        "p",
        "C",
        "Ghost",
        "e(?x, ?y) :- ?x p ?y",
    );
    let mut base = parse_turtle("<a> rdf:type <Thing> .").unwrap();
    assert!(schema.materialize(&mut base).is_err());

    // Queries against a schema they are not homomorphic to.
    let mut ok_schema = AnalyticalSchema::new("s");
    ok_schema.add_node("C", "n(?x) :- ?x rdf:type Thing");
    let mut dict = Dictionary::new();
    let q = AnalyticalQuery::parse(
        "c(?x, ?d) :- ?x rdf:type C, ?x foreign ?d",
        "m(?x, ?v) :- ?x rdf:type C, ?x foreign ?v",
        AggFunc::Count,
        &mut dict,
    )
    .unwrap();
    assert!(q.validate_against(&ok_schema, &dict).is_err());
}

#[test]
fn empty_inputs_are_fine_everywhere() {
    // Empty instance: queries answer with empty cubes, not errors.
    let mut s = OlapSession::new(Graph::new());
    let h = s
        .register(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
        )
        .unwrap();
    assert!(s.answer(h).is_empty());
    // Operations on empty cubes stay empty and consistent.
    let (h2, _) = s
        .transform(
            h,
            &OlapOp::Slice {
                dim: "d".into(),
                value: Term::integer(1),
            },
        )
        .unwrap();
    assert!(s.answer(h2).is_empty());
    let (h3, _) = s
        .transform(
            h,
            &OlapOp::DrillOut {
                dims: vec!["d".into()],
            },
        )
        .unwrap();
    assert!(s.answer(h3).is_empty());
}

#[test]
fn sigma_arity_and_refinement_guards() {
    let mut dict = Dictionary::new();
    let q = AnalyticalQuery::parse(
        "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
        "m(?x, ?v) :- ?x val ?v",
        AggFunc::Count,
        &mut dict,
    )
    .unwrap();
    assert!(ExtendedQuery::with_sigma(q, Sigma::all(3)).is_err());
}
