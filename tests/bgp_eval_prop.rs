//! Property suite for the arena-backed BGP evaluator: on random graphs and
//! random queries — arbitrary pattern shapes, repeated variables (within and
//! across patterns), constants absent from the data, and random *head
//! projections* including the empty head — the flat-buffer binding
//! propagation must agree with the naive nested-loop oracle and with the
//! declaration-order evaluator, under both Set and Bag semantics. This pins
//! the tentpole invariant of the query-pipeline rework: the arena, the
//! static step plans, and the packed-key δ are invisible to results.
//!
//! Compared to `engine_prop.rs` (which always projects every used variable),
//! this suite additionally exercises:
//!
//! * head subsets — projection creates duplicates that Set must collapse
//!   and Bag must keep, covering the specialized 1-/2-column `distinct`;
//! * the empty head — a zero-arity relation whose row count is pure
//!   multiplicity (the zero-dimensional-cube shape);
//! * filter push-down against post-selection over the same random queries;
//! * subject-hash sharded storage — evaluation over a sharded graph must
//!   return **bit-identical rows** (exact order, both semantics) to the
//!   flat store, in both the compacted and the delta-resident state.

use proptest::prelude::*;
use rdfcube::engine::{
    evaluate, evaluate_filtered, evaluate_in_order, evaluate_nested_loop, explain, Bgp, FilterExpr,
    PatternTerm, QueryPattern, Semantics,
};
use rdfcube::{Graph, Term};

/// A small closed universe (nodes n0..n7 shared between subject and object
/// positions, predicates p0..p3) so that chains join and repeats collide.
fn arb_graph() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..4, 0u8..8), 0..32)
}

/// One pattern position: `(kind, payload)`. Kinds 0..=4 pick a variable
/// v0..v4 (skewed toward few variables, so repeats are common); 5.. picks a
/// constant, sometimes one absent from every graph.
type PosSpec = (u8, u8);
type PatternSpec = (PosSpec, PosSpec, PosSpec);

fn arb_query() -> impl Strategy<Value = (Vec<PatternSpec>, u8)> {
    (
        proptest::collection::vec(
            (
                (0u8..8, 0u8..10), // subject
                (0u8..8, 0u8..6),  // predicate
                (0u8..8, 0u8..10), // object
            ),
            1..4,
        ),
        // Bitmask choosing which used variables become head columns; 0 is a
        // legal (empty) head.
        0u8..32,
    )
}

fn build_graph(spec: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &(s, p, o) in spec {
        g.insert(
            &Term::iri(format!("n{s}")),
            &Term::iri(format!("p{p}")),
            &Term::iri(format!("n{o}")),
        );
    }
    g
}

/// Builds the BGP; the head is the masked subset of used variables, in
/// first-use order (possibly empty).
fn build_query(g: &mut Graph, spec: &[PatternSpec], head_mask: u8) -> Bgp {
    let mut bgp = Bgp::new("q");
    let mut used_vars = Vec::new();
    for &((sk, sv), (pk, pv), (ok, ov)) in spec {
        let mut mk = |kind: u8, payload: u8, pos: usize, bgp: &mut Bgp, g: &mut Graph| {
            if kind < 5 {
                let v = bgp.var(&format!("v{}", payload % 5));
                if !used_vars.contains(&v) {
                    used_vars.push(v);
                }
                PatternTerm::Var(v)
            } else {
                let term = match pos {
                    0 => Term::iri(format!("n{}", payload % 10)), // n8/n9 absent
                    1 => Term::iri(format!("p{}", payload % 6)),  // p4/p5 absent
                    _ => Term::iri(format!("n{}", payload % 10)),
                };
                PatternTerm::Const(g.dict_mut().encode(&term))
            }
        };
        let s = mk(sk, sv, 0, &mut bgp, g);
        let p = mk(pk, pv, 1, &mut bgp, g);
        let o = mk(ok, ov, 2, &mut bgp, g);
        bgp.push_pattern(QueryPattern::new(s, p, o));
    }
    let head: Vec<_> = used_vars
        .iter()
        .enumerate()
        .filter(|(i, _)| head_mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect();
    bgp.set_head(head);
    bgp
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 160, ..ProptestConfig::default() })]

    /// The arena evaluator, the declaration-order evaluator, and the
    /// nested-loop oracle agree on arbitrary projections under both
    /// semantics — including zero-arity heads, where `len()` is pure
    /// multiplicity.
    #[test]
    fn arena_evaluator_agrees_with_oracles(
        graph_spec in arb_graph(),
        (query_spec, head_mask) in arb_query(),
    ) {
        let mut g = build_graph(&graph_spec);
        let q = build_query(&mut g, &query_spec, head_mask);
        for semantics in [Semantics::Set, Semantics::Bag] {
            let fast = evaluate(&g, &q, semantics).unwrap();
            let in_order = evaluate_in_order(&g, &q, semantics).unwrap();
            let oracle = evaluate_nested_loop(&g, &q, semantics).unwrap();
            prop_assert!(fast.same_bag(&oracle), "arena vs oracle, {semantics:?}");
            prop_assert!(in_order.same_bag(&oracle), "in-order vs oracle, {semantics:?}");
            prop_assert_eq!(fast.arity(), q.head().len());
        }
    }

    /// Zero-arity results carry exact homomorphism counts: the empty head
    /// under Bag semantics must report the same multiplicity as projecting
    /// any single variable, and Set semantics collapses to at most one row.
    #[test]
    fn empty_head_preserves_multiplicity(
        graph_spec in arb_graph(),
        (query_spec, _) in arb_query(),
    ) {
        let mut g = build_graph(&graph_spec);
        let mut q = build_query(&mut g, &query_spec, 0);
        prop_assert!(q.head().is_empty());
        let bag = evaluate(&g, &q, Semantics::Bag).unwrap();
        let set = evaluate(&g, &q, Semantics::Set).unwrap();
        prop_assert_eq!(set.len(), usize::from(!bag.is_empty()));
        // Project the full variable set: same number of homomorphisms.
        let all_vars = q.body_vars();
        q.set_head(all_vars);
        let full = evaluate(&g, &q, Semantics::Bag).unwrap();
        prop_assert_eq!(bag.len(), full.len());
    }

    /// Filter push-down through the arena's in-place retain equals
    /// evaluate-then-select.
    #[test]
    fn pushed_filters_equal_post_selection(
        graph_spec in arb_graph(),
        (query_spec, head_mask) in arb_query(),
        allowed in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let mut g = build_graph(&graph_spec);
        let q = build_query(&mut g, &query_spec, head_mask);
        // Filter the first body variable (if any) to a random node subset.
        let Some(&var) = q.body_vars().first() else { return Ok(()); };
        let set: Vec<_> = allowed
            .iter()
            .map(|n| g.dict_mut().encode(&Term::iri(format!("n{n}"))))
            .collect();
        let filters = vec![FilterExpr::OneOf {
            var,
            set: set.iter().copied().collect(),
        }];
        for semantics in [Semantics::Set, Semantics::Bag] {
            let pushed = evaluate_filtered(&g, &q, &filters, semantics).unwrap();
            // Post-selection oracle: full evaluation with the variable
            // promoted into the head, selected, then projected back.
            let mut q_full = q.clone();
            let mut head = vec![var];
            head.extend_from_slice(q.head());
            q_full.set_head(head);
            let full = evaluate(&g, &q_full, Semantics::Bag).unwrap();
            let selected = full.select(|row| set.contains(&row[0]));
            let mut projected = selected.project(q.head()).unwrap();
            // `project` keeps bag multiplicity; Set semantics dedups.
            if semantics == Semantics::Set {
                projected = projected.distinct();
                // Promoting `var` can split rows Set semantics would merge;
                // compare as sets of rows.
                prop_assert_eq!(pushed.distinct().sorted_rows(), projected.sorted_rows());
            } else {
                prop_assert!(pushed.same_bag(&projected), "bag filter mismatch");
            }
        }
    }

    /// Sharded storage is invisible to the evaluator: for shard counts
    /// {2, 7, 16}, random BGPs over the sharded graph return bit-identical
    /// rows — exact order, both semantics — to the flat store, whether the
    /// triples sit in compacted CSR runs or in the delta buffers.
    #[test]
    fn sharded_evaluation_is_bit_identical_to_flat(
        graph_spec in arb_graph(),
        (query_spec, head_mask) in arb_query(),
    ) {
        let mut flat = build_graph(&graph_spec);
        let q = build_query(&mut flat, &query_spec, head_mask);
        let triples: Vec<_> = flat.triples().collect();
        for n in [2usize, 7, 16] {
            // Delta state: replay the same insertion sequence over the same
            // dictionary.
            let mut delta_sharded = Graph::with_shards(n);
            *delta_sharded.dict_mut() = flat.dict().clone();
            for t in &triples {
                delta_sharded.insert_ids(t.s, t.p, t.o);
            }
            // Compacted state: bulk load.
            let bulk_sharded =
                Graph::from_triples_sharded(flat.dict().clone(), triples.clone(), n);
            let mut flat_compacted = flat.clone();
            flat_compacted.compact();
            for (reference, sharded, state) in [
                (&flat, &delta_sharded, "delta"),
                (&flat_compacted, &bulk_sharded, "compacted"),
            ] {
                for semantics in [Semantics::Set, Semantics::Bag] {
                    let a = evaluate(reference, &q, semantics).unwrap();
                    let b = evaluate(sharded, &q, semantics).unwrap();
                    prop_assert_eq!(
                        a.len(), b.len(),
                        "{} shards, {} state, {:?}", n, state, semantics
                    );
                    prop_assert!(
                        a.rows().zip(b.rows()).all(|(x, y)| x == y),
                        "{} shards, {} state, {:?}: row order diverged", n, state, semantics
                    );
                }
            }
        }
    }

    /// `explain` plans visit every pattern exactly once and only flag a
    /// cartesian step when the pattern really shares no bound variable.
    #[test]
    fn explain_covers_every_pattern(
        graph_spec in arb_graph(),
        (query_spec, head_mask) in arb_query(),
    ) {
        let mut g = build_graph(&graph_spec);
        let q = build_query(&mut g, &query_spec, head_mask);
        let plan = explain(&g, &q).unwrap();
        let mut seen: Vec<usize> = plan.iter().map(|s| s.pattern_index).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..q.body().len()).collect();
        prop_assert_eq!(seen, expect);
        prop_assert!(plan.iter().all(|s| s.estimated_rows >= 0.0));
        prop_assert!(plan[0].connected, "first step is trivially connected");
    }
}
