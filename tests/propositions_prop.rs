//! The paper's propositions as property tests.
//!
//! For randomized instances (random scale, seed, multi-valuedness,
//! heterogeneity) and randomized operations, every rewriting must agree
//! cell-for-cell with from-scratch evaluation:
//!
//! * Equation 3 — `ans(Q)` is recoverable from `pres(Q)`;
//! * Proposition 1 — `σ_dice(ans(Q)) = ans(Q_DICE)`;
//! * Proposition 2 — Algorithm 1 computes `ans(Q_DRILL-OUT)`;
//! * Proposition 3 — Algorithm 2 computes `ans(Q_DRILL-IN)`.

use proptest::prelude::*;
// Explicit import wins over the two glob imports: `Strategy` here always
// means proptest's trait, never the session's strategy enum.
use proptest::strategy::Strategy;
use rdfcube::core::rewrite;
use rdfcube::datagen::{generate_instance, generate_videos, BloggerConfig, VideoConfig};
use rdfcube::prelude::*;
use rdfcube::{AnalyticalQuery, Term};

/// A classifier with an existential variable (?p) so DRILL-IN is possible.
const CLASSIFIER: &str = "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x livesIn ?dcity, ?x wrotePost ?p";
const MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?q, ?q hasWordCount ?v";

fn arb_config() -> impl Strategy<Value = BloggerConfig> {
    (
        10usize..120,
        0.0f64..0.8,
        0.0f64..0.4,
        any::<u64>(),
        2usize..12,
        2usize..12,
    )
        .prop_map(
            |(n, multi, missing, seed, n_cities, n_ages)| BloggerConfig {
                n_bloggers: n,
                multi_city_prob: multi,
                missing_age_prob: missing,
                n_cities,
                n_ages,
                max_posts: 4,
                seed,
                ..Default::default()
            },
        )
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::CountDistinct),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn fixture(cfg: &BloggerConfig, agg: AggFunc) -> (Graph, ExtendedQuery, PartialResult, Cube) {
    let mut instance = generate_instance(cfg);
    let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).unwrap();
    let ans = pres.to_cube(instance.dict()).unwrap();
    (instance, eq, pres, ans)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Equation 3: the cube recovered from pres(Q) equals direct evaluation
    /// per Definition 1.
    #[test]
    fn equation_3_ans_from_pres(cfg in arb_config(), agg in arb_agg()) {
        let (instance, eq, _pres, ans) = fixture(&cfg, agg);
        let direct = eq.answer(&instance).unwrap();
        prop_assert!(ans.same_cells(&direct));
    }

    /// Proposition 1 over random slices and ranges.
    #[test]
    fn proposition_1_dice(
        cfg in arb_config(),
        agg in arb_agg(),
        lo in 18i64..60,
        width in 0i64..30,
        slice_city in 0usize..12,
    ) {
        let (instance, eq, _pres, ans) = fixture(&cfg, agg);

        // Random range dice on age.
        let diced = rdfcube::apply(&eq, &OlapOp::Dice {
            constraints: vec![("dage".into(), ValueSelector::IntRange { lo, hi: lo + width })],
        }).unwrap();
        let fast = rewrite::dice_from_ans(&ans, diced.sigma(), instance.dict());
        let slow = rewrite::from_scratch(&diced, &instance).unwrap();
        prop_assert!(fast.same_cells(&slow), "range dice diverged");

        // Random slice on city (value may or may not exist in the data).
        let sliced = rdfcube::apply(&eq, &OlapOp::Slice {
            dim: "dcity".into(),
            value: Term::literal(format!("city{slice_city}")),
        }).unwrap();
        let fast = rewrite::dice_from_ans(&ans, sliced.sigma(), instance.dict());
        let slow = rewrite::from_scratch(&sliced, &instance).unwrap();
        prop_assert!(fast.same_cells(&slow), "slice diverged");
    }

    /// Proposition 2 over random instances, both dimensions, and both at
    /// once — with multi-valued cities in play.
    #[test]
    fn proposition_2_drill_out(cfg in arb_config(), agg in arb_agg()) {
        let (instance, eq, pres, _ans) = fixture(&cfg, agg);
        for removed in [vec![0usize], vec![1], vec![0, 1]] {
            let names: Vec<String> = removed
                .iter()
                .map(|&i| eq.query().dim_names()[i].to_string())
                .collect();
            let drilled = rdfcube::apply(&eq, &OlapOp::DrillOut { dims: names }).unwrap();
            let (fast, _) =
                rewrite::drill_out_from_pres(&pres, &removed, instance.dict()).unwrap();
            let slow = rewrite::from_scratch(&drilled, &instance).unwrap();
            prop_assert!(fast.same_cells(&slow), "drill-out {removed:?} diverged");
        }
    }

    /// Proposition 3: drilling in the existential post variable.
    #[test]
    fn proposition_3_drill_in(cfg in arb_config(), agg in arb_agg()) {
        let (instance, eq, pres, _ans) = fixture(&cfg, agg);
        let p = eq.query().classifier().vars().id("p").unwrap();
        let (fast, _) =
            rewrite::drill_in_from_pres(eq.query(), &pres, p, &instance).unwrap();
        let drilled = rdfcube::apply(&eq, &OlapOp::DrillIn { var: "p".into() }).unwrap();
        let slow = rewrite::from_scratch(&drilled, &instance).unwrap();
        prop_assert!(fast.same_cells(&slow));
    }

    /// Proposition 3 on the video world, where the auxiliary query is a
    /// 3-triple chain (the paper's own Example 6 shape).
    #[test]
    fn proposition_3_video_world(
        n_videos in 20usize..150,
        n_websites in 5usize..40,
        max_browsers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = VideoConfig { n_videos, n_websites, max_browsers, seed, ..Default::default() };
        let mut instance = generate_videos(&cfg);
        let q = AnalyticalQuery::parse(
            rdfcube::datagen::EXAMPLE6_CLASSIFIER,
            rdfcube::datagen::EXAMPLE6_MEASURE,
            AggFunc::Sum,
            instance.dict_mut(),
        ).unwrap();
        let eq = ExtendedQuery::from_query(q);
        let pres = PartialResult::compute(&eq, &instance).unwrap();
        let d3 = eq.query().classifier().vars().id("d3").unwrap();
        let (fast, _) = rewrite::drill_in_from_pres(eq.query(), &pres, d3, &instance).unwrap();
        let drilled = rdfcube::apply(&eq, &OlapOp::DrillIn { var: "d3".into() }).unwrap();
        let slow = rewrite::from_scratch(&drilled, &instance).unwrap();
        prop_assert!(fast.same_cells(&slow));
    }

    /// Roll-up extension: the pres-based composition equals from-scratch
    /// evaluation of Q_ROLL-UP, under random multi-parent mappings.
    #[test]
    fn roll_up_soundness(
        cfg in arb_config(),
        agg in arb_agg(),
        n_countries in 1usize..6,
        multi_parent in proptest::collection::vec(0usize..6, 0..4),
    ) {
        let mut instance = generate_instance(&cfg);
        // Build a city → country mapping over the generator's city domain,
        // with a few cities getting a second parent.
        for c in 0..cfg.n_cities {
            let city = Term::literal(format!("city{c}"));
            let country = Term::iri(format!("country{}", c % n_countries));
            instance.insert(&city, &Term::iri("locatedIn"), &country);
            if multi_parent.contains(&c) {
                let second = Term::iri(format!("country{}", (c + 1) % n_countries));
                instance.insert(&city, &Term::iri("locatedIn"), &second);
            }
        }
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
        let mut session = OlapSession::new(instance);
        let h = session.register_query(ExtendedQuery::from_query(q)).unwrap();
        let (h2, strategy) = session
            .transform(h, &OlapOp::RollUp { dim: "dcity".into(), via: "locatedIn".into() })
            .unwrap();
        prop_assert_eq!(strategy, rdfcube::Strategy::RollUpComposition);
        let scratch = session.cube(h2).query().answer(session.instance()).unwrap();
        prop_assert!(session.answer(h2).same_cells(&scratch));
    }

    /// Session-level: random chains of operations stay consistent with
    /// from-scratch evaluation at every step.
    #[test]
    fn random_operation_chains(
        cfg in arb_config(),
        agg in arb_agg(),
        ops in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let mut instance = generate_instance(&cfg);
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
        let mut session = OlapSession::new(instance);
        let mut handle = session.register_query(ExtendedQuery::from_query(q)).unwrap();

        for op_kind in ops {
            let current = session.cube(handle).query().clone();
            let dims = current.query().dim_names();
            let op = match op_kind {
                0 if !dims.is_empty() => OlapOp::Slice {
                    dim: dims[0].to_string(),
                    value: Term::integer(30),
                },
                1 if !dims.is_empty() => OlapOp::Dice {
                    constraints: vec![(
                        dims[dims.len() - 1].to_string(),
                        ValueSelector::OneOf(vec![
                            Term::literal("city0"),
                            Term::literal("city1"),
                            Term::integer(25),
                        ]),
                    )],
                },
                2 if !dims.is_empty() => OlapOp::DrillOut { dims: vec![dims[0].to_string()] },
                _ => {
                    // Drill in ?p if it is existential, else skip the step.
                    let classifier = current.query().classifier();
                    let p = classifier.vars().id("p").unwrap();
                    if classifier.head().contains(&p) {
                        continue;
                    }
                    OlapOp::DrillIn { var: "p".into() }
                }
            };
            let (next, _strategy) = session.transform(handle, &op).unwrap();
            let scratch = session.cube(next).query().answer(session.instance()).unwrap();
            prop_assert!(
                session.answer(next).same_cells(&scratch),
                "chain step {op:?} diverged"
            );
            handle = next;
        }
    }
}
