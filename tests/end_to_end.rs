//! End-to-end integration tests: raw RDF text → RDFS saturation →
//! analytical schema materialization → cubes → OLAP session, spanning all
//! four crates through the facade.

use rdfcube::prelude::*;

/// The full §2 pipeline on the paper's blogger world, with an RDFS twist:
/// `Student ⊑ Person`, so students become bloggers only after saturation.
#[test]
fn pipeline_with_rdfs_inference() {
    let mut base = parse_turtle(
        "<Student> rdfs:subClassOf <Person> .
         <user1> rdf:type <Person> ; <age> 28 ; <city> \"Madrid\" .
         <user2> rdf:type <Student> ; <age> 22 ; <city> \"Madrid\" .
         <user1> <posted> <p1> . <p1> <on> <s1> .
         <user2> <posted> <p2> . <p2> <on> <s1> .
         <user2> <posted> <p3> . <p3> <on> <s2> .",
    )
    .unwrap();

    let mut schema = AnalyticalSchema::new("blog");
    schema
        .add_node("Blogger", "n(?x) :- ?x rdf:type Person")
        .add_node("Age", "n(?a) :- ?x age ?a")
        .add_node("City", "n(?c) :- ?x city ?c")
        .add_node("BlogPost", "n(?p) :- ?x posted ?p")
        .add_node("Site", "n(?s) :- ?p on ?s")
        .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
        .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
        .add_edge(
            "wrotePost",
            "Blogger",
            "BlogPost",
            "e(?x, ?p) :- ?x posted ?p",
        )
        .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s");

    // Without saturation user2 is not a Person, so only user1 classifies.
    let before = schema.materialize(&mut base.clone()).unwrap();
    let mut s_before = OlapSession::new(before);
    let h = s_before
        .register(
            "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
            AggFunc::Count,
        )
        .unwrap();
    let madrid = s_before
        .instance()
        .dict()
        .id(&Term::literal("Madrid"))
        .unwrap();
    assert_eq!(s_before.answer(h).get(&[madrid]), Some(&AggValue::Int(1)));

    // With saturation user2's posts join the Madrid cell.
    saturate(&mut base);
    let after = schema.materialize(&mut base).unwrap();
    let mut s_after = OlapSession::new(after);
    let h = s_after
        .register(
            "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
            AggFunc::Count,
        )
        .unwrap();
    let madrid = s_after
        .instance()
        .dict()
        .id(&Term::literal("Madrid"))
        .unwrap();
    assert_eq!(s_after.answer(h).get(&[madrid]), Some(&AggValue::Int(3)));
}

/// Serialize a generated instance, reload it, and confirm cubes agree —
/// exercising the writer/parser round trip at a non-toy size.
#[test]
fn instance_round_trip_preserves_cubes() {
    use rdfcube::datagen::{generate_instance, BloggerConfig};
    let cfg = BloggerConfig {
        n_bloggers: 150,
        seed: 11,
        ..Default::default()
    };
    let instance = generate_instance(&cfg);
    let text = to_ntriples(&instance);
    let reloaded = parse_ntriples(&text).unwrap();
    assert_eq!(instance.len(), reloaded.len());

    let cube_cells = |g: Graph| {
        let mut s = OlapSession::new(g);
        let h = s
            .register(
                rdfcube::datagen::EXAMPLE1_CLASSIFIER,
                rdfcube::datagen::EXAMPLE1_MEASURE,
                AggFunc::Count,
            )
            .unwrap();
        let dict = s.instance().dict();
        let mut cells: Vec<(Vec<String>, String)> = s
            .answer(h)
            .cells()
            .iter()
            .map(|(k, v)| {
                (
                    k.iter().map(|&id| dict.term(id).to_string()).collect(),
                    v.display(dict),
                )
            })
            .collect();
        cells.sort();
        cells
    };
    assert_eq!(cube_cells(instance), cube_cells(reloaded));
}

/// A multi-cube session where transformations of different cubes interleave.
#[test]
fn interleaved_multi_cube_session() {
    use rdfcube::datagen::{generate_instance, BloggerConfig};
    let cfg = BloggerConfig {
        n_bloggers: 200,
        multi_city_prob: 0.3,
        seed: 5,
        ..Default::default()
    };
    let mut session = OlapSession::new(generate_instance(&cfg));

    let count_cube = session
        .register(
            rdfcube::datagen::EXAMPLE1_CLASSIFIER,
            rdfcube::datagen::EXAMPLE1_MEASURE,
            AggFunc::Count,
        )
        .unwrap();
    let avg_cube = session
        .register(
            rdfcube::datagen::EXAMPLE1_CLASSIFIER,
            rdfcube::datagen::EXAMPLE4_MEASURE,
            AggFunc::Avg,
        )
        .unwrap();

    let (c1, s1) = session
        .transform(
            count_cube,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .unwrap();
    let (a1, s2) = session
        .transform(
            avg_cube,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 35 })],
            },
        )
        .unwrap();
    let (c2, s3) = session
        .transform(
            c1,
            &OlapOp::Slice {
                dim: "dage".into(),
                value: Term::integer(25),
            },
        )
        .unwrap();
    assert_eq!(s1, Strategy::Algorithm1);
    assert_eq!(s2, Strategy::SelectionOnAns);
    assert_eq!(s3, Strategy::SelectionOnAns);

    for h in [count_cube, avg_cube, c1, a1, c2] {
        let scratch = session.cube(h).query().answer(session.instance()).unwrap();
        assert!(session.answer(h).same_cells(&scratch));
    }
}

/// Every aggregation function, end to end, against hand-computed values.
///
/// Duplicate measure values come from distinct *embeddings* (ratings
/// through intermediate nodes, like the paper's ★-rating example in §2) —
/// an RDF graph is a set of triples, so a repeated literal triple would
/// collapse; repeated ratings must not.
#[test]
fn all_aggregation_functions() {
    let instance = parse_turtle(
        "<a> rdf:type <C> ; <g> <g1> ; <rated> <r1>, <r2>, <r3> .
         <r1> <score> 10 . <r2> <score> 20 . <r3> <score> 20 .
         <b> rdf:type <C> ; <g> <g1> ; <rated> <r4> . <r4> <score> 30 .
         <c> rdf:type <C> ; <g> <g2> ; <rated> <r5> . <r5> <score> 5 .",
    )
    .unwrap();
    let expectations: Vec<(AggFunc, &str, &str)> = vec![
        (AggFunc::Count, "4", "1"),
        (AggFunc::CountDistinct, "3", "1"),
        (AggFunc::Sum, "80", "5"),
        (AggFunc::Avg, "20", "5"),
        (AggFunc::Min, "10", "5"),
        (AggFunc::Max, "30", "5"),
    ];
    for (agg, g1_expected, g2_expected) in expectations {
        let mut session = OlapSession::new(instance.clone());
        let h = session
            .register(
                "c(?x, ?dg) :- ?x rdf:type C, ?x g ?dg",
                "m(?x, ?v) :- ?x rated ?r, ?r score ?v",
                agg,
            )
            .unwrap();
        let dict = session.instance().dict();
        let g1 = dict.id(&Term::iri("g1")).unwrap();
        let g2 = dict.id(&Term::iri("g2")).unwrap();
        let cube = session.answer(h);
        assert_eq!(
            cube.get(&[g1]).unwrap().display(dict),
            g1_expected,
            "{agg} g1"
        );
        assert_eq!(
            cube.get(&[g2]).unwrap().display(dict),
            g2_expected,
            "{agg} g2"
        );
    }
}

/// The video world's Example 6, end to end through the facade.
#[test]
fn video_drill_in_pipeline() {
    use rdfcube::datagen::{generate_videos, VideoConfig};
    let cfg = VideoConfig {
        n_videos: 300,
        n_websites: 40,
        ..Default::default()
    };
    let mut session = OlapSession::new(generate_videos(&cfg));
    let h = session
        .register(
            rdfcube::datagen::EXAMPLE6_CLASSIFIER,
            rdfcube::datagen::EXAMPLE6_MEASURE,
            AggFunc::Sum,
        )
        .unwrap();
    let (h2, strategy) = session
        .transform(h, &OlapOp::DrillIn { var: "d3".into() })
        .unwrap();
    assert_eq!(strategy, Strategy::Algorithm2);
    let scratch = session.cube(h2).query().answer(session.instance()).unwrap();
    assert!(session.answer(h2).same_cells(&scratch));
    // Drill back out of the browser dimension. The round trip lands on the
    // base cube's own query, and the cost-based catalog serves it with an
    // identity σ over the base cube's answer instead of re-running
    // Algorithm 1 over the drilled cube's (larger) pres.
    let (h3, strategy) = session
        .transform(
            h2,
            &OlapOp::DrillOut {
                dims: vec!["d3".into()],
            },
        )
        .unwrap();
    assert_eq!(strategy, Strategy::SelectionOnAns);
    assert_eq!(strategy.source, Some(h));
    // … which must agree with the original cube (browser was added then
    // removed; the remaining dimension is the same d2).
    assert!(session.answer(h3).same_cells(session.answer(h)));
}
