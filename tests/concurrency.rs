//! Concurrent-soundness suite for the shared query plane.
//!
//! N threads fire randomized blogger-world queries (and OLAP transforms)
//! at one [`SharedSession`] while a serial [`OlapSession`] over an
//! identically-seeded world answers the same queries one by one. Every
//! concurrent answer must be cell-identical to the serial one — under an
//! unbounded catalog and under an eviction-inducing memory budget.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rdfcube::prelude::*;
use rdfcube::set_eval_threads;

const THREADS: usize = 8;

const CLASSIFIER: &str =
    "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity";
const BODIES: [&str; 4] = [
    CLASSIFIER,
    "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
    "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
    "c(?x, ?dage, ?dsite) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x wrotePost ?p, ?p postedOn ?dsite",
];
const SITE_MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v";
const WORDS_MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p hasWordCount ?v";

fn blogger_session(triples: usize, budget: Option<usize>) -> OlapSession {
    let cfg = BloggerConfig::with_approx_triples(triples);
    let instance = rdfcube::datagen::generate_instance(&cfg);
    match budget {
        Some(bytes) => OlapSession::with_budget(instance, bytes),
        None => OlapSession::new(instance),
    }
}

/// A deterministic pool of distinct queries: every body × measure × agg
/// combination plus seeded Σ-diced variants of the age dimension.
fn query_pool(s: &mut OlapSession, seed: u64) -> Vec<ExtendedQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for body in BODIES {
        for (measure, agg) in [
            (SITE_MEASURE, AggFunc::Count),
            (WORDS_MEASURE, AggFunc::Sum),
            (WORDS_MEASURE, AggFunc::Max),
        ] {
            let eq = s.parse_query(body, measure, agg).unwrap();
            if let Ok(i) = eq.query().dim_index("dage") {
                let lo = 18 + rng.gen_range(0..20i64);
                let hi = lo + rng.gen_range(1..25i64);
                let mut sigma = Sigma::all(eq.query().n_dims());
                sigma.set(i, ValueSelector::IntRange { lo, hi });
                pool.push(ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap());
            }
            pool.push(eq);
        }
    }
    pool
}

/// Serial ground truth: the same pool answered one-by-one on an
/// identically-seeded world.
fn serial_answers(triples: usize, budget: Option<usize>, seed: u64) -> Vec<Cube> {
    let mut s = blogger_session(triples, budget);
    let pool = query_pool(&mut s, seed);
    pool.into_iter()
        .map(|eq| {
            let (h, _) = s.answer_query(eq).unwrap();
            s.answer(h).clone()
        })
        .collect()
}

/// Hammers `shared` from `THREADS` threads, each answering `iterations`
/// randomly-chosen pool queries in its own order, asserting every answer
/// against the serial cells.
fn hammer(shared: &SharedSession, pool: &[ExtendedQuery], expected: &[Cube], iterations: usize) {
    std::thread::scope(|scope| {
        for k in 0..THREADS {
            let worker = move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + k as u64);
                for _ in 0..iterations {
                    let i = rng.gen_range(0..pool.len());
                    let (h, _) = shared.answer_query(pool[i].clone()).expect("shared answer");
                    let snap = shared.snapshot(h).expect("snapshot");
                    assert!(
                        snap.answer().same_cells(&expected[i]),
                        "thread {k} observed cells diverging from the serial session \
                         for pool query #{i}"
                    );
                }
            };
            scope.spawn(worker);
        }
    });
}

/// 8 threads × random queries against one shared session must be
/// cell-identical to a serial session, and identical concurrent queries
/// must converge on single catalog entries.
#[test]
fn concurrent_answers_match_serial() {
    let seed = 0xA11CE;
    let expected = serial_answers(6_000, None, seed);
    let mut s = blogger_session(6_000, None);
    let pool = query_pool(&mut s, seed);
    let shared = s.into_shared();

    hammer(&shared, &pool, &expected, 40);

    // Dedup under race: every pool query was answered by several threads,
    // yet each distinct query materialized at most one catalog entry.
    assert!(
        shared.len() <= pool.len(),
        "racing duplicates materialized {} cubes for {} distinct queries",
        shared.len(),
        pool.len()
    );
    // Racing threads may each record a miss for the same not-yet-
    // materialized query, so misses can exceed the pool size — but the
    // steady state must be hit-dominated.
    let counters = shared.counters();
    assert_eq!(counters.hits + counters.misses, (THREADS * 40) as u64);
    assert!(
        counters.hits >= (THREADS * 40 * 3 / 4) as u64,
        "most traffic should be catalog hits, got {counters:?}"
    );
}

/// Same soundness bar while an eviction-inducing budget keeps recomputing
/// payloads underneath the racing readers.
#[test]
fn concurrent_answers_match_serial_under_eviction() {
    let seed = 0xE71C7;
    let budget = Some(24 * 1024);
    let expected = serial_answers(4_000, budget, seed);
    let mut s = blogger_session(4_000, budget);
    let pool = query_pool(&mut s, seed);
    let shared = s.into_shared();

    hammer(&shared, &pool, &expected, 25);

    let counters = shared.counters();
    assert!(
        counters.evictions > 0,
        "the tight budget must actually evict: {counters:?}"
    );
    assert!(
        counters.rehydrations > 0,
        "racing readers must have rehydrated evicted payloads: {counters:?}"
    );
    if let Some(b) = shared.budget() {
        assert!(
            shared.resident_bytes() <= b,
            "budget violated after the run"
        );
    }
}

/// A subject-hash sharded instance must answer cell-identically to the
/// flat serial session — under 8 racing readers with the per-shard
/// parallel BGP pipeline switched on, exercising the shard-routed and
/// shard-merged evaluation paths end to end.
#[test]
fn sharded_session_matches_flat_serial() {
    let seed = 0x5AAD;
    let expected = serial_answers(6_000, None, seed);

    let cfg = BloggerConfig::with_approx_triples(6_000);
    let instance = rdfcube::datagen::generate_instance(&cfg);
    let mut s = OlapSession::with_shards(instance, 8);
    let pool = query_pool(&mut s, seed);
    let shared = s.into_shared();
    assert_eq!(shared.shard_count(), 8);

    set_eval_threads(4);
    hammer(&shared, &pool, &expected, 25);
    set_eval_threads(1);
}

/// 8 writer threads hammer one lock-free registry — a counter, a gauge
/// and a log-bucketed histogram — while a racing reader snapshots
/// continuously. Every mid-flight snapshot must satisfy the histogram's
/// publication invariant (`Σ buckets ≥ count`, `sum` covering at least
/// the published count); after the join, every total must equal the sum
/// of per-thread increments exactly.
#[test]
fn registry_is_consistent_under_concurrent_load() {
    use rdfcube::obs::Registry;
    use std::sync::atomic::{AtomicBool, Ordering};

    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    let counter = reg.counter("test_ops_total");
    let gauge = reg.gauge("test_level");
    let hist = reg.histogram("test_latency_nanos");
    let writers_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut observations = 0u64;
            while !writers_done.load(Ordering::Acquire) {
                let snap = reg.snapshot();
                let h = snap.histogram("test_latency_nanos").expect("registered");
                let in_buckets: u64 = h.buckets.iter().sum();
                assert!(
                    in_buckets >= h.count,
                    "torn histogram read: {} bucketed samples but count {}",
                    in_buckets,
                    h.count
                );
                // Every fully-published sample is ≥ 1 below, so the sum
                // (written before the count) must cover them.
                assert!(
                    h.sum >= h.count,
                    "torn histogram read: sum {} below count {}",
                    h.sum,
                    h.count
                );
                observations += 1;
            }
            observations
        });
        for k in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    hist.record(1 + (i % 1024) + k as u64);
                }
            });
        }
        // The scope joins the writers only after this closure returns,
        // so flag completion from a dedicated watcher thread instead:
        // each writer is spawned above; wait for the counter to reach
        // its final value, then release the reader.
        scope.spawn(|| {
            while counter.get() < THREADS as u64 * PER_THREAD {
                std::thread::yield_now();
            }
            writers_done.store(true, Ordering::Release);
        });
        let observations = reader.join().expect("reader thread");
        assert!(observations > 0, "reader never snapshotted");
    });

    let snap = reg.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counter("test_ops_total"), total);
    assert_eq!(snap.gauge("test_level"), total);
    let h = snap.histogram("test_latency_nanos").expect("registered");
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().sum::<u64>(), total);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|k| (0..PER_THREAD).map(|i| 1 + (i % 1024) + k).sum::<u64>())
        .sum();
    assert_eq!(h.sum, expected_sum);
}

/// Both planes must expose identical metric names: a serial session and
/// its shared counterpart report the same registry schema, so one scrape
/// config covers either deployment.
#[test]
fn both_planes_expose_identical_metric_names() {
    let serial = blogger_session(2_000, None);
    let serial_names: Vec<String> = serial
        .metrics_snapshot()
        .names()
        .map(str::to_owned)
        .collect();
    let shared = blogger_session(2_000, None).into_shared();
    let shared_names: Vec<String> = shared
        .metrics_snapshot()
        .names()
        .map(str::to_owned)
        .collect();
    assert!(!serial_names.is_empty());
    assert_eq!(serial_names, shared_names);
}

/// Concurrent OLAP transforms (slice/dice/drill-out) on a shared base
/// cube agree with the serial session, with the parallel BGP pipeline
/// switched on for good measure.
#[test]
fn concurrent_transforms_match_serial() {
    let ops = [
        OlapOp::Slice {
            dim: "dage".into(),
            value: Term::integer(30),
        },
        OlapOp::Dice {
            constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 35 })],
        },
        OlapOp::DrillOut {
            dims: vec!["dage".into()],
        },
        OlapOp::DrillOut {
            dims: vec!["dcity".into()],
        },
    ];

    // Serial ground truth.
    let mut serial = blogger_session(6_000, None);
    let base = serial
        .register(CLASSIFIER, SITE_MEASURE, AggFunc::Count)
        .unwrap();
    let expected: Vec<Cube> = ops
        .iter()
        .map(|op| {
            let (h, _) = serial.transform(base, op).unwrap();
            serial.answer(h).clone()
        })
        .collect();

    let mut s = blogger_session(6_000, None);
    let base = s
        .register(CLASSIFIER, SITE_MEASURE, AggFunc::Count)
        .unwrap();
    let shared = s.into_shared();

    set_eval_threads(4);
    std::thread::scope(|scope| {
        for k in 0..THREADS {
            let ops = &ops;
            let expected = &expected;
            let shared = &shared;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD1CE + k as u64);
                for _ in 0..20 {
                    let i = rng.gen_range(0..ops.len());
                    let (h, _) = shared.transform(base, &ops[i]).expect("shared transform");
                    let snap = shared.snapshot(h).expect("snapshot");
                    assert!(
                        snap.answer().same_cells(&expected[i]),
                        "thread {k}: transform #{i} diverged from the serial session"
                    );
                }
            });
        }
    });
    set_eval_threads(1);
}
