//! Rewriting-soundness property suite: for seeded random cubes over
//! `datagen::blogger` worlds, the answer produced by **every strategy
//! applicable to an operation** must equal full re-evaluation of the
//! rewritten query (Definition 1). Where `propositions_prop.rs` checks each
//! proposition in isolation, this suite enumerates, per operation, all the
//! evaluation routes the session could take:
//!
//! * SLICE/DICE — σ over `ans(Q)` (Proposition 1), σ over `pres(Q)` then
//!   Equation 3, and from-scratch;
//! * DRILL-OUT — Algorithm 1 over `pres(Q)` and from-scratch; plus, when
//!   the removed dimension is single-valued, the naive `ans(Q)`-based
//!   re-aggregation (sound exactly in that regime — Example 5's caveat);
//! * DRILL-IN — Algorithm 2 over `pres(Q)` + instance and from-scratch;
//! * the session's own pick, which must match from-scratch whatever
//!   strategy it chose.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use rdfcube::core::rewrite;
use rdfcube::datagen::{generate_instance, BloggerConfig};
use rdfcube::prelude::*;
use rdfcube::AnalyticalQuery;

/// Classifier with the existential `?p`, so every operation is applicable.
const CLASSIFIER: &str = "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x livesIn ?dcity, ?x wrotePost ?p";
const MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?q, ?q hasWordCount ?v";

fn arb_config(multi: impl Strategy<Value = f64> + 'static) -> impl Strategy<Value = BloggerConfig> {
    (12usize..100, multi, any::<u64>(), 2usize..10, 3usize..15).prop_map(
        |(n, multi_city_prob, seed, n_cities, n_ages)| BloggerConfig {
            n_bloggers: n,
            multi_city_prob,
            n_cities,
            n_ages,
            max_posts: 3,
            seed,
            ..Default::default()
        },
    )
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::CountDistinct),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn fixture(cfg: &BloggerConfig, agg: AggFunc) -> (Graph, ExtendedQuery, PartialResult, Cube) {
    let mut instance = generate_instance(cfg);
    let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).unwrap();
    let ans = pres.to_cube(instance.dict()).unwrap();
    (instance, eq, pres, ans)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// SLICE and DICE: all three applicable routes coincide.
    #[test]
    fn sigma_ops_all_routes_agree(
        cfg in arb_config(0.0f64..0.6),
        agg in arb_agg(),
        slice_age in 18i64..40,
        lo in 18i64..40,
        width in 0i64..12,
    ) {
        let (instance, eq, pres, ans) = fixture(&cfg, agg);
        let ops = [
            OlapOp::Slice { dim: "dage".into(), value: Term::integer(slice_age) },
            OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo, hi: lo + width })],
            },
            OlapOp::Dice {
                constraints: vec![(
                    "dcity".into(),
                    ValueSelector::OneOf(vec![Term::literal("city0"), Term::literal("city2")]),
                )],
            },
        ];
        for op in &ops {
            let rewritten = rdfcube::apply(&eq, op).unwrap();
            let via_ans = rewrite::dice_from_ans(&ans, rewritten.sigma(), instance.dict());
            let via_pres = rewrite::dice_pres(&pres, rewritten.sigma(), instance.dict())
                .to_cube(instance.dict())
                .unwrap();
            let scratch = rewrite::from_scratch(&rewritten, &instance).unwrap();
            prop_assert!(via_ans.same_cells(&scratch), "σ over ans(Q) diverged for {op:?}");
            prop_assert!(via_pres.same_cells(&scratch), "σ over pres(Q) diverged for {op:?}");
        }
    }

    /// DRILL-OUT: Algorithm 1 agrees with from-scratch for any
    /// multi-valuedness, on every dimension subset.
    #[test]
    fn drill_out_all_routes_agree(cfg in arb_config(0.0f64..0.6), agg in arb_agg()) {
        let (instance, eq, pres, _ans) = fixture(&cfg, agg);
        for removed in [vec![0usize], vec![1], vec![0, 1]] {
            let names: Vec<String> = removed
                .iter()
                .map(|&i| eq.query().dim_names()[i].to_string())
                .collect();
            let rewritten = rdfcube::apply(&eq, &OlapOp::DrillOut { dims: names }).unwrap();
            let (alg1, _) = rewrite::drill_out_from_pres(&pres, &removed, instance.dict()).unwrap();
            let scratch = rewrite::from_scratch(&rewritten, &instance).unwrap();
            prop_assert!(alg1.same_cells(&scratch), "Algorithm 1 diverged removing {removed:?}");
        }
    }

    /// In the single-valued regime the naive ans(Q)-based drill-out is also
    /// sound for distributive counts — Example 5's error only exists under
    /// multi-valued dimensions.
    #[test]
    fn naive_drill_out_sound_when_single_valued(cfg in arb_config(Just(0.0)), seed_extra in any::<u8>()) {
        let _ = seed_extra;
        let (instance, eq, pres, ans) = fixture(&cfg, AggFunc::Count);
        let (alg1, _) = rewrite::drill_out_from_pres(&pres, &[1], instance.dict()).unwrap();
        let naive = rewrite::drill_out_from_ans(&ans, &[1], instance.dict()).unwrap();
        prop_assert!(naive.same_cells(&alg1), "naive ans-based drill-out diverged with single-valued dims");
        let rewritten = rdfcube::apply(
            &eq,
            &OlapOp::DrillOut { dims: vec![eq.query().dim_names()[1].to_string()] },
        ).unwrap();
        let scratch = rewrite::from_scratch(&rewritten, &instance).unwrap();
        prop_assert!(alg1.same_cells(&scratch));
    }

    /// DRILL-IN: Algorithm 2 agrees with from-scratch.
    #[test]
    fn drill_in_all_routes_agree(cfg in arb_config(0.0f64..0.6), agg in arb_agg()) {
        let (instance, eq, pres, _ans) = fixture(&cfg, agg);
        let p = eq.query().classifier().vars().id("p").unwrap();
        let (alg2, _) = rewrite::drill_in_from_pres(eq.query(), &pres, p, &instance).unwrap();
        let rewritten = rdfcube::apply(&eq, &OlapOp::DrillIn { var: "p".into() }).unwrap();
        let scratch = rewrite::from_scratch(&rewritten, &instance).unwrap();
        prop_assert!(alg2.same_cells(&scratch), "Algorithm 2 diverged");
    }

    /// The cost-based picker is sound regardless of which strategy it
    /// selects: posing independently-written dice / drill-out / drill-in
    /// shaped queries against a catalog holding the base cube (and
    /// whatever intermediate cubes earlier probes materialized), every
    /// answer equals from-scratch evaluation — in an unbudgeted session
    /// AND in one with a randomly tightened byte budget, which forces
    /// eviction/rehydration into the same runs.
    #[test]
    fn cost_based_picker_answers_equal_scratch(
        cfg in arb_config(0.0f64..0.6),
        agg in arb_agg(),
        lo in 18i64..40,
        width in 0i64..15,
        budget_frac in 1usize..8,
    ) {
        let mut instance = generate_instance(&cfg);
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();

        let mut free = OlapSession::new(instance.clone());
        free.register_query(ExtendedQuery::from_query(q.clone())).unwrap();
        let base_bytes = free.catalog().resident_bytes();
        // Anywhere from "everything fits" down to "barely one cube".
        let mut tight = OlapSession::with_budget(instance, base_bytes * budget_frac / 2 + base_bytes / 2);
        tight.register_query(ExtendedQuery::from_query(q)).unwrap();

        // Independently-written probes: renamed identity, diced, coarser
        // (drill-out shape), and +1 trailing dimension (drill-in shape).
        let probe_classifiers = [
            "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger, \
             ?u wrotePost ?w",
            "k(?u, ?town) :- ?u livesIn ?town, ?u hasAge ?a, ?u rdf:type Blogger, ?u wrotePost ?w",
            "k(?u, ?years) :- ?u livesIn ?c, ?u hasAge ?years, ?u rdf:type Blogger, ?u wrotePost ?w",
            "k(?u, ?years, ?town, ?post) :- ?u livesIn ?town, ?u hasAge ?years, \
             ?u rdf:type Blogger, ?u wrotePost ?post",
        ];
        let probe_measure = "w(?u, ?v) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q hasWordCount ?v";
        for (i, classifier) in probe_classifiers.iter().enumerate() {
            for sessions in [&mut free, &mut tight] {
                let mut eq = sessions.parse_query(classifier, probe_measure, agg).unwrap();
                if i == 0 {
                    // Dice the renamed identity probe on the age dimension.
                    let mut sigma = Sigma::all(eq.query().n_dims());
                    let years = eq.query().dim_index("years").unwrap();
                    sigma.set(years, ValueSelector::IntRange { lo, hi: lo + width });
                    eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
                }
                let (h, strategy) = sessions.answer_query(eq).unwrap();
                let scratch = sessions.cube(h).query().answer(sessions.instance()).unwrap();
                prop_assert!(
                    sessions.answer(h).same_cells(&scratch),
                    "picker chose {strategy} for probe {i} and diverged"
                );
            }
        }
        if let Some(budget) = tight.catalog().budget() {
            prop_assert!(
                tight.catalog().resident_bytes() <= budget
                    || tight.catalog().resident_len() == 1,
                "budget violated outside the single-oversized-cube case"
            );
        }
    }

    /// The view-selection advisor is sound under any byte budget. After a
    /// warmup of distinct diced variants through a budgeted session:
    ///
    /// * whatever `advise()` materializes, resident bytes stay within the
    ///   budget (modulo the catalog's single-oversized-cube pinning rule);
    /// * a second `advise()` on the unchanged log is a no-op (idempotence);
    /// * fresh never-warmed queries — derivable only from an unrestricted
    ///   lattice ancestor — answer cell-identically to an unadvised
    ///   reactive session at the same budget, and to from-scratch
    ///   evaluation.
    #[test]
    fn advisor_budget_idempotence_and_soundness(
        cfg in arb_config(0.0f64..0.5),
        agg in arb_agg(),
        budget_frac in 2usize..8,
        n_warm in 3usize..8,
    ) {
        let mut instance = generate_instance(&cfg);
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
        let base = ExtendedQuery::from_query(q);
        let dice_city = |i: usize| OlapOp::Dice {
            constraints: vec![(
                "dcity".into(),
                ValueSelector::OneOf(vec![Term::literal(format!("city{}", i % cfg.n_cities))]),
            )],
        };

        // One diced cube's footprint, to scale the budget from "barely one
        // cube" up to "most of the warmup fits".
        let mut probe = OlapSession::new(instance.clone());
        let (ph, _) = probe.answer_query(rdfcube::apply(&base, &dice_city(0)).unwrap()).unwrap();
        let slice_bytes =
            probe.cube(ph).answer().approx_bytes() + probe.cube(ph).pres().approx_bytes();
        let budget = slice_bytes * budget_frac / 2;

        let mut advised = OlapSession::with_budget(instance.clone(), budget);
        let mut reactive = OlapSession::with_budget(instance, budget);
        for i in 0..n_warm {
            let eq = rdfcube::apply(&base, &dice_city(i)).unwrap();
            advised.answer_query(eq.clone()).unwrap();
            reactive.answer_query(eq).unwrap();
        }

        advised.advise().unwrap();
        let cat = advised.catalog();
        prop_assert!(
            cat.resident_bytes() <= budget || cat.resident_len() == 1,
            "advised catalog exceeded its budget: {} resident bytes across {} cubes (budget {budget})",
            cat.resident_bytes(),
            cat.resident_len(),
        );

        let len = advised.len();
        let again = advised.advise().unwrap();
        prop_assert_eq!(again.selected, 0, "re-advise on an unchanged log selected views");
        prop_assert_eq!(again.considered, 0);
        prop_assert_eq!(advised.len(), len, "re-advise materialized something");

        // Fresh probes: a never-warmed age dice (the warmup only ever
        // diced dcity) and a never-warmed city pair — derivable only from
        // an unrestricted ancestor, whether or not the advisor built one.
        let fresh_ops = [
            OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::OneOf(vec![Term::integer(18)]))],
            },
            OlapOp::Dice {
                constraints: vec![(
                    "dcity".into(),
                    ValueSelector::OneOf(vec![
                        Term::literal("city0"),
                        Term::literal(format!("city{}", cfg.n_cities - 1)),
                    ]),
                )],
            },
        ];
        for op in &fresh_ops {
            let eq = rdfcube::apply(&base, op).unwrap();
            let (ha, _) = advised.answer_query(eq.clone()).unwrap();
            let (hr, _) = reactive.answer_query(eq).unwrap();
            prop_assert!(
                advised.answer(ha).same_cells(reactive.answer(hr)),
                "advised and reactive sessions diverged for {op:?}"
            );
            let scratch = advised.cube(ha).query().answer(advised.instance()).unwrap();
            prop_assert!(
                advised.answer(ha).same_cells(&scratch),
                "advised answer diverged from scratch for {op:?}"
            );
        }
    }

    /// The session's automatically chosen strategy is sound for every
    /// operation, and it picks the rewriting (never from-scratch) for the
    /// four paper operations.
    #[test]
    fn session_choice_is_sound(cfg in arb_config(0.0f64..0.6), agg in arb_agg(), slice_age in 18i64..40) {
        let mut instance = generate_instance(&cfg);
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, agg, instance.dict_mut()).unwrap();
        let mut session = OlapSession::new(instance);
        let h = session.register_query(ExtendedQuery::from_query(q)).unwrap();
        let ops = [
            OlapOp::Slice { dim: "dage".into(), value: Term::integer(slice_age) },
            OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 30 })],
            },
            OlapOp::DrillOut { dims: vec!["dcity".into()] },
            OlapOp::DrillIn { var: "p".into() },
        ];
        for op in &ops {
            let (next, strategy) = session.transform(h, op).unwrap();
            prop_assert!(
                strategy != rdfcube::Strategy::FromScratch,
                "session fell back to from-scratch for {op:?}"
            );
            let scratch = session.cube(next).query().answer(session.instance()).unwrap();
            prop_assert!(
                session.answer(next).same_cells(&scratch),
                "session strategy {strategy:?} diverged for {op:?}"
            );
        }
    }
}
