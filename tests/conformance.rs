//! Paper-conformance suite: the running example of *"Efficient OLAP
//! Operations For RDF Analytics"* (ICDE 2015), end to end.
//!
//! Builds the Figure 1 blogger analytical schema over a hand-written base
//! graph (with an RDFS subclass so saturation matters), registers the
//! Example 1 cube, then applies each of the four OLAP operations and checks
//! **both** the strategy the session picks (Propositions 1–3) **and** the
//! exact answer cardinalities/values, independently cross-checked against
//! from-scratch evaluation (Definition 1).

use rdfcube::prelude::*;
use rdfcube::AggValue;

/// The hand-computable blogger world:
///
/// | blogger | age | city   | posts (→ site)                  |
/// |---------|-----|--------|---------------------------------|
/// | user1   | 28  | Madrid | p1 → s1, p2 → s2                |
/// | user2   | 28  | Madrid | p3 → s1                         |
/// | user3   | 35  | NY     | p4 → s1, p5 → s2, p6 → s3       |
/// | user4   | 22  | Lisbon | p7 → s2                         |
/// | user5   | 22  | Madrid | (none — excluded by classifier) |
///
/// user1 is typed `Writer ⊑ Person`, so it only becomes a Blogger after
/// RDFS saturation.
fn blogger_world() -> Graph {
    let mut base = parse_turtle(
        "<Writer> rdfs:subClassOf <Person> .
         <user1> rdf:type <Writer> ; <age> 28 ; <city> \"Madrid\" .
         <user2> rdf:type <Person> ; <age> 28 ; <city> \"Madrid\" .
         <user3> rdf:type <Person> ; <age> 35 ; <city> \"NY\" .
         <user4> rdf:type <Person> ; <age> 22 ; <city> \"Lisbon\" .
         <user5> rdf:type <Person> ; <age> 22 ; <city> \"Madrid\" .
         <user1> <posted> <p1> . <p1> <on> <s1> .
         <user1> <posted> <p2> . <p2> <on> <s2> .
         <user2> <posted> <p3> . <p3> <on> <s1> .
         <user3> <posted> <p4> . <p4> <on> <s1> .
         <user3> <posted> <p5> . <p5> <on> <s2> .
         <user3> <posted> <p6> . <p6> <on> <s3> .
         <user4> <posted> <p7> . <p7> <on> <s2> .",
    )
    .expect("base graph parses");
    saturate(&mut base);

    let mut schema = AnalyticalSchema::new("blog");
    schema
        .add_node("Blogger", "n(?x) :- ?x rdf:type Person")
        .add_node("Age", "n(?a) :- ?x age ?a")
        .add_node("City", "n(?c) :- ?x city ?c")
        .add_node("BlogPost", "n(?p) :- ?x posted ?p")
        .add_node("Site", "n(?s) :- ?p on ?s")
        .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
        .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
        .add_edge(
            "wrotePost",
            "Blogger",
            "BlogPost",
            "e(?x, ?p) :- ?x posted ?p",
        )
        .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s");
    schema.materialize(&mut base).expect("schema materializes")
}

/// The Example 1 cube (count of posted-on sites by age × city), with an
/// explicit `?p` in the classifier so DRILL-IN is possible (Example 6 shape).
const CLASSIFIER: &str = "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x livesIn ?dcity, ?x wrotePost ?p";
const MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?q, ?q postedOn ?v";

struct Fixture {
    session: OlapSession,
    cube: rdfcube::CubeHandle,
}

fn fixture() -> Fixture {
    let mut session = OlapSession::new(blogger_world());
    let cube = session
        .register(CLASSIFIER, MEASURE, AggFunc::Count)
        .expect("Example 1 cube registers");
    Fixture { session, cube }
}

/// Asserts a handle's materialized answer equals Definition 1's direct
/// evaluation of its (rewritten) query on the instance.
fn assert_matches_from_scratch(session: &OlapSession, h: rdfcube::CubeHandle) {
    let scratch = session
        .cube(h)
        .query()
        .answer(session.instance())
        .expect("from-scratch evaluates");
    assert!(
        session.answer(h).same_cells(&scratch),
        "materialized answer diverges from from-scratch evaluation"
    );
}

#[test]
fn base_cube_matches_hand_computation() {
    let f = fixture();
    let ans = f.session.answer(f.cube);
    assert_eq!(ans.dim_names(), ["dage", "dcity"]);
    // user5 has no posts, so (22, Madrid) must NOT be a cell.
    assert_eq!(
        ans.len(),
        3,
        "three (age, city) groups have bloggers with posts"
    );

    let dict = f.session.instance().dict();
    let id = |t: &Term| dict.id(t).expect("term interned");
    let cell = |age: i64, city: &str| {
        ans.get(&[id(&Term::integer(age)), id(&Term::literal(city))])
            .cloned()
    };
    assert_eq!(
        cell(28, "Madrid"),
        Some(AggValue::Int(3)),
        "user1's 2 posts + user2's 1"
    );
    assert_eq!(cell(35, "NY"), Some(AggValue::Int(3)), "user3's 3 posts");
    assert_eq!(cell(22, "Lisbon"), Some(AggValue::Int(1)), "user4's 1 post");
    assert_eq!(cell(22, "Madrid"), None, "user5 writes no posts");
    assert_matches_from_scratch(&f.session, f.cube);
}

#[test]
fn slice_uses_selection_on_ans() {
    let mut f = fixture();
    let (sliced, strategy) = f
        .session
        .transform(
            f.cube,
            &OlapOp::Slice {
                dim: "dage".into(),
                value: Term::integer(28),
            },
        )
        .expect("slice applies");
    assert_eq!(strategy, Strategy::SelectionOnAns, "Proposition 1");
    let ans = f.session.answer(sliced);
    assert_eq!(ans.len(), 1, "only (28, Madrid) survives the slice");
    assert_eq!(ans.cells()[0].1, AggValue::Int(3));
    assert_matches_from_scratch(&f.session, sliced);
}

#[test]
fn dice_uses_selection_on_ans() {
    let mut f = fixture();
    let (diced, strategy) = f
        .session
        .transform(
            f.cube,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 22, hi: 30 })],
            },
        )
        .expect("dice applies");
    assert_eq!(strategy, Strategy::SelectionOnAns, "Proposition 1");
    let ans = f.session.answer(diced);
    assert_eq!(
        ans.len(),
        2,
        "(28, Madrid) and (22, Lisbon) fall in [22, 30]"
    );
    assert_matches_from_scratch(&f.session, diced);

    // A dice over *both* dimensions narrows to a single cell.
    let (corner, strategy) = f
        .session
        .transform(
            f.cube,
            &OlapOp::Dice {
                constraints: vec![
                    ("dage".into(), ValueSelector::IntRange { lo: 22, hi: 30 }),
                    (
                        "dcity".into(),
                        ValueSelector::OneOf(vec![Term::literal("Madrid")]),
                    ),
                ],
            },
        )
        .expect("two-dimensional dice applies");
    assert_eq!(strategy, Strategy::SelectionOnAns);
    assert_eq!(f.session.answer(corner).len(), 1);
    assert_matches_from_scratch(&f.session, corner);
}

#[test]
fn drill_out_uses_algorithm_1() {
    let mut f = fixture();
    let (coarse, strategy) = f
        .session
        .transform(
            f.cube,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .expect("drill-out applies");
    assert_eq!(strategy, Strategy::Algorithm1, "Proposition 2");
    let ans = f.session.answer(coarse);
    assert_eq!(ans.dim_names(), ["dage"]);
    assert_eq!(ans.len(), 3, "ages 22, 28, 35 remain");
    let dict = f.session.instance().dict();
    let age = |a: i64| ans.get(&[dict.id(&Term::integer(a)).unwrap()]).cloned();
    assert_eq!(age(28), Some(AggValue::Int(3)));
    assert_eq!(age(35), Some(AggValue::Int(3)));
    assert_eq!(age(22), Some(AggValue::Int(1)));
    assert_matches_from_scratch(&f.session, coarse);

    // Drilling out every dimension leaves the grand total: all 7 posts.
    let (total, strategy) = f
        .session
        .transform(
            f.cube,
            &OlapOp::DrillOut {
                dims: vec!["dage".into(), "dcity".into()],
            },
        )
        .expect("full drill-out applies");
    assert_eq!(strategy, Strategy::Algorithm1);
    let ans = f.session.answer(total);
    assert_eq!(ans.len(), 1);
    assert_eq!(ans.get(&[]), Some(&AggValue::Int(7)));
    assert_matches_from_scratch(&f.session, total);
}

#[test]
fn drill_in_uses_algorithm_2() {
    let mut f = fixture();
    let (fine, strategy) = f
        .session
        .transform(f.cube, &OlapOp::DrillIn { var: "p".into() })
        .expect("drill-in applies");
    assert_eq!(strategy, Strategy::Algorithm2, "Proposition 3");
    let ans = f.session.answer(fine);
    assert_eq!(ans.n_dims(), 3, "the post joins age × city as a dimension");
    assert_eq!(ans.len(), 7, "one cell per (age, city, post): p1–p7");
    assert_matches_from_scratch(&f.session, fine);

    // Spot-check one refined cell: (28, Madrid, p1) aggregates user1's
    // measure bag — 2 posted-on sites.
    let dict = f.session.instance().dict();
    let p1 = dict.id(&Term::iri("p1")).expect("p1 interned");
    let p1_cells: Vec<_> = ans
        .cells()
        .iter()
        .filter(|(key, _)| key.contains(&p1))
        .collect();
    assert_eq!(p1_cells.len(), 1);
    assert_eq!(p1_cells[0].1, AggValue::Int(2));
}

#[test]
fn drill_in_then_out_returns_to_base_cube() {
    let mut f = fixture();
    let (fine, _) = f
        .session
        .transform(f.cube, &OlapOp::DrillIn { var: "p".into() })
        .expect("drill-in applies");
    let new_dim = f.session.answer(fine).dim_names()[2].to_string();
    let (back, strategy) = f
        .session
        .transform(
            fine,
            &OlapOp::DrillOut {
                dims: vec![new_dim],
            },
        )
        .expect("drill-out applies");
    // The round trip lands on the base cube's own query, and the catalog's
    // cost model notices: an identity σ over the base cube's materialized
    // answer beats re-running Algorithm 1 over the drilled cube's pres.
    assert_eq!(strategy, Strategy::SelectionOnAns);
    assert_eq!(strategy.source, Some(f.cube), "served by the base cube");
    assert!(
        f.session.answer(back).same_cells(f.session.answer(f.cube)),
        "drill-in then drill-out of the same variable is the identity"
    );
}

#[test]
fn operation_chain_keeps_strategies_and_answers_sound() {
    let mut f = fixture();
    // slice ∘ drill-out ∘ drill-in chain, verified at every step.
    let (step1, s1) = f
        .session
        .transform(f.cube, &OlapOp::DrillIn { var: "p".into() })
        .expect("drill-in applies");
    let (step2, s2) = f
        .session
        .transform(
            step1,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .expect("drill-out applies");
    let (step3, s3) = f
        .session
        .transform(
            step2,
            &OlapOp::Slice {
                dim: "dage".into(),
                value: Term::integer(35),
            },
        )
        .expect("slice applies");
    assert_eq!(s1, Strategy::Algorithm2);
    assert_eq!(s2, Strategy::Algorithm1);
    assert_eq!(s3, Strategy::SelectionOnAns);
    for h in [step1, step2, step3] {
        assert_matches_from_scratch(&f.session, h);
    }
    // After slicing age 35, only user3's three posts remain as cells; each
    // cell aggregates user3's full measure bag (its 3 posted-on sites).
    let ans = f.session.answer(step3);
    assert_eq!(ans.len(), 3);
    assert!(ans.cells().iter().all(|(_, v)| *v == AggValue::Int(3)));
}
