//! Trace-shape properties of the query-plane telemetry.
//!
//! For randomized blogger worlds and workloads, every trace returned by
//! [`OlapSession::answer_traced`] must be structurally sound:
//!
//! * the span tree is rooted at `answer_query` and every span's parent
//!   index points at an earlier span (a well-formed arena tree);
//! * the `strategy` span's detail names exactly the strategy the
//!   accompanying [`ExplainedStrategy`] reports;
//! * every `bgp_step` span's surviving rows (`rows_out`) never exceed
//!   the rows the pattern matched before post-filtering (`rows_matched`)
//!   — row counts are monotone through filters;
//! * the root's direct stage spans account for (almost) all of the
//!   end-to-end wall time.

use proptest::prelude::*;
// Explicit import wins over the glob imports: `Strategy` here always
// means proptest's trait, never the session's strategy enum.
use proptest::strategy::Strategy;
use rdfcube::datagen::{generate_instance, BloggerConfig};
use rdfcube::prelude::*;

const CLASSIFIER: &str = "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, \
     ?x livesIn ?dcity, ?x wrotePost ?p";
const MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?q, ?q hasWordCount ?v";

fn arb_config() -> impl Strategy<Value = BloggerConfig> {
    (20usize..150, 0.0f64..0.6, any::<u64>()).prop_map(|(n, multi, seed)| BloggerConfig {
        n_bloggers: n,
        multi_city_prob: multi,
        seed,
        ..Default::default()
    })
}

/// Structural soundness checks shared by every traced answer.
fn assert_trace_sound(explained: &ExplainedStrategy, trace: &QueryTrace) {
    let spans = trace.spans();
    assert!(!spans.is_empty(), "traced answer produced an empty trace");
    let root = trace.root().unwrap();
    assert_eq!(root.name, "answer_query");
    assert!(root.parent.is_none());
    for (i, span) in spans.iter().enumerate().skip(1) {
        let parent = span
            .parent
            .unwrap_or_else(|| panic!("non-root span {:?} has no parent", span.name));
        assert!(
            parent < i,
            "span {:?} points at a later parent — not a well-formed arena tree",
            span.name
        );
    }
    let strategy_span = trace
        .find("strategy")
        .expect("every traced answer records its strategy pick");
    assert_eq!(strategy_span.detail, explained.strategy.to_string());
    for step in trace.find_all("bgp_step") {
        let matched = step
            .attrs
            .iter()
            .find(|(k, _)| *k == "rows_matched")
            .map(|(_, v)| *v)
            .expect("bgp_step records rows_matched");
        assert!(
            step.rows_out <= matched,
            "post-filter rows ({}) exceed matched rows ({})",
            step.rows_out,
            matched
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random worlds, random dice: the trace of every answer — the
    /// from-scratch base and a derived dice — is structurally sound and
    /// consistent with the planner's explanation.
    #[test]
    fn traced_answers_have_sound_shape(cfg in arb_config(), lo in 18i64..35, width in 1i64..20) {
        let mut instance = generate_instance(&cfg);
        let q = AnalyticalQuery::parse(CLASSIFIER, MEASURE, AggFunc::Count, instance.dict_mut())
            .unwrap();
        let eq = ExtendedQuery::from_query(q);
        let mut s = OlapSession::new(instance);

        let (h, explained, trace) = s.answer_traced(eq.clone()).unwrap();
        assert_trace_sound(&explained, &trace);
        prop_assert!(trace.find("from_scratch").is_some());

        let dice = OlapOp::Dice {
            constraints: vec![("dage".into(), ValueSelector::IntRange { lo, hi: lo + width })],
        };
        let (_, explained, trace) = s.transform_traced(h, &dice).unwrap();
        assert_trace_sound(&explained, &trace);

        // Re-asking the base query is a duplicate hit — still traced,
        // still sound.
        let (_, explained, trace) = s.answer_traced(eq).unwrap();
        assert_trace_sound(&explained, &trace);
        prop_assert!(trace.find("duplicate").is_some());
    }
}

/// The root's direct stage spans must account for nearly all of the
/// end-to-end wall time on the 100k blogger world (the acceptance bar
/// is: stage sums within 10% of the traced total).
#[test]
fn stage_times_cover_end_to_end_wall_time() {
    let cfg = BloggerConfig::with_approx_triples(100_000);
    let mut instance = generate_instance(&cfg);
    let q =
        AnalyticalQuery::parse(CLASSIFIER, MEASURE, AggFunc::Count, instance.dict_mut()).unwrap();
    let eq = ExtendedQuery::from_query(q);
    let mut s = OlapSession::new(instance);
    let (_, _, trace) = s.answer_traced(eq).unwrap();
    let coverage = trace.stage_coverage();
    assert!(
        coverage >= 0.9,
        "stage spans cover only {:.1}% of the traced wall time",
        coverage * 100.0
    );
    assert!(coverage <= 1.0 + 1e-9, "stage spans exceed total time");
}

/// The shared plane's traces carry the same shape as the serial plane's.
#[test]
fn shared_plane_traces_are_sound() {
    let cfg = BloggerConfig::with_approx_triples(5_000);
    let mut instance = generate_instance(&cfg);
    let q =
        AnalyticalQuery::parse(CLASSIFIER, MEASURE, AggFunc::Count, instance.dict_mut()).unwrap();
    let eq = ExtendedQuery::from_query(q);
    let shared = OlapSession::new(instance).into_shared();

    let (_, explained, trace) = shared.answer_traced(eq.clone()).unwrap();
    assert_trace_sound(&explained, &trace);
    assert!(trace.find("from_scratch").is_some());

    let (_, explained, trace) = shared.answer_traced(eq).unwrap();
    assert_trace_sound(&explained, &trace);
    assert!(trace.find("duplicate").is_some());
}
