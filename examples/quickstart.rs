//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 blogger data, materializes the analytical schema,
//! poses Example 1's cube ("number of sites where each blogger posts, by
//! age and city"), and applies Example 3's OLAP operations, printing each
//! cube and the strategy that answered it.
//!
//! Run with: `cargo run --example quickstart`

use rdfcube::prelude::*;

fn main() {
    // ---- 1. Base RDF data (the paper's §2 example world) ----------------
    let mut base = parse_turtle(
        "<user1> rdf:type <Person> ; <age> 28 ; <city> \"Madrid\" ;
                 <name> \"Bill\", \"William\" .
         <user3> rdf:type <Person> ; <age> 35 ; <city> \"NY\" .
         <user4> rdf:type <Person> ; <age> 35 ; <city> \"NY\" .
         <user1> <knows> <user3> .
         <user1> <posted> <p1>, <p2>, <p3> .
         <p1> <on> <s1> . <p2> <on> <s1> . <p3> <on> <s2> .
         <user3> <posted> <p4> . <p4> <on> <s2> .
         <user4> <posted> <p5> . <p5> <on> <s3> .",
    )
    .expect("base data parses");
    saturate(&mut base);
    println!("Base graph: {} triples", base.len());

    // ---- 2. The Figure 1 analytical schema ------------------------------
    let mut schema = AnalyticalSchema::new("blog");
    schema
        .add_node("Blogger", "n(?x) :- ?x rdf:type Person")
        .add_node("Age", "n(?a) :- ?x age ?a")
        .add_node("City", "n(?c) :- ?x city ?c")
        .add_node("Name", "n(?n) :- ?x name ?n")
        .add_node("BlogPost", "n(?p) :- ?x posted ?p")
        .add_node("Site", "n(?s) :- ?p on ?s")
        .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
        .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
        .add_edge("identifiedBy", "Blogger", "Name", "e(?x, ?n) :- ?x name ?n")
        .add_edge(
            "acquaintedWith",
            "Blogger",
            "Blogger",
            "e(?x, ?y) :- ?x knows ?y",
        )
        .add_edge(
            "wrotePost",
            "Blogger",
            "BlogPost",
            "e(?x, ?p) :- ?x posted ?p",
        )
        .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s");
    let instance = schema.materialize(&mut base).expect("schema materializes");
    println!("AnS instance: {} triples\n", instance.len());

    // ---- 3. Example 1's analytical query (cube) -------------------------
    let mut session = OlapSession::new(instance);
    let cube = session
        .register(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
        )
        .expect("Example 1 cube");
    println!("Q — sites per blogger, by (age, city)   [Example 2 expects ⟨28,Madrid,3⟩ ⟨35,NY,2⟩]");
    println!(
        "{}",
        session.answer(cube).to_table(session.instance().dict())
    );

    // ---- 4. Example 3's OLAP operations ---------------------------------
    let (sliced, st) = session
        .transform(
            cube,
            &OlapOp::Slice {
                dim: "dage".into(),
                value: Term::integer(35),
            },
        )
        .expect("slice");
    println!("SLICE dage=35  (answered by {st})");
    println!(
        "{}",
        session.answer(sliced).to_table(session.instance().dict())
    );

    let (diced, st) = session
        .transform(
            cube,
            &OlapOp::Dice {
                constraints: vec![
                    ("dage".into(), ValueSelector::one(Term::integer(28))),
                    (
                        "dcity".into(),
                        ValueSelector::OneOf(vec![Term::literal("Madrid"), Term::literal("Kyoto")]),
                    ),
                ],
            },
        )
        .expect("dice");
    println!("DICE dage∈{{28}}, dcity∈{{Madrid, Kyoto}}  (answered by {st})");
    println!(
        "{}",
        session.answer(diced).to_table(session.instance().dict())
    );

    let (drilled_out, st) = session
        .transform(
            cube,
            &OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .expect("drill-out");
    println!("DRILL-OUT dage  (answered by {st})");
    println!(
        "{}",
        session
            .answer(drilled_out)
            .to_table(session.instance().dict())
    );

    let (drilled_in, st) = session
        .transform(drilled_out, &OlapOp::DrillIn { var: "dage".into() })
        .expect("drill-in");
    println!("DRILL-IN dage — Example 3's round trip back to Q  (answered by {st})");
    println!(
        "{}",
        session
            .answer(drilled_in)
            .to_table(session.instance().dict())
    );
}
