//! SPARQL 1.1 aggregation vs analytical queries — the paper's §4
//! comparison, executable.
//!
//! SPARQL couples classification and measurement in a single BGP whose
//! solution multiset is grouped; an AnQ evaluates classifier and measure
//! *independently* and joins per fact. On single-valued data the two agree.
//! On multi-valued RDF they diverge exactly where the paper says SPARQL is
//! "less expressive": a fact multi-valued along an ungrouped classifier
//! variable multiplies its measure values into the aggregate.
//!
//! Run with: `cargo run --example sparql_aggregation`

use rdfcube::prelude::*;
use rdfcube::{evaluate_sparql, parse_sparql, SparqlResult};

fn main() {
    // user1 lives in BOTH Madrid and Lisbon (multi-valued livesIn).
    let mut instance = parse_turtle(
        "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\", \"Lisbon\" .
         <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
         <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
         <user1> <wrotePost> <p1>, <p2>, <p3> .
         <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
         <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
         <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
    )
    .expect("instance parses");

    // ---- SPARQL: total posting events, with livesIn in the BGP -----------
    let sparql = parse_sparql(
        "SELECT (COUNT(?site) AS ?n) \
         WHERE { ?x a <Blogger> . ?x <livesIn> ?city . \
                 ?x <wrotePost> ?p . ?p <postedOn> ?site }",
        instance.dict_mut(),
    )
    .expect("SPARQL parses");
    let SparqlResult::Groups(rows) = evaluate_sparql(&instance, &sparql).expect("evaluates") else {
        unreachable!("aggregate query returns groups");
    };
    println!(
        "SPARQL   COUNT(?site) over one BGP mentioning ?city : {}",
        rows[0].aggregates[0].display(instance.dict())
    );
    println!("         (user1's 3 posts × 2 cities inflate the count)");

    // ---- AnQ: the same question, classifier and measure separated --------
    let mut session = OlapSession::new(instance);
    let cube = session
        .register(
            // ?city constrains facthood but is NOT a join input to the measure.
            "c(?x) :- ?x rdf:type Blogger, ?x livesIn ?city",
            "m(?x, ?site) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?site",
            AggFunc::Count,
        )
        .expect("AnQ registers");
    let total = session.answer(cube).get(&[]).expect("grand total exists");
    println!(
        "AnQ      count(site) with a separate measure query   : {}",
        total.display(session.instance().dict())
    );
    println!("         (each fact contributes its measure bag exactly once)\n");

    // ---- Where they agree: per-city grouping ------------------------------
    let mut instance2 = session.instance().clone();
    let sparql = parse_sparql(
        "SELECT ?city (COUNT(?site) AS ?n) (COUNT(DISTINCT ?site) AS ?distinct) \
         WHERE { ?x a <Blogger> . ?x <livesIn> ?city . \
                 ?x <wrotePost> ?p . ?p <postedOn> ?site } \
         GROUP BY ?city",
        instance2.dict_mut(),
    )
    .expect("grouped SPARQL parses");
    let SparqlResult::Groups(rows) = evaluate_sparql(&instance2, &sparql).expect("evaluates")
    else {
        unreachable!();
    };
    println!("SPARQL GROUP BY ?city (agrees with the AnQ cube per cell):");
    for row in &rows {
        let dict = instance2.dict();
        println!(
            "  {:<8} count={} distinct={}",
            dict.term(row.keys[0]).display_compact(),
            row.aggregates[0].display(dict),
            row.aggregates[1].display(dict)
        );
    }

    let cube = session
        .register(
            "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
            "m(?x, ?site) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?site",
            AggFunc::Count,
        )
        .expect("per-city AnQ registers");
    println!(
        "\nAnQ cube by city:\n{}",
        session.answer(cube).to_table(session.instance().dict())
    );
}
