//! DRILL-IN with auxiliary queries — the paper's Example 6 / Figure 3.
//!
//! First replays the exact Figure 3 micro-instance and prints every
//! intermediate artifact the figure shows (pres(Q), ans(Q), q_aux and its
//! answer, ans(Q_DRILL-IN)); then scales the same scenario up with the
//! video-world generator and times Algorithm 2 against from-scratch
//! evaluation.
//!
//! Run with: `cargo run --release --example video_drill_in`

use rdfcube::prelude::*;
use rdfcube::{build_aux_query, datagen, evaluate};
use std::time::Instant;

fn main() {
    // ---- Figure 3, verbatim ----------------------------------------------
    let figure3 = parse_turtle(
        "<website1> <hasUrl> <URL1> ; <supportsBrowser> <firefox> .
         <website2> <hasUrl> <URL2> ; <supportsBrowser> <chrome> .
         <video1> <postedOn> <website1>, <website2> .
         <video1> rdf:type <Video> ; <viewNum> 42 .",
    )
    .expect("Figure 3 instance parses");

    let mut session = OlapSession::new(figure3);
    let cube = session
        .register(
            datagen::EXAMPLE6_CLASSIFIER,
            datagen::EXAMPLE6_MEASURE,
            AggFunc::Sum,
        )
        .expect("Example 6 cube");

    println!(
        "Figure 3 — pres(Q): {} rows",
        session.cube(cube).pres().len()
    );
    for row in session.cube(cube).pres().rows() {
        let dict = session.instance().dict();
        println!(
            "  x={} d2={} k={} v={}",
            dict.term(row.root),
            dict.term(row.dims[0]),
            row.key,
            dict.term(row.value)
        );
    }
    println!(
        "\nans(Q):\n{}",
        session.answer(cube).to_table(session.instance().dict())
    );

    // The auxiliary query of Definition 6, printed in the paper's notation.
    let classifier = session.cube(cube).query().query().classifier().clone();
    let d3 = classifier.vars().id("d3").expect("?d3 exists");
    let aux = build_aux_query(&classifier, d3).expect("Definition 6 construction");
    println!(
        "q_aux (Definition 6): {}",
        aux.to_text(session.instance().dict())
    );
    let aux_answer = evaluate(session.instance(), &aux, Semantics::Set).expect("aux evaluates");
    println!("q_aux answer: {} rows", aux_answer.len());

    let (drilled, strategy) = session
        .transform(cube, &OlapOp::DrillIn { var: "d3".into() })
        .expect("drill-in");
    println!(
        "\nDRILL-IN d3 (browser), answered by {strategy}:\n{}",
        session.answer(drilled).to_table(session.instance().dict())
    );

    // ---- The same scenario at scale ---------------------------------------
    let cfg = VideoConfig {
        n_videos: 20_000,
        n_websites: 500,
        ..Default::default()
    };
    let instance = datagen::generate_videos(&cfg);
    println!("\nScaled video world: {} triples", instance.len());
    let mut session = OlapSession::new(instance);
    let cube = session
        .register(
            datagen::EXAMPLE6_CLASSIFIER,
            datagen::EXAMPLE6_MEASURE,
            AggFunc::Sum,
        )
        .expect("scaled cube");
    println!(
        "ans(Q): {} cells; pres(Q): {} rows",
        session.answer(cube).len(),
        session.cube(cube).pres().len()
    );

    let t0 = Instant::now();
    let (drilled, strategy) = session
        .transform(cube, &OlapOp::DrillIn { var: "d3".into() })
        .expect("drill-in");
    let alg2 = t0.elapsed();

    let t0 = Instant::now();
    let scratch = session
        .cube(drilled)
        .query()
        .answer(session.instance())
        .expect("scratch");
    let scratch_time = t0.elapsed();

    assert!(session.answer(drilled).same_cells(&scratch));
    println!(
        "DRILL-IN browser     {strategy}: {alg2:?}   from-scratch: {scratch_time:?}   \
         ({} cells, answers equal)",
        scratch.len()
    );
}
