//! Blogger analytics at scale: rewriting vs from-scratch, timed.
//!
//! Generates a blogger world (≈50k triples), registers the paper's Example 1
//! and Example 4 cubes, then answers a slice, a dice, and a drill-out both
//! ways — via the session's rewriting strategies and via full re-evaluation
//! — reporting wall-clock times and verifying the answers match.
//!
//! Run with: `cargo run --release --example blogger_analytics`

use rdfcube::prelude::*;
use rdfcube::{core::rewrite, datagen};
use std::time::Instant;

fn main() {
    let cfg = BloggerConfig {
        n_bloggers: 4_000,
        multi_city_prob: 0.15,
        ..Default::default()
    };
    let t0 = Instant::now();
    let instance = datagen::generate_instance(&cfg);
    println!(
        "Generated blogger instance: {} triples, {} terms ({:?})\n",
        instance.len(),
        instance.dict().len(),
        t0.elapsed()
    );

    let mut session = OlapSession::new(instance);

    let t0 = Instant::now();
    let cube = session
        .register(
            datagen::EXAMPLE1_CLASSIFIER,
            datagen::EXAMPLE1_MEASURE,
            AggFunc::Count,
        )
        .expect("register Example 1 cube");
    println!(
        "Materialized Q (count of sites by age × city): {} cells, pres(Q) = {} rows  ({:?})",
        session.answer(cube).len(),
        session.cube(cube).pres().len(),
        t0.elapsed()
    );

    // ---- SLICE: rewriting vs scratch ------------------------------------
    let slice = OlapOp::Slice {
        dim: "dage".into(),
        value: Term::integer(30),
    };
    let t0 = Instant::now();
    let (h_slice, strategy) = session.transform(cube, &slice).expect("slice");
    let rewrite_time = t0.elapsed();

    let t0 = Instant::now();
    let scratch = session
        .cube(h_slice)
        .query()
        .answer(session.instance())
        .expect("scratch");
    let scratch_time = t0.elapsed();

    assert!(session.answer(h_slice).same_cells(&scratch));
    println!(
        "\nSLICE dage=30        {strategy}: {rewrite_time:?}   from-scratch: {scratch_time:?}  \
         ({} cells, answers equal)",
        scratch.len()
    );

    // ---- DICE on an age range (Example 4's shape) ------------------------
    let dice = OlapOp::Dice {
        constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 30 })],
    };
    let t0 = Instant::now();
    let (h_dice, strategy) = session.transform(cube, &dice).expect("dice");
    let rewrite_time = t0.elapsed();
    let t0 = Instant::now();
    let scratch = session
        .cube(h_dice)
        .query()
        .answer(session.instance())
        .expect("scratch");
    let scratch_time = t0.elapsed();
    assert!(session.answer(h_dice).same_cells(&scratch));
    println!(
        "DICE 20≤dage≤30      {strategy}: {rewrite_time:?}   from-scratch: {scratch_time:?}  \
         ({} cells, answers equal)",
        scratch.len()
    );

    // ---- DRILL-OUT: Algorithm 1 vs scratch -------------------------------
    let drill = OlapOp::DrillOut {
        dims: vec!["dage".into()],
    };
    let t0 = Instant::now();
    let (h_out, strategy) = session.transform(cube, &drill).expect("drill-out");
    let rewrite_time = t0.elapsed();
    let t0 = Instant::now();
    let scratch = session
        .cube(h_out)
        .query()
        .answer(session.instance())
        .expect("scratch");
    let scratch_time = t0.elapsed();
    assert!(session.answer(h_out).same_cells(&scratch));
    println!(
        "DRILL-OUT dage       {strategy}: {rewrite_time:?}   from-scratch: {scratch_time:?}  \
         ({} cells, answers equal)",
        scratch.len()
    );

    // ---- Example 5's warning, quantified ---------------------------------
    // The naive ans-based drill-out double-counts facts that are
    // multi-valued along the REMOVED dimension — here dcity, the dimension
    // the generator makes multi-valued.
    let (h_city_out, _) = session
        .transform(
            cube,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .expect("drill-out dcity");
    let correct = session.answer(h_city_out);
    let naive = rewrite::drill_out_from_ans(session.answer(cube), &[1], session.instance().dict())
        .expect("count is distributive, so the naive method *runs* — wrongly");
    let wrong = naive
        .cells()
        .iter()
        .filter(|(k, v)| correct.get(k).is_none_or(|c| c != v))
        .count();
    println!(
        "\nNaive ans-based drill-out of dcity (Example 5's trap): {wrong}/{} cells wrong \
         at multi-city probability {}",
        naive.len(),
        cfg.multi_city_prob
    );

    // ---- A second cube: Example 4's average word count -------------------
    let t0 = Instant::now();
    let words = session
        .register(
            datagen::EXAMPLE1_CLASSIFIER,
            datagen::EXAMPLE4_MEASURE,
            AggFunc::Avg,
        )
        .expect("register Example 4 cube");
    println!(
        "\nMaterialized Example 4 cube (avg words by age × city): {} cells ({:?})",
        session.answer(words).len(),
        t0.elapsed()
    );
    let (h, strategy) = session
        .transform(
            words,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 30 })],
            },
        )
        .expect("dice avg cube");
    println!(
        "DICE on the avg cube answered by {strategy}; {} cells",
        session.answer(h).len()
    );
}
