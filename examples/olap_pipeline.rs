//! A realistic OLAP exploration session: chained cube transformations.
//!
//! Mimics an analyst drilling around a dataset: start broad, dice to a
//! cohort, drop a dimension, pull in another — every step answered from the
//! previous step's materialized results where the paper's propositions
//! allow, with the chosen strategy reported together with the traced
//! per-stage wall times of each answer. Ends with a consistency audit
//! re-checking every materialized cube against from-scratch evaluation.
//!
//! Run with: `cargo run --release --example olap_pipeline`

use rdfcube::datagen;
use rdfcube::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = BloggerConfig {
        n_bloggers: 2_000,
        multi_city_prob: 0.2,
        missing_age_prob: 0.1,
        ..Default::default()
    };
    let instance = datagen::generate_instance(&cfg);
    println!("Instance: {} triples\n", instance.len());
    let mut session = OlapSession::new(instance);

    let mut step = 0usize;
    let mut log = |label: &str,
                   strategy: &dyn std::fmt::Display,
                   cells: usize,
                   took: std::time::Duration,
                   trace: &QueryTrace| {
        step += 1;
        println!("{step:>2}. {label:<44} {cells:>6} cells  {took:>10?}  {strategy}");
        // The observed side of the explanation: per-stage wall times,
        // row counts and bytes from the traced run.
        if !trace.spans().is_empty() {
            for line in trace.render().lines() {
                println!("      {line}");
            }
        }
    };

    let t0 = Instant::now();
    let q0 = session
        .register(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity, \
             ?x wrotePost ?p",
            "m(?x, ?vw) :- ?x rdf:type Blogger, ?x wrotePost ?q, ?q hasWordCount ?vw",
            AggFunc::Sum,
        )
        .expect("register base cube");
    log(
        "register: total words by (age, city)",
        &Strategy::FromScratch,
        session.answer(q0).len(),
        t0.elapsed(),
        &QueryTrace::default(),
    );

    let t0 = Instant::now();
    let (q1, s1, t1) = session
        .transform_traced(
            q0,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 25, hi: 45 })],
            },
        )
        .expect("dice to 25–45");
    log(
        "dice: 25 ≤ age ≤ 45",
        &s1,
        session.answer(q1).len(),
        t0.elapsed(),
        &t1,
    );

    let t0 = Instant::now();
    let (q2, s2, t2) = session
        .transform_traced(
            q1,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 30, hi: 40 })],
            },
        )
        .expect("narrow the dice");
    log(
        "dice (narrower): 30 ≤ age ≤ 40",
        &s2,
        session.answer(q2).len(),
        t0.elapsed(),
        &t2,
    );

    let t0 = Instant::now();
    let (q3, s3, t3) = session
        .transform_traced(
            q2,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .expect("drill-out city");
    log(
        "drill-out: drop city (age only)",
        &s3,
        session.answer(q3).len(),
        t0.elapsed(),
        &t3,
    );

    let t0 = Instant::now();
    let (q4, s4, t4) = session
        .transform_traced(
            q3,
            &OlapOp::DrillIn {
                var: "dcity".into(),
            },
        )
        .expect("drill city back in");
    log(
        "drill-in: bring city back",
        &s4,
        session.answer(q4).len(),
        t0.elapsed(),
        &t4,
    );

    let t0 = Instant::now();
    let (q5, s5, t5) = session
        .transform_traced(q4, &OlapOp::DrillIn { var: "p".into() })
        .expect("drill-in post");
    log(
        "drill-in: add the post dimension",
        &s5,
        session.answer(q5).len(),
        t0.elapsed(),
        &t5,
    );

    let t0 = Instant::now();
    let (q6, s6, t6) = session
        .transform_traced(
            q5,
            &OlapOp::DrillOut {
                dims: vec!["dage".into(), "p".into()],
            },
        )
        .expect("drill-out two dims");
    log(
        "drill-out: drop age and post at once",
        &s6,
        session.answer(q6).len(),
        t0.elapsed(),
        &t6,
    );

    // A widening dice cannot be answered from the narrower q2 — but the
    // catalog is not limited to the cube the operation was applied to: it
    // finds the unrestricted base cube q0 in the same derivation family
    // and answers by σ over *its* answer (Proposition 1 w.r.t. q0). The
    // pre-catalog session, which only ever looked at the direct source,
    // had to fall back to from-scratch here.
    let t0 = Instant::now();
    let (q7, s7, t7) = session
        .transform_traced(
            q2,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 18, hi: 67 })],
            },
        )
        .expect("widening dice");
    log(
        "dice (wider — rerouted to the base cube)",
        &s7,
        session.answer(q7).len(),
        t0.elapsed(),
        &t7,
    );
    assert_eq!(s7, Strategy::SelectionOnAns);
    assert_eq!(s7.source, Some(q0), "served from the unrestricted base");

    // ---- Consistency audit -------------------------------------------------
    println!(
        "\nAuditing all {} materialized cubes against from-scratch evaluation…",
        session.len()
    );
    for (i, handle) in [q0, q1, q2, q3, q4, q5, q6, q7].into_iter().enumerate() {
        let scratch = session
            .cube(handle)
            .query()
            .answer(session.instance())
            .expect("scratch evaluation");
        assert!(
            session.answer(handle).same_cells(&scratch),
            "cube {i} diverged from its from-scratch answer"
        );
    }
    println!("All cubes verified identical to from-scratch evaluation.");
}
