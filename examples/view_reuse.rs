//! Automatic view reuse — the paper's problem statement in its general
//! form: "answering AnQs using the materialized results of other AnQs".
//!
//! Instead of naming a source cube and an operation, analysts just pose
//! queries; the session's cube catalog recognizes — via one O(1) probe of
//! its canonical-signature index — when a new query's classifier body,
//! measure and aggregate match a materialized cube (up to variable
//! renaming and pattern order), costs every applicable rewriting against
//! from-scratch evaluation, and runs the cheapest. Each answer comes back
//! with an `ExplainedStrategy` — the chosen route, its cost estimate, the
//! from-scratch estimate it beat, whether the catalog hit at all — and,
//! when posed through `answer_traced`, a `QueryTrace` of the observed
//! per-stage wall times, rendered here as `EXPLAIN ANALYZE`.
//!
//! Run with: `cargo run --release --example view_reuse`

use rdfcube::datagen;
use rdfcube::explain_analyze;
use rdfcube::prelude::*;
use std::time::Instant;

/// Parses an extended query against the session's instance dictionary.
fn pose(session: &mut OlapSession, classifier: &str, measure: &str, agg: AggFunc) -> ExtendedQuery {
    session
        .parse_query(classifier, measure, agg)
        .expect("query parses")
}

fn main() {
    let cfg = BloggerConfig {
        n_bloggers: 3_000,
        multi_city_prob: 0.1,
        ..Default::default()
    };
    let mut session = OlapSession::new(datagen::generate_instance(&cfg));
    println!("Instance: {} triples\n", session.instance().len());

    // An analyst materializes one broad cube…
    let t0 = Instant::now();
    let broad = session
        .register(
            datagen::EXAMPLE1_CLASSIFIER,
            datagen::EXAMPLE1_MEASURE,
            AggFunc::Count,
        )
        .expect("broad cube registers");
    println!(
        "materialized broad cube (age × city): {} cells in {:?}\n",
        session.answer(broad).len(),
        t0.elapsed()
    );

    // …and a *different* analyst poses fresh queries, written independently.
    let queries: Vec<(&str, ExtendedQuery)> = vec![
        (
            "same cube, renamed variables & reordered patterns",
            pose(
                &mut session,
                "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
                "w(?u, ?s) :- ?u wrotePost ?post, ?post postedOn ?s, ?u rdf:type Blogger",
                AggFunc::Count,
            ),
        ),
        (
            "coarser cube: by city only (drill-out shape)",
            pose(
                &mut session,
                "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?a, ?u livesIn ?town",
                "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?p, ?p postedOn ?s",
                AggFunc::Count,
            ),
        ),
        (
            "unrelated measure (must fall back)",
            pose(
                &mut session,
                "k(?u, ?town) :- ?u rdf:type Blogger, ?u livesIn ?town",
                "w(?u, ?p) :- ?u wrotePost ?p",
                AggFunc::Count,
            ),
        ),
    ];

    for (label, eq) in queries {
        // Plan first (no materialization) to show the catalog's decision…
        let planned = session.explain_query(&eq);
        // …then actually answer — traced, so the observed per-stage wall
        // times come back alongside the planner's verdict.
        let t0 = Instant::now();
        let (h, strategy, trace) = session.answer_traced(eq).expect("query answered");
        let took = t0.elapsed();
        let scratch_t0 = Instant::now();
        let scratch = session
            .cube(h)
            .query()
            .answer(session.instance())
            .expect("scratch");
        let scratch_took = scratch_t0.elapsed();
        assert!(
            session.answer(h).same_cells(&scratch),
            "derivation diverged!"
        );
        println!("query: {label}");
        println!(
            "  catalog {}: {} applicable candidate(s)",
            if planned.catalog_hit { "HIT" } else { "MISS" },
            planned.candidates,
        );
        for line in explain_analyze(&strategy, &trace).lines() {
            println!("  {line}");
        }
        println!(
            "  answered in {took:?} (from scratch: {scratch_took:?}); \
             {} cells — verified equal\n",
            session.answer(h).len()
        );
    }
    let counters = session.catalog().counters();
    println!(
        "catalog totals: {} hits / {} misses over {} materialized cubes \
         ({} KiB resident)",
        counters.hits,
        counters.misses,
        session.len(),
        session.catalog().resident_bytes() / 1024,
    );
}
