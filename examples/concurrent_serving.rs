//! Concurrent serving — the shared query plane.
//!
//! An [`OlapSession`] alternates between two epochs: a *mutation* epoch
//! (insert triples, parse queries, roll up) and a *serve* epoch, entered
//! with `into_shared()`, where the immutable instance and the cube
//! catalog sit behind one [`SharedSession`] that any number of threads
//! can query through `&self` — no cloning, no per-thread sessions. Cube
//! payloads are `Arc`-snapshotted, so a reader keeps its cells alive even
//! if the catalog evicts or refreshes them underneath.
//!
//! This example serves a randomized query mix from 8 threads, shows the
//! catalog converging on one entry per distinct query, then round-trips
//! back to the mutation plane, inserts fresh triples, and shows the next
//! serve epoch refreshing stale cubes automatically.
//!
//! Run with: `cargo run --release --example concurrent_serving`

use rdfcube::datagen;
use rdfcube::prelude::*;
use std::time::Instant;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 50;

fn main() {
    let cfg = BloggerConfig {
        n_bloggers: 2_000,
        multi_city_prob: 0.1,
        ..Default::default()
    };
    let mut session = OlapSession::new(datagen::generate_instance(&cfg));
    println!("Instance: {} triples", session.instance().len());

    // Mutation epoch: parse the query mix while the dictionary is still
    // writable (parsing interns constants).
    let mix: Vec<ExtendedQuery> = [
        (
            datagen::EXAMPLE1_CLASSIFIER,
            datagen::EXAMPLE1_MEASURE,
            AggFunc::Count,
        ),
        (
            datagen::EXAMPLE1_CLASSIFIER,
            datagen::EXAMPLE4_MEASURE,
            AggFunc::Sum,
        ),
        (
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
            datagen::EXAMPLE1_MEASURE,
            AggFunc::Count,
        ),
        (
            "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
            datagen::EXAMPLE4_MEASURE,
            AggFunc::Avg,
        ),
    ]
    .into_iter()
    .map(|(c, m, agg)| session.parse_query(c, m, agg).expect("query parses"))
    .collect();

    // Serve epoch: N threads hammer one shared plane through `&self`.
    let shared = session.into_shared();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for k in 0..THREADS {
            let shared = &shared;
            let mix = &mix;
            scope.spawn(move || {
                for i in 0..QUERIES_PER_THREAD {
                    let q = &mix[(k + i) % mix.len()];
                    let (h, _) = shared.answer_query(q.clone()).expect("answer");
                    let snap = shared.snapshot(h).expect("snapshot");
                    assert!(!snap.answer().is_empty());
                }
            });
        }
    });
    let served = THREADS * QUERIES_PER_THREAD;
    let counters = shared.counters();
    println!(
        "Served {served} queries from {THREADS} threads in {:?} \
         ({} catalog entries, {} hits, {} misses)",
        t0.elapsed(),
        shared.len(),
        counters.hits,
        counters.misses,
    );

    // Back to the mutation plane: grow the instance, then serve again —
    // the watermark check refreshes every stale cube on first use.
    let mut session = shared.into_session();
    let stale_handle = {
        let eq = mix[0].clone();
        let (h, _) = session.answer_query(eq).expect("answer");
        h
    };
    let before = session.answer(stale_handle).clone();
    session.insert_triples([
        (
            Term::iri("user0"),
            Term::iri("wrotePost"),
            Term::iri("late-breaking-post"),
        ),
        (
            Term::iri("late-breaking-post"),
            Term::iri("postedOn"),
            Term::iri("site0"),
        ),
    ]);
    let shared = session.into_shared();
    let after = shared.snapshot(stale_handle).expect("snapshot");
    println!(
        "After a mutation epoch: cube refreshed on first use \
         (cells changed: {}, {} refreshes recorded)",
        !after.answer().same_cells(&before),
        shared.counters().refreshes,
    );
}
