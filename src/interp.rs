//! A scriptable console for RDF analytics sessions.
//!
//! Drives the whole stack — loading, saturation, schema definition,
//! instance materialization, cubes and OLAP operations — from a small
//! line-oriented command language, so analyses can be kept as scripts and
//! replayed. The `rdfcube` binary wraps this interpreter; it is exposed as
//! a library module so applications (and the test suite) can embed it.
//!
//! ```text
//! load data.ttl               # parse Turtle into the base graph
//! saturate                    # RDFS closure
//! node Blogger n(?x) :- ?x rdf:type Person
//! edge hasAge Blogger Age e(?x, ?a) :- ?x age ?a
//! materialize                 # build the AnS instance, open the session
//! instance                    # …or: use the base graph as the instance
//! cube Q1 count c(?x, ?d) :- ?x rdf:type Blogger, ?x hasAge ?d \
//!                | m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?v
//! slice Q2 from Q1 d 28
//! dice Q3 from Q1 d 20..30
//! drillout Q4 from Q1 d
//! drillin Q5 from Q4 d
//! show Q2
//! stats
//! ```

use crate::core::{CoreError, CubeHandle, OlapOp, OlapSession, ValueSelector};
use crate::engine::AggFunc;
use crate::rdf::fx::FxHashMap;
use crate::{parse_turtle, saturate, AnalyticalSchema, Graph, Term};
use std::fmt;

/// An error from interpreting a script line.
#[derive(Debug)]
pub enum InterpError {
    /// The command or its arguments are malformed.
    Usage(String),
    /// A named cube does not exist.
    UnknownCube(String),
    /// The command is valid but cannot run in the current state
    /// (e.g. `cube` before `materialize`).
    State(String),
    /// I/O failure reading a file.
    Io(String),
    /// An underlying library error.
    Core(CoreError),
    /// An RDF parse error.
    Rdf(crate::rdf::ParseError),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Usage(m) => write!(f, "usage error: {m}"),
            InterpError::UnknownCube(c) => write!(f, "unknown cube '{c}'"),
            InterpError::State(m) => write!(f, "invalid state: {m}"),
            InterpError::Io(m) => write!(f, "io error: {m}"),
            InterpError::Core(e) => write!(f, "{e}"),
            InterpError::Rdf(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<CoreError> for InterpError {
    fn from(e: CoreError) -> Self {
        InterpError::Core(e)
    }
}

impl From<crate::rdf::ParseError> for InterpError {
    fn from(e: crate::rdf::ParseError) -> Self {
        InterpError::Rdf(e)
    }
}

/// The interpreter state machine.
#[derive(Default)]
pub struct Interpreter {
    base: Option<Graph>,
    schema: AnalyticalSchema,
    session: Option<OlapSession>,
    cubes: FxHashMap<String, CubeHandle>,
}

impl Interpreter {
    /// Creates an empty interpreter.
    pub fn new() -> Self {
        Interpreter {
            schema: AnalyticalSchema::new("script"),
            ..Default::default()
        }
    }

    /// Runs a whole script; returns the concatenated command outputs.
    /// Stops at the first error, reporting its 1-based line number.
    pub fn run_script(&mut self, script: &str) -> Result<String, (usize, InterpError)> {
        let mut out = String::new();
        let mut continuation = String::new();
        for (i, raw) in script.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Trailing backslash joins lines (for long cube definitions).
            if let Some(stripped) = line.strip_suffix('\\') {
                continuation.push_str(stripped);
                continuation.push(' ');
                continue;
            }
            let full = if continuation.is_empty() {
                line.to_string()
            } else {
                let mut s = std::mem::take(&mut continuation);
                s.push_str(line);
                s
            };
            match self.exec(&full) {
                Ok(text) => out.push_str(&text),
                Err(e) => return Err((i + 1, e)),
            }
        }
        Ok(out)
    }

    /// Executes one command, returning its textual output.
    pub fn exec(&mut self, line: &str) -> Result<String, InterpError> {
        let (cmd, rest) = split_word(line);
        match cmd {
            "load" => self.cmd_load(rest),
            "loadstr" => self.cmd_loadstr(rest),
            "saturate" => self.cmd_saturate(),
            "node" => self.cmd_node(rest),
            "edge" => self.cmd_edge(rest),
            "materialize" => self.cmd_materialize(),
            "instance" => self.cmd_instance(),
            "cube" => self.cmd_cube(rest),
            "slice" => self.cmd_slice(rest),
            "dice" => self.cmd_dice(rest),
            "drillout" => self.cmd_drill_out(rest),
            "drillin" => self.cmd_drill_in(rest),
            "rollup" => self.cmd_roll_up(rest),
            "show" => self.cmd_show(rest),
            "pres" => self.cmd_pres(rest),
            "stats" => self.cmd_stats(),
            "help" => Ok(HELP.to_string()),
            other => Err(InterpError::Usage(format!("unknown command '{other}'"))),
        }
    }

    fn cmd_load(&mut self, path: &str) -> Result<String, InterpError> {
        if path.is_empty() {
            return Err(InterpError::Usage("load <file.ttl>".into()));
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| InterpError::Io(format!("{path}: {e}")))?;
        self.cmd_loadstr(&text)
    }

    fn cmd_loadstr(&mut self, text: &str) -> Result<String, InterpError> {
        let graph = parse_turtle(text)?;
        let n = graph.len();
        match &mut self.base {
            Some(base) => {
                let added = base.absorb(&graph);
                Ok(format!(
                    "loaded {added} new triples (base: {})\n",
                    base.len()
                ))
            }
            None => {
                self.base = Some(graph);
                Ok(format!("loaded {n} triples\n"))
            }
        }
    }

    fn cmd_saturate(&mut self) -> Result<String, InterpError> {
        let base = self
            .base
            .as_mut()
            .ok_or_else(|| InterpError::State("no base graph loaded".into()))?;
        let added = saturate(base);
        Ok(format!(
            "saturation added {added} triples (base: {})\n",
            base.len()
        ))
    }

    fn cmd_node(&mut self, rest: &str) -> Result<String, InterpError> {
        let (class, query) = split_word(rest);
        if class.is_empty() || query.is_empty() {
            return Err(InterpError::Usage("node <Class> <unary query>".into()));
        }
        self.schema.add_node(class, query);
        Ok(format!("node {class} declared\n"))
    }

    fn cmd_edge(&mut self, rest: &str) -> Result<String, InterpError> {
        let (prop, rest) = split_word(rest);
        let (from, rest) = split_word(rest);
        let (to, query) = split_word(rest);
        if prop.is_empty() || from.is_empty() || to.is_empty() || query.is_empty() {
            return Err(InterpError::Usage(
                "edge <prop> <From> <To> <binary query>".into(),
            ));
        }
        self.schema.add_edge(prop, from, to, query);
        Ok(format!("edge {prop}: {from} → {to} declared\n"))
    }

    fn cmd_materialize(&mut self) -> Result<String, InterpError> {
        let base = self
            .base
            .as_mut()
            .ok_or_else(|| InterpError::State("no base graph loaded".into()))?;
        let instance = self.schema.materialize(base)?;
        let n = instance.len();
        self.session = Some(OlapSession::new(instance));
        self.cubes.clear();
        Ok(format!(
            "materialized instance: {n} triples; session open\n"
        ))
    }

    fn cmd_instance(&mut self) -> Result<String, InterpError> {
        let base = self
            .base
            .take()
            .ok_or_else(|| InterpError::State("no base graph loaded".into()))?;
        let n = base.len();
        self.session = Some(OlapSession::new(base));
        self.cubes.clear();
        Ok(format!(
            "using base graph as instance: {n} triples; session open\n"
        ))
    }

    fn session(&mut self) -> Result<&mut OlapSession, InterpError> {
        self.session
            .as_mut()
            .ok_or_else(|| InterpError::State("no session; run 'materialize' or 'instance'".into()))
    }

    fn cube_handle(&self, name: &str) -> Result<CubeHandle, InterpError> {
        self.cubes
            .get(name)
            .copied()
            .ok_or_else(|| InterpError::UnknownCube(name.to_string()))
    }

    fn cmd_cube(&mut self, rest: &str) -> Result<String, InterpError> {
        let (name, rest) = split_word(rest);
        let (agg_word, rest) = split_word(rest);
        let agg = parse_agg(agg_word)?;
        let Some((classifier, measure)) = rest.split_once('|') else {
            return Err(InterpError::Usage(
                "cube <name> <agg> <classifier> | <measure>".into(),
            ));
        };
        let session = self.session()?;
        let handle = session.register(classifier.trim(), measure.trim(), agg)?;
        let cells = session.answer(handle).len();
        self.cubes.insert(name.to_string(), handle);
        Ok(format!("cube {name}: {cells} cells materialized\n"))
    }

    fn transform(
        &mut self,
        rest: &str,
        build: impl FnOnce(&str) -> Result<OlapOp, InterpError>,
    ) -> Result<String, InterpError> {
        let (new_name, rest) = split_word(rest);
        let (from_kw, rest) = split_word(rest);
        let (old_name, args) = split_word(rest);
        if new_name.is_empty() || from_kw != "from" || old_name.is_empty() {
            return Err(InterpError::Usage("<op> <new> from <old> <args…>".into()));
        }
        let op = build(args)?;
        let old = self.cube_handle(old_name)?;
        let session = self.session()?;
        let (handle, strategy) = session.transform(old, &op)?;
        let cells = session.answer(handle).len();
        self.cubes.insert(new_name.to_string(), handle);
        Ok(format!("cube {new_name}: {cells} cells via {strategy}\n"))
    }

    fn cmd_slice(&mut self, rest: &str) -> Result<String, InterpError> {
        self.transform(rest, |args| {
            let (dim, value) = split_word(args);
            if dim.is_empty() || value.is_empty() {
                return Err(InterpError::Usage(
                    "slice <new> from <old> <dim> <value>".into(),
                ));
            }
            Ok(OlapOp::Slice {
                dim: dim.to_string(),
                value: parse_term(value),
            })
        })
    }

    fn cmd_dice(&mut self, rest: &str) -> Result<String, InterpError> {
        self.transform(rest, |args| {
            let (dim, spec) = split_word(args);
            if dim.is_empty() || spec.is_empty() {
                return Err(InterpError::Usage(
                    "dice <new> from <old> <dim> <lo>..<hi> | <v1>,<v2>,…".into(),
                ));
            }
            let selector = if let Some((lo, hi)) = spec.split_once("..") {
                let lo = lo
                    .parse::<i64>()
                    .map_err(|_| InterpError::Usage(format!("bad range bound '{lo}'")))?;
                let hi = hi
                    .parse::<i64>()
                    .map_err(|_| InterpError::Usage(format!("bad range bound '{hi}'")))?;
                ValueSelector::IntRange { lo, hi }
            } else {
                ValueSelector::OneOf(spec.split(',').map(parse_term).collect())
            };
            Ok(OlapOp::Dice {
                constraints: vec![(dim.to_string(), selector)],
            })
        })
    }

    fn cmd_drill_out(&mut self, rest: &str) -> Result<String, InterpError> {
        self.transform(rest, |args| {
            let dims: Vec<String> = args.split_whitespace().map(str::to_string).collect();
            if dims.is_empty() {
                return Err(InterpError::Usage(
                    "drillout <new> from <old> <dim>…".into(),
                ));
            }
            Ok(OlapOp::DrillOut { dims })
        })
    }

    fn cmd_drill_in(&mut self, rest: &str) -> Result<String, InterpError> {
        self.transform(rest, |args| {
            let (var, extra) = split_word(args);
            if var.is_empty() || !extra.is_empty() {
                return Err(InterpError::Usage("drillin <new> from <old> <var>".into()));
            }
            Ok(OlapOp::DrillIn {
                var: var.to_string(),
            })
        })
    }

    fn cmd_roll_up(&mut self, rest: &str) -> Result<String, InterpError> {
        self.transform(rest, |args| {
            let (dim, rest) = split_word(args);
            let (via_kw, prop) = split_word(rest);
            if dim.is_empty() || via_kw != "via" || prop.is_empty() {
                return Err(InterpError::Usage(
                    "rollup <new> from <old> <dim> via <property>".into(),
                ));
            }
            Ok(OlapOp::RollUp {
                dim: dim.to_string(),
                via: prop.to_string(),
            })
        })
    }

    fn cmd_show(&mut self, rest: &str) -> Result<String, InterpError> {
        let (name, extra) = split_word(rest);
        if name.is_empty() || !extra.is_empty() {
            return Err(InterpError::Usage("show <cube>".into()));
        }
        let handle = self.cube_handle(name)?;
        let session = self.session()?;
        Ok(format!(
            "{name}:\n{}",
            session.answer(handle).to_table(session.instance().dict())
        ))
    }

    fn cmd_pres(&mut self, rest: &str) -> Result<String, InterpError> {
        let (name, extra) = split_word(rest);
        if name.is_empty() || !extra.is_empty() {
            return Err(InterpError::Usage("pres <cube>".into()));
        }
        let handle = self.cube_handle(name)?;
        let session = self.session()?;
        let pres = session.cube(handle).pres();
        Ok(format!(
            "pres({name}): {} rows × ({} dims + root + k + v), ≈{} bytes\n",
            pres.len(),
            pres.n_dims(),
            pres.approx_bytes()
        ))
    }

    fn cmd_stats(&mut self) -> Result<String, InterpError> {
        let mut out = String::new();
        if let Some(base) = &self.base {
            out.push_str(&format!(
                "base: {} triples, {} terms\n",
                base.len(),
                base.dict().len()
            ));
        }
        if let Some(session) = &self.session {
            out.push_str(&format!(
                "instance: {} triples, {} terms; {} cubes materialized\n",
                session.instance().len(),
                session.instance().dict().len(),
                session.len()
            ));
        }
        if out.is_empty() {
            out.push_str("nothing loaded\n");
        }
        Ok(out)
    }
}

/// First whitespace-delimited word and the trimmed remainder.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Term syntax for command arguments: `"quoted"` → plain literal, integer →
/// integer literal, anything else → IRI.
fn parse_term(s: &str) -> Term {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('"').and_then(|rest| rest.strip_suffix('"')) {
        return Term::literal(body);
    }
    if let Ok(i) = s.parse::<i64>() {
        return Term::integer(i);
    }
    Term::iri(s)
}

fn parse_agg(word: &str) -> Result<AggFunc, InterpError> {
    match word.to_ascii_lowercase().as_str() {
        "count" => Ok(AggFunc::Count),
        "count_distinct" | "countdistinct" => Ok(AggFunc::CountDistinct),
        "sum" => Ok(AggFunc::Sum),
        "avg" | "average" => Ok(AggFunc::Avg),
        "min" => Ok(AggFunc::Min),
        "max" => Ok(AggFunc::Max),
        other => Err(InterpError::Usage(format!(
            "unknown aggregate '{other}' (count, count_distinct, sum, avg, min, max)"
        ))),
    }
}

const HELP: &str = "\
commands:
  load <file.ttl>                     parse Turtle into the base graph
  loadstr <turtle…>                   parse inline Turtle
  saturate                            RDFS closure of the base graph
  node <Class> <unary query>          declare an analysis class
  edge <prop> <From> <To> <query>     declare an analysis property
  materialize                         build the AnS instance, open a session
  instance                            use the base graph as the instance
  cube <name> <agg> <classifier> | <measure>
  slice <new> from <old> <dim> <value>
  dice <new> from <old> <dim> <lo>..<hi> | <v1>,<v2>,…
  drillout <new> from <old> <dim>…
  drillin <new> from <old> <var>
  rollup <new> from <old> <dim> via <property>
  show <cube>     pres <cube>     stats     help
";
