//! # rdfcube — Efficient OLAP Operations for RDF Analytics
//!
//! A complete Rust implementation of *"Efficient OLAP Operations For RDF
//! Analytics"* (Akbari-Azirani, Goasdoué, Manolescu, Roatiş — DESWeb @ ICDE
//! 2015), including every substrate the paper relies on:
//!
//! * [`rdf`] — an in-memory RDF store: terms, dictionary encoding,
//!   SPO/POS/OSP indexes, N-Triples/Turtle parsing, RDFS saturation;
//! * [`engine`] — a conjunctive (BGP) query engine with set/bag semantics,
//!   greedy join ordering, relational algebra and grouped aggregation;
//! * [`core`] — analytical schemas, analytical queries (RDF cubes), the four
//!   OLAP operations, partial results, and the paper's three rewriting
//!   algorithms behind an [`OlapSession`] whose signature-indexed,
//!   cost-based cube catalog picks the cheapest sound strategy
//!   automatically (optionally under a memory budget), and whose
//!   view-selection advisor mines the query log to pre-materialize the
//!   best lattice ancestors per byte;
//! * [`datagen`] — seeded workload generators for the paper's blogger and
//!   video worlds.
//!
//! ## Quickstart
//!
//! ```
//! use rdfcube::prelude::*;
//!
//! // 1. Load (or generate) an RDF graph and saturate it under RDFS.
//! let mut base = parse_turtle(
//!     "<Writer> rdfs:subClassOf <Person> .
//!      <user1> rdf:type <Writer> ; <age> 28 ; <city> \"Madrid\" .
//!      <user1> <posted> <p1> . <p1> <on> <site1> .",
//! ).unwrap();
//! saturate(&mut base);
//!
//! // 2. Define an analytical schema (a lens) and materialize its instance.
//! let mut schema = AnalyticalSchema::new("blog");
//! schema
//!     .add_node("Blogger", "n(?x) :- ?x rdf:type Person")
//!     .add_node("Age", "n(?a) :- ?x age ?a")
//!     .add_node("City", "n(?c) :- ?x city ?c")
//!     .add_node("BlogPost", "n(?p) :- ?x posted ?p")
//!     .add_node("Site", "n(?s) :- ?p on ?s")
//!     .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
//!     .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
//!     .add_edge("wrotePost", "Blogger", "BlogPost", "e(?x, ?p) :- ?x posted ?p")
//!     .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s");
//! let instance = schema.materialize(&mut base).unwrap();
//!
//! // 3. Open an OLAP session, pose a cube, transform it.
//! let mut session = OlapSession::new(instance);
//! let cube = session.register(
//!     "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
//!     "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
//!     AggFunc::Count,
//! ).unwrap();
//! let (sliced, strategy) = session.transform(
//!     cube,
//!     &OlapOp::Slice { dim: "dage".into(), value: Term::integer(28) },
//! ).unwrap();
//! assert_eq!(strategy, Strategy::SelectionOnAns);
//! assert_eq!(session.answer(sliced).len(), 1);
//! ```

pub mod interp;

pub use rdfcube_core as core;
pub use rdfcube_datagen as datagen;
pub use rdfcube_engine as engine;
pub use rdfcube_obs as obs;
pub use rdfcube_rdf as rdf;

pub use rdfcube_core::{
    answer, apply, build_aux_query, explain_analyze, AdvisorReport, AnalyticalQuery,
    AnalyticalSchema, CoreError, CostModelReport, Cube, CubeCatalog, CubeHandle, CubeSnapshot,
    ExplainedStrategy, ExtendedQuery, MaterializedCube, OlapOp, OlapSession, PartialResult,
    SharedSession, Sigma, Strategy, ValueSelector,
};
pub use rdfcube_engine::{
    evaluate, evaluate_sparql, explain, parse_query, parse_sparql, set_eval_threads, AggFunc,
    AggValue, Bgp, EngineError, PlanStep, Relation, Semantics, SparqlQuery, SparqlResult,
};
pub use rdfcube_obs::{QueryTrace, Registry, Snapshot};
pub use rdfcube_rdf::{
    parse_ntriples, parse_turtle, saturate, to_ntriples, Dictionary, Graph, Term, TermId, Triple,
    TriplePattern,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use rdfcube_core::{
        AnalyticalQuery, AnalyticalSchema, Cube, CubeSnapshot, ExplainedStrategy, ExtendedQuery,
        OlapOp, OlapSession, PartialResult, SharedSession, Sigma, Strategy, ValueSelector,
    };
    pub use rdfcube_datagen::{BloggerConfig, VideoConfig};
    pub use rdfcube_engine::{evaluate, parse_query, AggFunc, AggValue, Semantics};
    pub use rdfcube_obs::{QueryTrace, Snapshot};
    pub use rdfcube_rdf::{parse_ntriples, parse_turtle, saturate, to_ntriples, Graph, Term};
}
