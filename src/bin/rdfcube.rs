//! The `rdfcube` command-line console.
//!
//! Runs an analytics script (see [`rdfcube::interp`] for the command
//! language) from a file, or from standard input when no file is given:
//!
//! ```sh
//! rdfcube analysis.rdfq
//! echo 'help' | rdfcube
//! ```

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let script = match args.as_slice() {
        [] => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("rdfcube: failed to read stdin");
                return ExitCode::FAILURE;
            }
            buf
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rdfcube: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: rdfcube [script-file]   (stdin when omitted)");
            return ExitCode::FAILURE;
        }
    };

    let mut interp = rdfcube::interp::Interpreter::new();
    match interp.run_script(&script) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err((line, err)) => {
            eprintln!("rdfcube: line {line}: {err}");
            ExitCode::FAILURE
        }
    }
}
