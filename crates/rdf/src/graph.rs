//! An in-memory, dictionary-encoded RDF graph with three access-path indexes.
//!
//! The store keeps each triple in three nested maps — SPO, POS and OSP — so
//! that every one of the eight triple-pattern shapes has an index-backed
//! access path (the classic "triple table with permuted indexes" design).
//! Leaf adjacency lists are kept **sorted**, which gives set semantics
//! (duplicate inserts are no-ops) via binary search and cache-friendly scans.
//!
//! Graphs are append-only: the analytical framework of the paper only ever
//! loads data, saturates it, and materializes analytical-schema instances —
//! none of which deletes triples.

use crate::dictionary::{Dictionary, TermId};
use crate::fx::FxHashMap;
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

type Index = FxHashMap<TermId, FxHashMap<TermId, Vec<TermId>>>;

/// An indexed RDF graph owning its [`Dictionary`].
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Dictionary,
    /// subject → predicate → sorted objects
    spo: Index,
    /// predicate → object → sorted subjects
    pos: Index,
    /// object → subject → sorted predicates
    osp: Index,
    len: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Write access to the term dictionary (interning terms ahead of bulk
    /// insertion).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Interns a term in this graph's dictionary.
    pub fn encode(&mut self, term: &Term) -> TermId {
        self.dict.encode(term)
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a triple given as terms; returns `true` if it was new.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let s = self.dict.encode(s);
        let p = self.dict.encode(p);
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple with subject/predicate given as IRI strings.
    pub fn insert_iri(&mut self, s: &str, p: &str, o: &Term) -> bool {
        let s = self.dict.encode_owned(Term::iri(s));
        let p = self.dict.encode_owned(Term::iri(p));
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts an already-encoded triple; returns `true` if it was new.
    ///
    /// The ids must come from this graph's dictionary (debug-asserted).
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        debug_assert!(s.index() < self.dict.len(), "foreign subject id");
        debug_assert!(p.index() < self.dict.len(), "foreign predicate id");
        debug_assert!(o.index() < self.dict.len(), "foreign object id");
        let objects = self.spo.entry(s).or_default().entry(p).or_default();
        match objects.binary_search(&o) {
            Ok(_) => return false,
            Err(pos) => objects.insert(pos, o),
        }
        let subjects = self.pos.entry(p).or_default().entry(o).or_default();
        if let Err(pos) = subjects.binary_search(&s) {
            subjects.insert(pos, s);
        }
        let predicates = self.osp.entry(o).or_default().entry(s).or_default();
        if let Err(pos) = predicates.binary_search(&p) {
            predicates.insert(pos, p);
        }
        self.len += 1;
        true
    }

    /// Inserts an encoded [`Triple`].
    pub fn insert_triple(&mut self, t: Triple) -> bool {
        self.insert_ids(t.s, t.p, t.o)
    }

    /// True if the encoded triple is present.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo
            .get(&s)
            .and_then(|pm| pm.get(&p))
            .is_some_and(|objs| objs.binary_search(&o).is_ok())
    }

    /// True if the term-level triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.id(s), self.dict.id(p), self.dict.id(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// The objects of `(s, p, ·)`, sorted; empty if none.
    pub fn objects(&self, s: TermId, p: TermId) -> &[TermId] {
        self.spo
            .get(&s)
            .and_then(|pm| pm.get(&p))
            .map_or(&[], Vec::as_slice)
    }

    /// The subjects of `(·, p, o)`, sorted; empty if none.
    pub fn subjects(&self, p: TermId, o: TermId) -> &[TermId] {
        self.pos
            .get(&p)
            .and_then(|om| om.get(&o))
            .map_or(&[], Vec::as_slice)
    }

    /// Iterates every triple (order unspecified).
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().flat_map(|(&s, pm)| {
            pm.iter()
                .flat_map(move |(&p, objs)| objs.iter().map(move |&o| Triple::new(s, p, o)))
        })
    }

    /// Calls `f` for every triple matching `pattern`, using the cheapest
    /// index for the pattern's shape.
    pub fn for_each_match<F: FnMut(Triple)>(&self, pattern: TriplePattern, mut f: F) {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(s, p, o) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &o in self.objects(s, p) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, Some(p), Some(o)) => {
                for &s in self.subjects(p, o) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(sm) = self.osp.get(&o) {
                    if let Some(preds) = sm.get(&s) {
                        for &p in preds {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(pm) = self.spo.get(&s) {
                    for (&p, objs) in pm {
                        for &o in objs {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(om) = self.pos.get(&p) {
                    for (&o, subs) in om {
                        for &s in subs {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(sm) = self.osp.get(&o) {
                    for (&s, preds) in sm {
                        for &p in preds {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for t in self.triples() {
                    f(t);
                }
            }
        }
    }

    /// Collects the triples matching `pattern`.
    pub fn matching(&self, pattern: TriplePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pattern, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pattern`, computed from index
    /// metadata where possible (used for join-order selectivity estimates).
    pub fn count_matching(&self, pattern: TriplePattern) -> usize {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(s, p, o)),
            (Some(s), Some(p), None) => self.objects(s, p).len(),
            (None, Some(p), Some(o)) => self.subjects(p, o).len(),
            (Some(s), None, Some(o)) => self
                .osp
                .get(&o)
                .and_then(|sm| sm.get(&s))
                .map_or(0, Vec::len),
            (Some(s), None, None) => self
                .spo
                .get(&s)
                .map_or(0, |pm| pm.values().map(Vec::len).sum()),
            (None, Some(p), None) => self
                .pos
                .get(&p)
                .map_or(0, |om| om.values().map(Vec::len).sum()),
            (None, None, Some(o)) => self
                .osp
                .get(&o)
                .map_or(0, |sm| sm.values().map(Vec::len).sum()),
            (None, None, None) => self.len,
        }
    }

    /// Decodes a triple back to its terms.
    ///
    /// # Panics
    /// Panics if the ids are foreign to this graph's dictionary.
    pub fn decode(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.term(t.s),
            self.dict.term(t.p),
            self.dict.term(t.o),
        )
    }

    /// Per-predicate triple counts, sorted descending — the store's summary
    /// statistics (used by consoles and for eyeballing generated workloads).
    pub fn predicate_counts(&self) -> Vec<(TermId, usize)> {
        let mut counts: Vec<(TermId, usize)> = self
            .pos
            .iter()
            .map(|(&p, om)| (p, om.values().map(Vec::len).sum()))
            .collect();
        counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.spo.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.pos.len()
    }

    /// Number of distinct objects.
    pub fn object_count(&self) -> usize {
        self.osp.len()
    }

    /// Copies every triple of `other` into `self`, re-encoding terms into
    /// this graph's dictionary. Returns the number of newly added triples.
    pub fn absorb(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.triples() {
            let (s, p, o) = other.decode(t);
            // Clone into locals first: `insert` borrows self mutably.
            let (s, p, o) = (s.clone(), p.clone(), o.clone());
            if self.insert(&s, &p, &o) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("user1", "hasAge", &Term::integer(28));
        g.insert_iri("user2", "hasAge", &Term::integer(40));
        g.insert_iri("user3", "hasAge", &Term::integer(35));
        g.insert_iri("user1", "livesIn", &Term::literal("Madrid"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("Bill"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("William"));
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert_iri("a", "p", &Term::literal("x")));
        assert!(!g.insert_iri("a", "p", &Term::literal("x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_decode() {
        let g = sample();
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
        assert!(!g.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(99)
        ));
        let t = g.matching(TriplePattern::new(g.dict().iri_id("user2"), None, None))[0];
        let (s, _, o) = g.decode(t);
        assert_eq!(s, &Term::iri("user2"));
        assert_eq!(o, &Term::integer(40));
    }

    #[test]
    fn all_eight_pattern_shapes_agree_with_full_scan() {
        let g = sample();
        let all: Vec<Triple> = g.triples().collect();
        assert_eq!(all.len(), g.len());
        // Enumerate every (s?, p?, o?) choice drawn from an actual triple and
        // check index-backed matching equals a brute-force filter.
        let probe = all[0];
        for mask in 0u8..8 {
            let pat = TriplePattern::new(
                (mask & 1 != 0).then_some(probe.s),
                (mask & 2 != 0).then_some(probe.p),
                (mask & 4 != 0).then_some(probe.o),
            );
            let mut via_index = g.matching(pat);
            let mut via_scan: Vec<Triple> =
                all.iter().copied().filter(|t| pat.matches(t)).collect();
            via_index.sort();
            via_scan.sort();
            assert_eq!(via_index, via_scan, "pattern shape {mask:#05b}");
            assert_eq!(g.count_matching(pat), via_scan.len(), "count {mask:#05b}");
        }
    }

    #[test]
    fn multi_valued_properties_are_kept() {
        // user1 is identified both as William and as Bill (paper §2).
        let g = sample();
        let p = g.dict().iri_id("identifiedBy").unwrap();
        let s = g.dict().iri_id("user1").unwrap();
        assert_eq!(g.objects(s, p).len(), 2);
    }

    #[test]
    fn objects_and_subjects_missing_are_empty() {
        let g = sample();
        let s = g.dict().iri_id("user1").unwrap();
        assert!(g.objects(s, TermId(9999)).is_empty());
        assert!(g.subjects(TermId(9999), s).is_empty());
    }

    #[test]
    fn absorb_merges_and_reencodes() {
        let g1 = sample();
        let mut g2 = Graph::new();
        g2.insert_iri("user9", "livesIn", &Term::literal("Kyoto"));
        let added = g2.absorb(&g1);
        assert_eq!(added, g1.len());
        assert_eq!(g2.len(), g1.len() + 1);
        assert!(g2.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
        // Absorbing again adds nothing.
        assert_eq!(g2.absorb(&g1), 0);
    }

    #[test]
    fn count_matching_full_wildcard_is_len() {
        let g = sample();
        assert_eq!(g.count_matching(TriplePattern::default()), g.len());
    }

    #[test]
    fn summary_statistics() {
        let g = sample();
        assert_eq!(g.subject_count(), 3);
        assert_eq!(g.predicate_count(), 3); // hasAge, livesIn, identifiedBy
        let counts = g.predicate_counts();
        assert_eq!(counts.len(), 3);
        // hasAge has 3 triples, identifiedBy 2, livesIn 1 — sorted desc.
        assert_eq!(counts[0].1, 3);
        assert_eq!(counts[1].1, 2);
        assert_eq!(counts[2].1, 1);
        assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), g.len());
        assert!(g.object_count() >= 5);
    }
}
