//! An in-memory, dictionary-encoded RDF graph over subject-hash-sharded,
//! flat CSR-style indexes.
//!
//! ## Storage layout
//!
//! A graph is a set of independent `Shard`s (one by default — the flat
//! store; N under [`Graph::with_shards`]). Every triple is hash-partitioned
//! by **subject** into exactly one shard, and each shard stores its triples
//! three times, once per access-path permutation — SPO, POS and OSP — as a
//! *sorted column set* rather than nested maps:
//!
//! * per permutation, the triples are sorted by `(first, second, third)` and
//!   the second/third components live in two parallel flat columns;
//! * a CSR **offset table** indexed by the first component's dense [`TermId`]
//!   (`offsets[id] .. offsets[id + 1]`) replaces the outer hash map: one
//!   array lookup locates a first-component group, one binary search inside
//!   its `seconds` run locates a `(first, second)` pair, and that pair's
//!   `thirds` are a contiguous sorted slice.
//!
//! This gives every one of the eight triple-pattern shapes an index-backed
//! access path with zero pointer chasing: lookups are array arithmetic plus
//! binary search, scans are linear over dense `u32` columns.
//!
//! ## Sharding and enumeration order
//!
//! Subject hashing makes the partitioning transparent to readers:
//!
//! * a **subject-bound** probe routes to exactly one shard — its local
//!   enumeration order *is* the flat store's order;
//! * a **subject-free** probe k-way merges the per-shard sorted runs by the
//!   index's sort key, which reproduces the flat store's global sorted order
//!   exactly (ties across shards are impossible — equal subjects share a
//!   shard); per-shard delta entries carry a graph-global sequence number,
//!   so the trailing delta sweep also replays flat insertion order.
//!
//! Every read of a sharded graph is therefore **bit-identical** to the same
//! read of a flat graph over the same triples — sharding changes the cost
//! model (per-shard parallel loading and evaluation, shard skipping), never
//! the answer. The query engine additionally probes shards directly through
//! [`Graph::for_each_match_in_shard`] / [`Graph::count_matching_in_shard`]
//! to run BGP steps shard-parallel.
//!
//! ## Bulk loading vs incremental inserts
//!
//! The fast path is the **bulk loader** ([`Graph::from_triples`] /
//! [`Graph::bulk_insert_ids`]): it scatters the batch by subject shard, then
//! sorts and dedups each shard's slice once per batch — in parallel across
//! shards when the graph has more than one. The parsers, the data
//! generators, the reasoner and schema materialization all load through it.
//!
//! The incremental [`Graph::insert`] path stays available through each
//! shard's small unsorted **delta buffer** (plus a hash set for duplicate
//! checks) that every read path consults alongside the sorted runs. A delta
//! is merged into its shard's CSR runs automatically once it exceeds a
//! fraction of the shard, or eagerly via [`Graph::compact`].
//!
//! Graphs are append-only: the analytical framework of the paper only ever
//! loads data, saturates it, and materializes analytical-schema instances —
//! none of which deletes triples.

use crate::dictionary::{Dictionary, TermId};
use crate::fx::{FxHashMap, FxHashSet};
use crate::shard::{distinct_with_delta, shard_of_subject, CsrIndex, Shard};
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

/// Minimum number of staged rows before the bulk loader fans shard merges
/// out to scoped worker threads; below this the scatter + per-shard sorts
/// are cheaper serially than the thread spawns.
const PARALLEL_LOAD_MIN: usize = 4096;

/// An indexed RDF graph owning its [`Dictionary`], partitioned into
/// subject-hash `Shard`s (one by default).
#[derive(Debug, Clone)]
pub struct Graph {
    dict: Dictionary,
    shards: Vec<Shard>,
    /// Stamps incremental inserts across shards so cross-shard sweeps can
    /// replay global insertion order.
    next_seq: u64,
    len: usize,
}

/// Alias emphasizing that [`Graph`] *is* the sharded store: every graph is a
/// set of subject-hash shards — a single one by default (the flat layout),
/// N under [`Graph::with_shards`] / [`Graph::from_triples_sharded`].
pub type ShardedGraph = Graph;

impl Default for Graph {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl Graph {
    /// Creates an empty single-shard (flat) graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph partitioned into `n_shards` subject-hash
    /// shards (clamped to at least 1). Reads are bit-identical at any shard
    /// count; more shards buy parallel bulk loading and per-shard BGP
    /// evaluation at the cost of a k-way merge on subject-free scans.
    pub fn with_shards(n_shards: usize) -> Self {
        Graph {
            dict: Dictionary::new(),
            shards: vec![Shard::default(); n_shards.max(1)],
            next_seq: 0,
            len: 0,
        }
    }

    /// Builds a graph from an owned dictionary and a batch of triples
    /// encoded against it, through the bulk loader (one scatter + per-shard
    /// sort + dedup — the fast path for loading at scale).
    pub fn from_triples(dict: Dictionary, triples: impl IntoIterator<Item = Triple>) -> Self {
        Self::from_triples_sharded(dict, triples, 1)
    }

    /// [`Self::from_triples`] into an `n_shards`-way partitioned graph; the
    /// per-shard scatter/sort/build runs on scoped worker threads when both
    /// the batch and the shard count warrant it.
    pub fn from_triples_sharded(
        dict: Dictionary,
        triples: impl IntoIterator<Item = Triple>,
        n_shards: usize,
    ) -> Self {
        let mut g = Self::with_shards(n_shards);
        g.dict = dict;
        g.bulk_insert_ids(triples);
        g
    }

    /// Number of subject-hash shards in this graph.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning subject `s`.
    #[inline]
    pub fn shard_of(&self, s: TermId) -> usize {
        shard_of_subject(s, self.shards.len())
    }

    /// Number of triples stored in shard `shard` (sorted runs + delta).
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Number of distinct subjects in shard `shard`. Subjects never cross
    /// shards, so these sum to [`Self::subject_count`] exactly — the
    /// per-shard statistic planners use to skip or weight shards.
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_subject_count(&self, shard: usize) -> usize {
        self.shards[shard].distinct_subjects()
    }

    /// Repartitions the graph into `n_shards` subject-hash shards (clamped
    /// to at least 1). A loading-time operation: any pending delta is folded
    /// into the rebuilt sorted runs, exactly like [`Self::compact`].
    pub fn set_shard_count(&mut self, n_shards: usize) {
        let n_shards = n_shards.max(1);
        if n_shards == self.shards.len() {
            return;
        }
        let all: Vec<Triple> = self.triples().collect();
        self.shards = vec![Shard::default(); n_shards];
        self.next_seq = 0;
        self.len = 0;
        self.bulk_insert_ids(all);
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Write access to the term dictionary (interning terms ahead of bulk
    /// insertion).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Interns a term in this graph's dictionary.
    pub fn encode(&mut self, term: &Term) -> TermId {
        self.dict.encode(term)
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of triples sitting in the unsorted delta buffers (not yet
    /// merged into the CSR runs), summed across shards. Exposed for
    /// instrumentation and tests.
    pub fn pending_delta_len(&self) -> usize {
        self.shards.iter().map(Shard::pending_delta_len).sum()
    }

    /// True if any shard holds unmerged delta triples. The engine's
    /// per-shard parallel paths require fully sorted shards and fall back to
    /// row partitioning while this holds.
    pub fn has_pending_delta(&self) -> bool {
        self.shards.iter().any(|sh| sh.pending_delta_len() > 0)
    }

    /// Total rows in the sorted CSR runs (excluding deltas).
    fn sorted_len(&self) -> usize {
        self.shards.iter().map(|sh| sh.spo.len()).sum()
    }

    /// Graph-level delta capacity, mirroring the per-shard thresholds: the
    /// routing bound below which a bulk batch rides the delta buffers
    /// instead of forcing per-shard merges.
    fn delta_threshold(&self) -> usize {
        self.shards.iter().map(Shard::delta_threshold).sum()
    }

    /// Bulk-inserts a batch of already-encoded triples: scatters the batch
    /// by subject shard, then sorts + dedups each shard's slice (folding in
    /// any pending delta) and merges it into that shard's CSR runs in one
    /// pass — shards merge in parallel on scoped worker threads when the
    /// graph has more than one and the batch is large enough. Returns the
    /// number of newly added triples.
    ///
    /// Small batches arriving at a large store (e.g. a reasoner round that
    /// entails a handful of triples over millions) are routed through the
    /// delta buffers instead: a full three-index rebuild for a few rows
    /// would cost O(n), while the deltas' auto-merge amortizes it away.
    ///
    /// The ids must come from this graph's dictionary (debug-asserted).
    pub fn bulk_insert_ids(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let batch: Vec<Triple> = triples.into_iter().collect();
        if self.sorted_len() > 0 && self.pending_delta_len() + batch.len() < self.delta_threshold()
        {
            let mut added = 0;
            for t in batch {
                added += usize::from(self.insert_ids(t.s, t.p, t.o));
            }
            return added;
        }
        self.merge_into_runs(batch)
    }

    /// The merge path of [`Self::bulk_insert_ids`]: scatters `batch` by
    /// subject shard and folds each shard's delta plus its slice into the
    /// sorted CSR runs unconditionally.
    fn merge_into_runs(&mut self, batch: Vec<Triple>) -> usize {
        #[cfg(debug_assertions)]
        for t in &batch {
            debug_assert!(t.s.index() < self.dict.len(), "foreign subject id");
            debug_assert!(t.p.index() < self.dict.len(), "foreign predicate id");
            debug_assert!(t.o.index() < self.dict.len(), "foreign object id");
        }
        let before = self.len;
        let n = self.shards.len();
        let work = batch.len() + self.pending_delta_len();
        if work > 0 {
            let sink = rdfcube_obs::sink();
            sink.delta_merges.inc();
            sink.delta_merge_rows.add(work as u64);
        }
        if n == 1 {
            self.shards[0].merge_batch(batch);
        } else {
            let mut per_shard: Vec<Vec<Triple>> = vec![Vec::new(); n];
            for t in batch {
                per_shard[shard_of_subject(t.s, n)].push(t);
            }
            if work >= PARALLEL_LOAD_MIN {
                std::thread::scope(|scope| {
                    for (shard, add) in self.shards.iter_mut().zip(per_shard) {
                        scope.spawn(move || shard.merge_batch(add));
                    }
                });
            } else {
                for (shard, add) in self.shards.iter_mut().zip(per_shard) {
                    shard.merge_batch(add);
                }
            }
        }
        self.len = self.shards.iter().map(Shard::len).sum();
        self.len - before
    }

    /// Folds the pending delta buffers into the sorted CSR runs, so that
    /// subsequent reads are pure index scans. Idempotent; cheap when the
    /// deltas are empty.
    pub fn compact(&mut self) {
        if self.has_pending_delta() {
            self.merge_into_runs(Vec::new());
        }
    }

    /// Inserts a triple given as terms; returns `true` if it was new.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let s = self.dict.encode(s);
        let p = self.dict.encode(p);
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple with subject/predicate given as IRI strings.
    pub fn insert_iri(&mut self, s: &str, p: &str, o: &Term) -> bool {
        let s = self.dict.encode_owned(Term::iri(s));
        let p = self.dict.encode_owned(Term::iri(p));
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts an already-encoded triple; returns `true` if it was new.
    ///
    /// The ids must come from this graph's dictionary (debug-asserted). The
    /// triple lands in its subject shard's delta buffer; that buffer
    /// auto-merges into the shard's CSR runs once it outgrows a fraction of
    /// the shard.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        debug_assert!(s.index() < self.dict.len(), "foreign subject id");
        debug_assert!(p.index() < self.dict.len(), "foreign predicate id");
        debug_assert!(o.index() < self.dict.len(), "foreign object id");
        let w = shard_of_subject(s, self.shards.len());
        if self.shards[w].insert(self.next_seq, Triple::new(s, p, o)) {
            self.next_seq += 1;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Inserts an encoded [`Triple`].
    pub fn insert_triple(&mut self, t: Triple) -> bool {
        self.insert_ids(t.s, t.p, t.o)
    }

    /// True if the encoded triple is present.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.shards[self.shard_of(s)].contains_ids(s, p, o)
    }

    /// True if the term-level triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.id(s), self.dict.id(p), self.dict.id(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// The objects of `(s, p, ·)`: the sorted CSR run first, then any
    /// not-yet-merged delta inserts. Subject-bound, so a single shard
    /// serves the whole iteration.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        let sh = &self.shards[self.shard_of(s)];
        sh.spo.thirds_of_pair(s, p).iter().copied().chain(
            sh.delta
                .iter()
                .filter(move |(_, t)| t.s == s && t.p == p)
                .map(|(_, t)| t.o),
        )
    }

    /// The subjects of `(·, p, o)`: the sorted CSR runs first (merged
    /// across shards in ascending subject order — exactly the flat store's
    /// order), then any not-yet-merged delta inserts in insertion order.
    pub fn subjects(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        let mut slices: Vec<&[TermId]> = self
            .shards
            .iter()
            .map(|sh| sh.pos.thirds_of_pair(p, o))
            .collect();
        let pattern = TriplePattern::new(None, Some(p), Some(o));
        let mut delta: Vec<TermId> = Vec::new();
        self.sweep_delta_matches(pattern, &mut |t| delta.push(t.s));
        std::iter::from_fn(move || {
            let mut best: Option<(usize, TermId)> = None;
            for (i, sl) in slices.iter().enumerate() {
                if let Some(&s) = sl.first() {
                    if best.is_none_or(|(_, b)| s < b) {
                        best = Some((i, s));
                    }
                }
            }
            let (i, s) = best?;
            slices[i] = &slices[i][1..];
            Some(s)
        })
        .chain(delta)
    }

    /// Iterates every triple: the sorted SPO runs first (merged across
    /// shards in global sorted order), then the deltas in insertion order.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        let mut runs: Vec<_> = self
            .shards
            .iter()
            .map(|sh| sh.spo.tuples().peekable())
            .collect();
        let mut delta: Vec<(u64, Triple)> = self
            .shards
            .iter()
            .flat_map(|sh| sh.delta.iter().copied())
            .collect();
        if self.shards.len() > 1 {
            delta.sort_unstable_by_key(|&(seq, _)| seq);
        }
        std::iter::from_fn(move || {
            let mut best: Option<usize> = None;
            let mut best_val = (TermId(0), TermId(0), TermId(0));
            for (i, run) in runs.iter_mut().enumerate() {
                if let Some(&t) = run.peek() {
                    if best.is_none() || t < best_val {
                        best = Some(i);
                        best_val = t;
                    }
                }
            }
            let i = best?;
            runs[i].next();
            Some(Triple::new(best_val.0, best_val.1, best_val.2))
        })
        .chain(delta.into_iter().map(|(_, t)| t))
    }

    /// Fires `f` for every delta triple matching `pattern`, across shards,
    /// in global insertion order.
    fn sweep_delta_matches<F: FnMut(Triple)>(&self, pattern: TriplePattern, f: &mut F) {
        if self.shards.len() == 1 {
            for &(_, t) in &self.shards[0].delta {
                if pattern.matches(&t) {
                    f(t);
                }
            }
            return;
        }
        if !self.has_pending_delta() {
            return;
        }
        let mut hits: Vec<(u64, Triple)> = Vec::new();
        for sh in &self.shards {
            for &(seq, t) in &sh.delta {
                if pattern.matches(&t) {
                    hits.push((seq, t));
                }
            }
        }
        hits.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, t) in hits {
            f(t);
        }
    }

    /// Calls `f` for every triple matching `pattern`, using the cheapest
    /// index for the pattern's shape — every shape is index-backed.
    ///
    /// The enumeration order is independent of the shard count: a
    /// subject-bound shape routes to one shard (whose local order is the
    /// flat order), and subject-free shapes k-way merge the per-shard sorted
    /// runs by the index's sort key, which cannot tie across shards.
    pub fn for_each_match<F: FnMut(Triple)>(&self, pattern: TriplePattern, mut f: F) {
        if self.shards.len() == 1 {
            self.shards[0].for_each_match_local(pattern, &mut f);
            return;
        }
        if let Some(s) = pattern.s {
            self.shards[self.shard_of(s)].for_each_match_local(pattern, &mut f);
            return;
        }
        match (pattern.p, pattern.o) {
            (Some(p), Some(o)) => {
                let mut slices: Vec<&[TermId]> = self
                    .shards
                    .iter()
                    .map(|sh| sh.pos.thirds_of_pair(p, o))
                    .collect();
                loop {
                    let mut best: Option<(usize, TermId)> = None;
                    for (i, sl) in slices.iter().enumerate() {
                        if let Some(&s) = sl.first() {
                            if best.is_none_or(|(_, b)| s < b) {
                                best = Some((i, s));
                            }
                        }
                    }
                    let Some((i, s)) = best else { break };
                    slices[i] = &slices[i][1..];
                    f(Triple::new(s, p, o));
                }
            }
            (Some(p), None) => {
                let mut runs: Vec<_> = self
                    .shards
                    .iter()
                    .map(|sh| sh.pos.pairs_of_first(p).peekable())
                    .collect();
                merge_sorted_runs(&mut runs, |(o, s)| f(Triple::new(s, p, o)));
            }
            (None, Some(o)) => {
                let mut runs: Vec<_> = self
                    .shards
                    .iter()
                    .map(|sh| sh.osp.pairs_of_first(o).peekable())
                    .collect();
                merge_sorted_runs(&mut runs, |(s, p)| f(Triple::new(s, p, o)));
            }
            (None, None) => {
                let mut runs: Vec<_> = self
                    .shards
                    .iter()
                    .map(|sh| sh.spo.tuples().peekable())
                    .collect();
                merge_sorted_runs(&mut runs, |(s, p, o)| f(Triple::new(s, p, o)));
            }
        }
        self.sweep_delta_matches(pattern, &mut f);
    }

    /// Calls `f` for every triple of shard `shard` matching `pattern`, in
    /// the shard's local order (sorted run, then shard delta). The engine's
    /// per-shard evaluation workers use this to probe shards directly;
    /// patterns whose subject routes elsewhere simply match nothing here.
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn for_each_match_in_shard<F: FnMut(Triple)>(
        &self,
        shard: usize,
        pattern: TriplePattern,
        mut f: F,
    ) {
        self.shards[shard].for_each_match_local(pattern, &mut f);
    }

    /// Collects the triples matching `pattern`.
    pub fn matching(&self, pattern: TriplePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pattern, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pattern`, computed from the CSR
    /// offset/run metadata (plus sweeps of the bounded delta buffers) — no
    /// shape falls back to a full scan. Used for join-order selectivity.
    ///
    /// Subject-bound shapes are answered by one shard; subject-free shapes
    /// are an integer sum of shard-local counts — nothing is materialized
    /// per shard, so the planning path stays allocation-free at any shard
    /// count.
    pub fn count_matching(&self, pattern: TriplePattern) -> usize {
        if let Some(s) = pattern.s {
            return self.shards[self.shard_of(s)].count_matching_local(pattern);
        }
        if pattern.p.is_none() && pattern.o.is_none() {
            return self.len;
        }
        self.shards
            .iter()
            .map(|sh| sh.count_matching_local(pattern))
            .sum()
    }

    /// Exact number of triples of shard `shard` matching `pattern` — the
    /// shard-level statistic the engine uses to skip shards that cannot
    /// contribute to a probe (predicate/constant pushdown).
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn count_matching_in_shard(&self, shard: usize, pattern: TriplePattern) -> usize {
        self.shards[shard].count_matching_local(pattern)
    }

    /// Decodes a triple back to its terms.
    ///
    /// # Panics
    /// Panics if the ids are foreign to this graph's dictionary.
    pub fn decode(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.term(t.s),
            self.dict.term(t.p),
            self.dict.term(t.o),
        )
    }

    /// Per-predicate triple counts, sorted descending — the store's summary
    /// statistics (used by consoles and for eyeballing generated workloads).
    pub fn predicate_counts(&self) -> Vec<(TermId, usize)> {
        let mut counts: FxHashMap<TermId, usize> = FxHashMap::default();
        for sh in &self.shards {
            for (p, n) in sh.pos.first_group_sizes() {
                *counts.entry(p).or_insert(0) += n;
            }
            for (_, t) in &sh.delta {
                *counts.entry(t.p).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<(TermId, usize)> = counts.into_iter().collect();
        counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Number of distinct subjects. Subjects never cross shards, so this is
    /// the exact sum of per-shard distinct counts — no cross-shard set is
    /// built.
    pub fn subject_count(&self) -> usize {
        self.shards.iter().map(Shard::distinct_subjects).sum()
    }

    /// Distinct first components of the chosen per-shard index, unioned
    /// across shards (predicates and objects may appear in many shards).
    fn distinct_union(
        &self,
        idx_of: impl Fn(&Shard) -> &CsrIndex,
        key: impl Fn(&Triple) -> TermId,
    ) -> usize {
        if self.shards.len() == 1 {
            let sh = &self.shards[0];
            return distinct_with_delta(idx_of(sh), &sh.delta, key);
        }
        let mut set: FxHashSet<TermId> = FxHashSet::default();
        for sh in &self.shards {
            for (k, _) in idx_of(sh).first_group_sizes() {
                set.insert(k);
            }
            for (_, t) in &sh.delta {
                set.insert(key(t));
            }
        }
        set.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.distinct_union(|sh| &sh.pos, |t| t.p)
    }

    /// Number of distinct objects.
    pub fn object_count(&self) -> usize {
        self.distinct_union(|sh| &sh.osp, |t| t.o)
    }

    /// Copies every triple of `other` into `self`, re-encoding terms into
    /// this graph's dictionary through the bulk loader. Returns the number
    /// of newly added triples.
    pub fn absorb(&mut self, other: &Graph) -> usize {
        let mut batch = Vec::with_capacity(other.len());
        for t in other.triples() {
            let (s, p, o) = other.decode(t);
            batch.push(Triple::new(
                self.dict.encode(s),
                self.dict.encode(p),
                self.dict.encode(o),
            ));
        }
        self.bulk_insert_ids(batch)
    }
}

/// K-way merges per-shard sorted runs in ascending tuple order. Ties across
/// runs are impossible for the call sites in this module (the runs' sort
/// keys start with — or determine — the subject, and a subject lives in
/// exactly one shard), so a plain minimum scan is exact.
fn merge_sorted_runs<T: Copy + Ord, I: Iterator<Item = T>>(
    runs: &mut [std::iter::Peekable<I>],
    mut f: impl FnMut(T),
) {
    loop {
        let mut best: Option<(usize, T)> = None;
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some(&x) = run.peek() {
                if best.is_none_or(|(_, b)| x < b) {
                    best = Some((i, x));
                }
            }
        }
        let Some((i, x)) = best else { break };
        runs[i].next();
        f(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::DELTA_MERGE_MIN;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("user1", "hasAge", &Term::integer(28));
        g.insert_iri("user2", "hasAge", &Term::integer(40));
        g.insert_iri("user3", "hasAge", &Term::integer(35));
        g.insert_iri("user1", "livesIn", &Term::literal("Madrid"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("Bill"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("William"));
        g
    }

    /// The same graph with the delta folded into the CSR runs, so tests can
    /// exercise both storage states.
    fn sample_compacted() -> Graph {
        let mut g = sample();
        g.compact();
        assert_eq!(g.pending_delta_len(), 0);
        g
    }

    /// The sample graph rebuilt at a given shard count, through the same
    /// incremental insertion sequence.
    fn sample_sharded(n: usize) -> Graph {
        let flat = sample();
        let mut g = Graph::with_shards(n);
        g.dict = flat.dict.clone();
        for t in flat.triples() {
            g.insert_ids(t.s, t.p, t.o);
        }
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert_iri("a", "p", &Term::literal("x")));
        assert!(!g.insert_iri("a", "p", &Term::literal("x")));
        assert_eq!(g.len(), 1);
        // Dedup also holds across the delta/CSR boundary.
        g.compact();
        assert!(!g.insert_iri("a", "p", &Term::literal("x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_decode() {
        for g in [sample(), sample_compacted()] {
            assert!(g.contains(
                &Term::iri("user1"),
                &Term::iri("hasAge"),
                &Term::integer(28)
            ));
            assert!(!g.contains(
                &Term::iri("user1"),
                &Term::iri("hasAge"),
                &Term::integer(99)
            ));
            let t = g.matching(TriplePattern::new(g.dict().iri_id("user2"), None, None))[0];
            let (s, _, o) = g.decode(t);
            assert_eq!(s, &Term::iri("user2"));
            assert_eq!(o, &Term::integer(40));
        }
    }

    #[test]
    fn all_eight_pattern_shapes_agree_with_full_scan() {
        for g in [sample(), sample_compacted()] {
            let all: Vec<Triple> = g.triples().collect();
            assert_eq!(all.len(), g.len());
            // Enumerate every (s?, p?, o?) choice drawn from an actual triple
            // and check index-backed matching equals a brute-force filter.
            let probe = all[0];
            for mask in 0u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(probe.s),
                    (mask & 2 != 0).then_some(probe.p),
                    (mask & 4 != 0).then_some(probe.o),
                );
                let mut via_index = g.matching(pat);
                let mut via_scan: Vec<Triple> =
                    all.iter().copied().filter(|t| pat.matches(t)).collect();
                via_index.sort();
                via_scan.sort();
                assert_eq!(via_index, via_scan, "pattern shape {mask:#05b}");
                assert_eq!(g.count_matching(pat), via_scan.len(), "count {mask:#05b}");
            }
        }
    }

    #[test]
    fn sharded_reads_are_bit_identical_to_flat() {
        let flat = sample();
        let all: Vec<Triple> = flat.triples().collect();
        for n in [2usize, 7, 16] {
            for (mode, g) in [
                ("incremental", sample_sharded(n)),
                ("compacted", {
                    let mut g = sample_sharded(n);
                    g.compact();
                    g
                }),
                (
                    "bulk",
                    Graph::from_triples_sharded(flat.dict.clone(), all.clone(), n),
                ),
            ] {
                // Compare against the flat graph in the matching storage
                // state (delta order only lines up delta-to-delta).
                let reference = if mode == "incremental" {
                    sample()
                } else {
                    sample_compacted()
                };
                assert_eq!(g.len(), reference.len(), "{mode}@{n}");
                assert_eq!(
                    g.triples().collect::<Vec<_>>(),
                    reference.triples().collect::<Vec<_>>(),
                    "{mode}@{n} triples order"
                );
                let probe = all[0];
                for mask in 0u8..8 {
                    let pat = TriplePattern::new(
                        (mask & 1 != 0).then_some(probe.s),
                        (mask & 2 != 0).then_some(probe.p),
                        (mask & 4 != 0).then_some(probe.o),
                    );
                    assert_eq!(
                        g.matching(pat),
                        reference.matching(pat),
                        "{mode}@{n} shape {mask:#05b} (order-sensitive)"
                    );
                    assert_eq!(g.count_matching(pat), reference.count_matching(pat));
                }
                assert_eq!(g.subject_count(), reference.subject_count());
                assert_eq!(g.predicate_count(), reference.predicate_count());
                assert_eq!(g.object_count(), reference.object_count());
                assert_eq!(g.predicate_counts(), reference.predicate_counts());
            }
        }
    }

    #[test]
    fn shard_statistics_partition_the_store() {
        let mut g = sample_sharded(7);
        g.compact();
        assert_eq!(g.shard_count(), 7);
        let total: usize = (0..7)
            .map(|w| g.shard_len(w))
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert_eq!(total, g.len());
        let subjects: usize = (0..7).map(|w| g.shard_subject_count(w)).sum();
        assert_eq!(subjects, g.subject_count());
        // Per-shard counts of a subject-free shape sum to the global count.
        let p = g.dict().iri_id("hasAge").unwrap();
        let pat = TriplePattern::new(None, Some(p), None);
        let per_shard: usize = (0..7).map(|w| g.count_matching_in_shard(w, pat)).sum();
        assert_eq!(per_shard, g.count_matching(pat));
        // A subject-bound probe is served entirely by its owner shard.
        let s = g.dict().iri_id("user1").unwrap();
        let own = g.shard_of(s);
        let bound = TriplePattern::new(Some(s), None, None);
        assert_eq!(
            g.count_matching_in_shard(own, bound),
            g.count_matching(bound)
        );
        let mut routed = Vec::new();
        g.for_each_match_in_shard(own, bound, |t| routed.push(t));
        assert_eq!(routed, g.matching(bound));
    }

    #[test]
    fn set_shard_count_repartitions_in_place() {
        let mut g = sample();
        g.set_shard_count(7);
        assert_eq!(g.shard_count(), 7);
        assert_eq!(g.pending_delta_len(), 0, "resharding compacts");
        let reference = sample_compacted();
        assert_eq!(
            g.triples().collect::<Vec<_>>(),
            reference.triples().collect::<Vec<_>>()
        );
        g.set_shard_count(1);
        assert_eq!(g.shard_count(), 1);
        assert_eq!(
            g.triples().collect::<Vec<_>>(),
            reference.triples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bulk_loader_equals_incremental_inserts() {
        let incremental = sample_compacted();
        let bulk = Graph::from_triples(
            incremental.dict().clone(),
            incremental.triples().collect::<Vec<_>>(),
        );
        assert_eq!(bulk.len(), incremental.len());
        for t in incremental.triples() {
            assert!(bulk.contains_ids(t.s, t.p, t.o));
        }
        // Bulk loading dedups batch-internal repeats too.
        let twice: Vec<Triple> = incremental.triples().chain(incremental.triples()).collect();
        let deduped = Graph::from_triples(incremental.dict().clone(), twice);
        assert_eq!(deduped.len(), incremental.len());
    }

    #[test]
    fn bulk_insert_reports_only_new_triples() {
        let mut g = sample();
        let existing: Vec<Triple> = g.triples().collect();
        // Re-inserting the whole graph adds nothing…
        assert_eq!(g.bulk_insert_ids(existing), 0);
        // …and the delta was folded in by the bulk call.
        assert_eq!(g.pending_delta_len(), 0);
        let s = g.encode(&Term::iri("user9"));
        let p = g.encode(&Term::iri("livesIn"));
        let o = g.encode(&Term::literal("Kyoto"));
        assert_eq!(g.bulk_insert_ids([Triple::new(s, p, o)]), 1);
        assert!(g.contains_ids(s, p, o));
    }

    #[test]
    fn delta_auto_merges_at_threshold() {
        let mut g = Graph::new();
        let p = g.encode(&Term::iri("p"));
        let ids: Vec<TermId> = (0..2 * DELTA_MERGE_MIN)
            .map(|i| g.encode(&Term::iri(format!("n{i}"))))
            .collect();
        for (i, &s) in ids.iter().enumerate() {
            g.insert_ids(s, p, ids[(i + 1) % ids.len()]);
        }
        assert!(
            g.pending_delta_len() < DELTA_MERGE_MIN,
            "delta should have auto-merged at least once, still {}",
            g.pending_delta_len()
        );
        assert_eq!(g.len(), 2 * DELTA_MERGE_MIN);
        assert_eq!(
            g.count_matching(TriplePattern::new(None, Some(p), None)),
            g.len()
        );
    }

    #[test]
    fn multi_valued_properties_are_kept() {
        // user1 is identified both as William and as Bill (paper §2).
        for g in [sample(), sample_compacted(), sample_sharded(7)] {
            let p = g.dict().iri_id("identifiedBy").unwrap();
            let s = g.dict().iri_id("user1").unwrap();
            assert_eq!(g.objects(s, p).count(), 2);
        }
    }

    #[test]
    fn objects_and_subjects_missing_are_empty() {
        let g = sample();
        let s = g.dict().iri_id("user1").unwrap();
        assert_eq!(g.objects(s, TermId(9999)).count(), 0);
        assert_eq!(g.subjects(TermId(9999), s).count(), 0);
    }

    #[test]
    fn absorb_merges_and_reencodes() {
        let g1 = sample();
        let mut g2 = Graph::new();
        g2.insert_iri("user9", "livesIn", &Term::literal("Kyoto"));
        let added = g2.absorb(&g1);
        assert_eq!(added, g1.len());
        assert_eq!(g2.len(), g1.len() + 1);
        assert!(g2.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
        // Absorbing again adds nothing.
        assert_eq!(g2.absorb(&g1), 0);
    }

    #[test]
    fn count_matching_full_wildcard_is_len() {
        let g = sample();
        assert_eq!(g.count_matching(TriplePattern::default()), g.len());
    }

    #[test]
    fn summary_statistics() {
        for g in [sample(), sample_compacted(), sample_sharded(16)] {
            assert_eq!(g.subject_count(), 3);
            assert_eq!(g.predicate_count(), 3); // hasAge, livesIn, identifiedBy
            let counts = g.predicate_counts();
            assert_eq!(counts.len(), 3);
            // hasAge has 3 triples, identifiedBy 2, livesIn 1 — sorted desc.
            assert_eq!(counts[0].1, 3);
            assert_eq!(counts[1].1, 2);
            assert_eq!(counts[2].1, 1);
            assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), g.len());
            assert!(g.object_count() >= 5);
        }
    }

    #[test]
    fn mixed_bulk_then_incremental_then_bulk() {
        // Interleave the three load paths and check reads stay consistent.
        let mut g = sample_compacted();
        assert!(g.insert_iri("user2", "livesIn", &Term::literal("Oslo")));
        assert_eq!(g.pending_delta_len(), 1);
        let s = g.encode(&Term::iri("user3"));
        let p = g.encode(&Term::iri("livesIn"));
        let o = g.encode(&Term::literal("Lima"));
        assert_eq!(g.bulk_insert_ids([Triple::new(s, p, o)]), 1);
        // A small batch into a non-empty store rides the delta buffer (a
        // full three-index rebuild for one row would cost O(n))…
        assert_eq!(g.pending_delta_len(), 2);
        assert_eq!(g.len(), 8);
        // …and compaction folds it in on demand.
        g.compact();
        assert_eq!(g.pending_delta_len(), 0);
        assert_eq!(g.len(), 8);
        let lives = g.dict().iri_id("livesIn").unwrap();
        assert_eq!(
            g.count_matching(TriplePattern::new(None, Some(lives), None)),
            3
        );
        assert!(g.contains(
            &Term::iri("user2"),
            &Term::iri("livesIn"),
            &Term::literal("Oslo")
        ));
    }
}
