//! An in-memory, dictionary-encoded RDF graph over flat CSR-style indexes.
//!
//! ## Storage layout
//!
//! Each triple is stored three times, once per access-path permutation —
//! SPO, POS and OSP — as a *sorted column set* rather than nested maps:
//!
//! * per permutation, the triples are sorted by `(first, second, third)` and
//!   the second/third components live in two parallel flat columns;
//! * a CSR **offset table** indexed by the first component's dense [`TermId`]
//!   (`offsets[id] .. offsets[id + 1]`) replaces the outer hash map: one
//!   array lookup locates a first-component group, one binary search inside
//!   its `seconds` run locates a `(first, second)` pair, and that pair's
//!   `thirds` are a contiguous sorted slice.
//!
//! This gives every one of the eight triple-pattern shapes an index-backed
//! access path with zero pointer chasing: lookups are array arithmetic plus
//! binary search, scans are linear over dense `u32` columns.
//!
//! ## Bulk loading vs incremental inserts
//!
//! The fast path is the **bulk loader** ([`Graph::from_triples`] /
//! [`Graph::bulk_insert_ids`]): it sorts and dedups each permutation once
//! per batch instead of maintaining sorted leaves per insert. The parsers,
//! the data generators, the reasoner and schema materialization all load
//! through it.
//!
//! The incremental [`Graph::insert`] path stays available through a small
//! unsorted **delta buffer** (plus a hash set for duplicate checks) that
//! every read path consults alongside the sorted runs. The delta is merged
//! into the CSR runs automatically once it exceeds a fraction of the store,
//! or eagerly via [`Graph::compact`].
//!
//! Graphs are append-only: the analytical framework of the paper only ever
//! loads data, saturates it, and materializes analytical-schema instances —
//! none of which deletes triples.

use crate::dictionary::{Dictionary, TermId};
use crate::fx::{FxHashMap, FxHashSet};
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

/// Minimum delta size before an automatic merge is considered; below this
/// the linear delta scans are cheaper than re-merging the columns.
const DELTA_MERGE_MIN: usize = 1024;

/// Upper bound on the delta regardless of store size: read probes sweep the
/// delta linearly, so letting it track `len / 4` unbounded would degrade
/// index lookups on incrementally-built giant graphs.
const DELTA_MERGE_MAX: usize = 65_536;

/// One access-path index: triples sorted by a fixed component permutation,
/// stored as split columns under a CSR offset table over the first
/// component. The permutation itself is the caller's convention — this type
/// only sees `(first, second, third)` tuples.
#[derive(Debug, Default, Clone)]
struct CsrIndex {
    /// `offsets[a] .. offsets[a + 1]` is the row range whose first component
    /// is the term id `a`. Ids beyond the table (interned after the last
    /// rebuild) simply have no sorted rows.
    offsets: Vec<u32>,
    /// Second components, grouped by first component, sorted within a group.
    seconds: Vec<TermId>,
    /// Third components, sorted within each `(first, second)` run.
    thirds: Vec<TermId>,
}

impl CsrIndex {
    /// Number of rows (triples) in the sorted store.
    fn len(&self) -> usize {
        self.seconds.len()
    }

    /// The row range of first component `a`.
    fn group(&self, a: TermId) -> (usize, usize) {
        let i = a.index();
        if i + 1 >= self.offsets.len() {
            return (0, 0);
        }
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Number of rows with first component `a`.
    fn first_len(&self, a: TermId) -> usize {
        let (lo, hi) = self.group(a);
        hi - lo
    }

    /// The row range of the `(a, b)` pair, found by binary search within
    /// `a`'s group.
    fn pair_range(&self, a: TermId, b: TermId) -> (usize, usize) {
        let (lo, hi) = self.group(a);
        let run = &self.seconds[lo..hi];
        let from = lo + run.partition_point(|&x| x < b);
        let to = lo + run.partition_point(|&x| x <= b);
        (from, to)
    }

    /// The sorted third components of the `(a, b)` pair — a contiguous
    /// column slice.
    fn thirds_of_pair(&self, a: TermId, b: TermId) -> &[TermId] {
        let (from, to) = self.pair_range(a, b);
        &self.thirds[from..to]
    }

    /// True if the `(a, b, c)` tuple is present.
    fn contains(&self, a: TermId, b: TermId, c: TermId) -> bool {
        self.thirds_of_pair(a, b).binary_search(&c).is_ok()
    }

    /// `(second, third)` pairs of first component `a`, in sorted order.
    fn pairs_of_first(&self, a: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let (lo, hi) = self.group(a);
        self.seconds[lo..hi]
            .iter()
            .copied()
            .zip(self.thirds[lo..hi].iter().copied())
    }

    /// All tuples in sorted order (first components reconstructed from the
    /// offset table).
    fn tuples(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |a| {
            let (lo, hi) = (self.offsets[a] as usize, self.offsets[a + 1] as usize);
            (lo..hi).map(move |i| (TermId(a as u32), self.seconds[i], self.thirds[i]))
        })
    }

    /// Number of distinct first components with at least one row.
    fn distinct_firsts(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// `(first, group size)` for every non-empty first component.
    fn first_group_sizes(&self) -> impl Iterator<Item = (TermId, usize)> + '_ {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] < w[1])
            .map(|(a, w)| (TermId(a as u32), (w[1] - w[0]) as usize))
    }

    /// Builds the CSR offset table (histogram + prefix sum over the first
    /// component) for `tuples`, covering ids `0..top`.
    fn build_offsets(tuples: &[(TermId, TermId, TermId)], top: usize) -> Vec<u32> {
        let mut offsets = vec![0u32; top + 1];
        for t in tuples {
            offsets[t.0.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        offsets
    }

    /// Replaces the store with `tuples`, which must be sorted and deduped.
    fn rebuild(&mut self, tuples: Vec<(TermId, TermId, TermId)>) {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "unsorted rebuild");
        let top = tuples.last().map_or(0, |t| t.0.index() + 1);
        self.offsets = Self::build_offsets(&tuples, top);
        self.seconds = tuples.iter().map(|t| t.1).collect();
        self.thirds = tuples.iter().map(|t| t.2).collect();
    }

    /// Replaces the store with `tuples`, which must be deduped but may be in
    /// any order. Classic CSR construction: a counting pass over the first
    /// component buckets the rows in O(n), then each (small) bucket is
    /// sorted by (second, third) — much cheaper than a global three-way
    /// sort, and the bulk loader's fast path for the two permutations whose
    /// order it does not already have.
    fn rebuild_grouped(&mut self, tuples: Vec<(TermId, TermId, TermId)>) {
        let top = tuples.iter().map(|t| t.0.index() + 1).max().unwrap_or(0);
        let offsets = Self::build_offsets(&tuples, top);
        let mut cursor = offsets.clone();
        let mut pairs: Vec<(TermId, TermId)> = vec![(TermId(0), TermId(0)); tuples.len()];
        for t in &tuples {
            let c = &mut cursor[t.0.index()];
            pairs[*c as usize] = (t.1, t.2);
            *c += 1;
        }
        drop(tuples);
        let mut start = 0usize;
        for a in 0..top {
            let end = offsets[a + 1] as usize;
            pairs[start..end].sort_unstable();
            start = end;
        }
        self.offsets = offsets;
        self.seconds = pairs.iter().map(|p| p.0).collect();
        self.thirds = pairs.iter().map(|p| p.1).collect();
    }

    /// Merges `add` (sorted, internally deduped) into the store, skipping
    /// tuples already present. Returns the number of tuples actually added.
    fn merge(&mut self, add: Vec<(TermId, TermId, TermId)>) -> usize {
        if add.is_empty() {
            return 0;
        }
        let old_len = self.len();
        if old_len == 0 {
            let added = add.len();
            self.rebuild(add);
            return added;
        }
        let mut merged = Vec::with_capacity(old_len + add.len());
        {
            let mut incoming = add.iter().copied().peekable();
            for old in self.tuples() {
                while let Some(&a) = incoming.peek() {
                    if a < old {
                        merged.push(a);
                        incoming.next();
                    } else if a == old {
                        incoming.next();
                    } else {
                        break;
                    }
                }
                merged.push(old);
            }
            merged.extend(incoming);
        }
        let added = merged.len() - old_len;
        self.rebuild(merged);
        added
    }
}

/// An indexed RDF graph owning its [`Dictionary`].
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Dictionary,
    /// Sorted as (s, p, o).
    spo: CsrIndex,
    /// Sorted as (p, o, s).
    pos: CsrIndex,
    /// Sorted as (o, s, p).
    osp: CsrIndex,
    /// Recent incremental inserts not yet merged, in insertion order.
    delta: Vec<Triple>,
    /// The delta's triples again, for O(1) duplicate checks.
    delta_set: FxHashSet<Triple>,
    len: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from an owned dictionary and a batch of triples
    /// encoded against it, through the bulk loader (one sort + dedup per
    /// permutation — the fast path for loading at scale).
    pub fn from_triples(dict: Dictionary, triples: impl IntoIterator<Item = Triple>) -> Self {
        let mut g = Graph {
            dict,
            ..Graph::default()
        };
        g.bulk_insert_ids(triples);
        g
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Write access to the term dictionary (interning terms ahead of bulk
    /// insertion).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Interns a term in this graph's dictionary.
    pub fn encode(&mut self, term: &Term) -> TermId {
        self.dict.encode(term)
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of triples sitting in the unsorted delta buffer (not yet
    /// merged into the CSR runs). Exposed for instrumentation and tests.
    pub fn pending_delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Bulk-inserts a batch of already-encoded triples: sorts + dedups the
    /// batch (folding in any pending delta) and merges each permutation into
    /// the CSR runs in one pass. Returns the number of newly added triples.
    ///
    /// Small batches arriving at a large store (e.g. a reasoner round that
    /// entails a handful of triples over millions) are routed through the
    /// delta buffer instead: a full three-index rebuild for a few rows would
    /// cost O(n), while the delta's auto-merge amortizes it away.
    ///
    /// The ids must come from this graph's dictionary (debug-asserted).
    pub fn bulk_insert_ids(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let batch: Vec<Triple> = triples.into_iter().collect();
        if self.spo.len() > 0 && self.delta.len() + batch.len() < self.delta_threshold() {
            let mut added = 0;
            for t in batch {
                added += usize::from(self.insert_ids(t.s, t.p, t.o));
            }
            return added;
        }
        self.merge_into_runs(batch)
    }

    /// The merge path of [`Self::bulk_insert_ids`]: folds the delta plus
    /// `batch` into the sorted CSR runs unconditionally.
    fn merge_into_runs(&mut self, batch: Vec<Triple>) -> usize {
        let before = self.len;
        let mut spo_add: Vec<(TermId, TermId, TermId)> = self
            .delta
            .iter()
            .chain(batch.iter())
            .map(|t| {
                debug_assert!(t.s.index() < self.dict.len(), "foreign subject id");
                debug_assert!(t.p.index() < self.dict.len(), "foreign predicate id");
                debug_assert!(t.o.index() < self.dict.len(), "foreign object id");
                (t.s, t.p, t.o)
            })
            .collect();
        drop(batch);
        self.delta.clear();
        self.delta_set.clear();
        if spo_add.is_empty() {
            return 0;
        }
        spo_add.sort_unstable();
        spo_add.dedup();
        // One global sort + dedup covers all three permutations (a duplicate
        // triple is a duplicate in every component order). The permuted
        // batches therefore only need ordering, not dedup: when the store is
        // empty they go through the O(n) counting-scatter construction, and
        // only merges into a non-empty store pay for full permuted sorts.
        let pos_add: Vec<(TermId, TermId, TermId)> =
            spo_add.iter().map(|&(s, p, o)| (p, o, s)).collect();
        let osp_add: Vec<(TermId, TermId, TermId)> =
            spo_add.iter().map(|&(s, p, o)| (o, s, p)).collect();
        if self.spo.len() == 0 {
            self.pos.rebuild_grouped(pos_add);
            self.osp.rebuild_grouped(osp_add);
            self.spo.rebuild(spo_add);
        } else {
            self.spo.merge(spo_add);
            let mut pos_add = pos_add;
            pos_add.sort_unstable();
            self.pos.merge(pos_add);
            let mut osp_add = osp_add;
            osp_add.sort_unstable();
            self.osp.merge(osp_add);
        }

        self.len = self.spo.len();
        self.len - before
    }

    /// Folds the pending delta buffer into the sorted CSR runs, so that
    /// subsequent reads are pure index scans. Idempotent; cheap when the
    /// delta is empty.
    pub fn compact(&mut self) {
        if !self.delta.is_empty() {
            self.merge_into_runs(Vec::new());
        }
    }

    /// Delta size at which an automatic merge fires. Proportional to the
    /// store so incremental building stays amortized-cheap, but capped so
    /// read probes (which sweep the delta linearly) never pay more than a
    /// bounded scan on top of their index lookups.
    fn delta_threshold(&self) -> usize {
        DELTA_MERGE_MIN.max((self.spo.len() / 4).min(DELTA_MERGE_MAX))
    }

    /// Inserts a triple given as terms; returns `true` if it was new.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let s = self.dict.encode(s);
        let p = self.dict.encode(p);
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts a triple with subject/predicate given as IRI strings.
    pub fn insert_iri(&mut self, s: &str, p: &str, o: &Term) -> bool {
        let s = self.dict.encode_owned(Term::iri(s));
        let p = self.dict.encode_owned(Term::iri(p));
        let o = self.dict.encode(o);
        self.insert_ids(s, p, o)
    }

    /// Inserts an already-encoded triple; returns `true` if it was new.
    ///
    /// The ids must come from this graph's dictionary (debug-asserted). The
    /// triple lands in the delta buffer; the buffer auto-merges into the CSR
    /// runs once it outgrows a fraction of the store.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        debug_assert!(s.index() < self.dict.len(), "foreign subject id");
        debug_assert!(p.index() < self.dict.len(), "foreign predicate id");
        debug_assert!(o.index() < self.dict.len(), "foreign object id");
        let t = Triple::new(s, p, o);
        if self.spo.contains(s, p, o) || self.delta_set.contains(&t) {
            return false;
        }
        self.delta.push(t);
        self.delta_set.insert(t);
        self.len += 1;
        if self.delta.len() >= self.delta_threshold() {
            self.compact();
        }
        true
    }

    /// Inserts an encoded [`Triple`].
    pub fn insert_triple(&mut self, t: Triple) -> bool {
        self.insert_ids(t.s, t.p, t.o)
    }

    /// True if the encoded triple is present.
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(s, p, o) || self.delta_set.contains(&Triple::new(s, p, o))
    }

    /// True if the term-level triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.id(s), self.dict.id(p), self.dict.id(o)) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// The objects of `(s, p, ·)`: the sorted CSR run first, then any
    /// not-yet-merged delta inserts.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.spo.thirds_of_pair(s, p).iter().copied().chain(
            self.delta
                .iter()
                .filter(move |t| t.s == s && t.p == p)
                .map(|t| t.o),
        )
    }

    /// The subjects of `(·, p, o)`: the sorted CSR run first, then any
    /// not-yet-merged delta inserts.
    pub fn subjects(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.pos.thirds_of_pair(p, o).iter().copied().chain(
            self.delta
                .iter()
                .filter(move |t| t.p == p && t.o == o)
                .map(|t| t.s),
        )
    }

    /// Iterates every triple (sorted SPO runs first, then the delta).
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo
            .tuples()
            .map(|(s, p, o)| Triple::new(s, p, o))
            .chain(self.delta.iter().copied())
    }

    /// Calls `f` for every triple matching `pattern`, using the cheapest
    /// index for the pattern's shape — every shape is index-backed.
    pub fn for_each_match<F: FnMut(Triple)>(&self, pattern: TriplePattern, mut f: F) {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                // contains_ids covers the delta; return before the delta
                // sweep below to avoid double-firing.
                if self.contains_ids(s, p, o) {
                    f(Triple::new(s, p, o));
                }
                return;
            }
            (Some(s), Some(p), None) => {
                for &o in self.spo.thirds_of_pair(s, p) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, Some(p), Some(o)) => {
                for &s in self.pos.thirds_of_pair(p, o) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), None, Some(o)) => {
                for &p in self.osp.thirds_of_pair(o, s) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), None, None) => {
                for (p, o) in self.spo.pairs_of_first(s) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, Some(p), None) => {
                for (o, s) in self.pos.pairs_of_first(p) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, None, Some(o)) => {
                for (s, p) in self.osp.pairs_of_first(o) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, None, None) => {
                for (s, p, o) in self.spo.tuples() {
                    f(Triple::new(s, p, o));
                }
            }
        }
        for t in &self.delta {
            if pattern.matches(t) {
                f(*t);
            }
        }
    }

    /// Collects the triples matching `pattern`.
    pub fn matching(&self, pattern: TriplePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pattern, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pattern`, computed from the CSR
    /// offset/run metadata (plus a sweep of the bounded delta buffer) — no
    /// shape falls back to a full scan. Used for join-order selectivity.
    pub fn count_matching(&self, pattern: TriplePattern) -> usize {
        let sorted = match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(s, p, o)),
            (Some(s), Some(p), None) => {
                let (from, to) = self.spo.pair_range(s, p);
                to - from
            }
            (None, Some(p), Some(o)) => {
                let (from, to) = self.pos.pair_range(p, o);
                to - from
            }
            (Some(s), None, Some(o)) => {
                let (from, to) = self.osp.pair_range(o, s);
                to - from
            }
            (Some(s), None, None) => self.spo.first_len(s),
            (None, Some(p), None) => self.pos.first_len(p),
            (None, None, Some(o)) => self.osp.first_len(o),
            (None, None, None) => return self.len,
        };
        if self.delta.is_empty() {
            sorted
        } else {
            sorted + self.delta.iter().filter(|t| pattern.matches(t)).count()
        }
    }

    /// Decodes a triple back to its terms.
    ///
    /// # Panics
    /// Panics if the ids are foreign to this graph's dictionary.
    pub fn decode(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.term(t.s),
            self.dict.term(t.p),
            self.dict.term(t.o),
        )
    }

    /// Per-predicate triple counts, sorted descending — the store's summary
    /// statistics (used by consoles and for eyeballing generated workloads).
    pub fn predicate_counts(&self) -> Vec<(TermId, usize)> {
        let mut counts: FxHashMap<TermId, usize> = FxHashMap::default();
        for (p, n) in self.pos.first_group_sizes() {
            counts.insert(p, n);
        }
        for t in &self.delta {
            *counts.entry(t.p).or_insert(0) += 1;
        }
        let mut counts: Vec<(TermId, usize)> = counts.into_iter().collect();
        counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Distinct first components of `idx`, counting delta extras not yet in
    /// the sorted runs.
    fn distinct_with_delta(&self, idx: &CsrIndex, key: impl Fn(&Triple) -> TermId) -> usize {
        let base = idx.distinct_firsts();
        if self.delta.is_empty() {
            return base;
        }
        let mut extra: FxHashSet<TermId> = FxHashSet::default();
        for t in &self.delta {
            let k = key(t);
            if idx.first_len(k) == 0 {
                extra.insert(k);
            }
        }
        base + extra.len()
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.distinct_with_delta(&self.spo, |t| t.s)
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.distinct_with_delta(&self.pos, |t| t.p)
    }

    /// Number of distinct objects.
    pub fn object_count(&self) -> usize {
        self.distinct_with_delta(&self.osp, |t| t.o)
    }

    /// Copies every triple of `other` into `self`, re-encoding terms into
    /// this graph's dictionary through the bulk loader. Returns the number
    /// of newly added triples.
    pub fn absorb(&mut self, other: &Graph) -> usize {
        let mut batch = Vec::with_capacity(other.len());
        for t in other.triples() {
            let (s, p, o) = other.decode(t);
            batch.push(Triple::new(
                self.dict.encode(s),
                self.dict.encode(p),
                self.dict.encode(o),
            ));
        }
        self.bulk_insert_ids(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("user1", "hasAge", &Term::integer(28));
        g.insert_iri("user2", "hasAge", &Term::integer(40));
        g.insert_iri("user3", "hasAge", &Term::integer(35));
        g.insert_iri("user1", "livesIn", &Term::literal("Madrid"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("Bill"));
        g.insert_iri("user1", "identifiedBy", &Term::literal("William"));
        g
    }

    /// The same graph with the delta folded into the CSR runs, so tests can
    /// exercise both storage states.
    fn sample_compacted() -> Graph {
        let mut g = sample();
        g.compact();
        assert_eq!(g.pending_delta_len(), 0);
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        assert!(g.insert_iri("a", "p", &Term::literal("x")));
        assert!(!g.insert_iri("a", "p", &Term::literal("x")));
        assert_eq!(g.len(), 1);
        // Dedup also holds across the delta/CSR boundary.
        g.compact();
        assert!(!g.insert_iri("a", "p", &Term::literal("x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_decode() {
        for g in [sample(), sample_compacted()] {
            assert!(g.contains(
                &Term::iri("user1"),
                &Term::iri("hasAge"),
                &Term::integer(28)
            ));
            assert!(!g.contains(
                &Term::iri("user1"),
                &Term::iri("hasAge"),
                &Term::integer(99)
            ));
            let t = g.matching(TriplePattern::new(g.dict().iri_id("user2"), None, None))[0];
            let (s, _, o) = g.decode(t);
            assert_eq!(s, &Term::iri("user2"));
            assert_eq!(o, &Term::integer(40));
        }
    }

    #[test]
    fn all_eight_pattern_shapes_agree_with_full_scan() {
        for g in [sample(), sample_compacted()] {
            let all: Vec<Triple> = g.triples().collect();
            assert_eq!(all.len(), g.len());
            // Enumerate every (s?, p?, o?) choice drawn from an actual triple
            // and check index-backed matching equals a brute-force filter.
            let probe = all[0];
            for mask in 0u8..8 {
                let pat = TriplePattern::new(
                    (mask & 1 != 0).then_some(probe.s),
                    (mask & 2 != 0).then_some(probe.p),
                    (mask & 4 != 0).then_some(probe.o),
                );
                let mut via_index = g.matching(pat);
                let mut via_scan: Vec<Triple> =
                    all.iter().copied().filter(|t| pat.matches(t)).collect();
                via_index.sort();
                via_scan.sort();
                assert_eq!(via_index, via_scan, "pattern shape {mask:#05b}");
                assert_eq!(g.count_matching(pat), via_scan.len(), "count {mask:#05b}");
            }
        }
    }

    #[test]
    fn bulk_loader_equals_incremental_inserts() {
        let incremental = sample_compacted();
        let bulk = Graph::from_triples(
            incremental.dict().clone(),
            incremental.triples().collect::<Vec<_>>(),
        );
        assert_eq!(bulk.len(), incremental.len());
        for t in incremental.triples() {
            assert!(bulk.contains_ids(t.s, t.p, t.o));
        }
        // Bulk loading dedups batch-internal repeats too.
        let twice: Vec<Triple> = incremental.triples().chain(incremental.triples()).collect();
        let deduped = Graph::from_triples(incremental.dict().clone(), twice);
        assert_eq!(deduped.len(), incremental.len());
    }

    #[test]
    fn bulk_insert_reports_only_new_triples() {
        let mut g = sample();
        let existing: Vec<Triple> = g.triples().collect();
        // Re-inserting the whole graph adds nothing…
        assert_eq!(g.bulk_insert_ids(existing), 0);
        // …and the delta was folded in by the bulk call.
        assert_eq!(g.pending_delta_len(), 0);
        let s = g.encode(&Term::iri("user9"));
        let p = g.encode(&Term::iri("livesIn"));
        let o = g.encode(&Term::literal("Kyoto"));
        assert_eq!(g.bulk_insert_ids([Triple::new(s, p, o)]), 1);
        assert!(g.contains_ids(s, p, o));
    }

    #[test]
    fn delta_auto_merges_at_threshold() {
        let mut g = Graph::new();
        let p = g.encode(&Term::iri("p"));
        let ids: Vec<TermId> = (0..2 * DELTA_MERGE_MIN)
            .map(|i| g.encode(&Term::iri(format!("n{i}"))))
            .collect();
        for (i, &s) in ids.iter().enumerate() {
            g.insert_ids(s, p, ids[(i + 1) % ids.len()]);
        }
        assert!(
            g.pending_delta_len() < DELTA_MERGE_MIN,
            "delta should have auto-merged at least once, still {}",
            g.pending_delta_len()
        );
        assert_eq!(g.len(), 2 * DELTA_MERGE_MIN);
        assert_eq!(
            g.count_matching(TriplePattern::new(None, Some(p), None)),
            g.len()
        );
    }

    #[test]
    fn multi_valued_properties_are_kept() {
        // user1 is identified both as William and as Bill (paper §2).
        for g in [sample(), sample_compacted()] {
            let p = g.dict().iri_id("identifiedBy").unwrap();
            let s = g.dict().iri_id("user1").unwrap();
            assert_eq!(g.objects(s, p).count(), 2);
        }
    }

    #[test]
    fn objects_and_subjects_missing_are_empty() {
        let g = sample();
        let s = g.dict().iri_id("user1").unwrap();
        assert_eq!(g.objects(s, TermId(9999)).count(), 0);
        assert_eq!(g.subjects(TermId(9999), s).count(), 0);
    }

    #[test]
    fn absorb_merges_and_reencodes() {
        let g1 = sample();
        let mut g2 = Graph::new();
        g2.insert_iri("user9", "livesIn", &Term::literal("Kyoto"));
        let added = g2.absorb(&g1);
        assert_eq!(added, g1.len());
        assert_eq!(g2.len(), g1.len() + 1);
        assert!(g2.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
        // Absorbing again adds nothing.
        assert_eq!(g2.absorb(&g1), 0);
    }

    #[test]
    fn count_matching_full_wildcard_is_len() {
        let g = sample();
        assert_eq!(g.count_matching(TriplePattern::default()), g.len());
    }

    #[test]
    fn summary_statistics() {
        for g in [sample(), sample_compacted()] {
            assert_eq!(g.subject_count(), 3);
            assert_eq!(g.predicate_count(), 3); // hasAge, livesIn, identifiedBy
            let counts = g.predicate_counts();
            assert_eq!(counts.len(), 3);
            // hasAge has 3 triples, identifiedBy 2, livesIn 1 — sorted desc.
            assert_eq!(counts[0].1, 3);
            assert_eq!(counts[1].1, 2);
            assert_eq!(counts[2].1, 1);
            assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), g.len());
            assert!(g.object_count() >= 5);
        }
    }

    #[test]
    fn mixed_bulk_then_incremental_then_bulk() {
        // Interleave the three load paths and check reads stay consistent.
        let mut g = sample_compacted();
        assert!(g.insert_iri("user2", "livesIn", &Term::literal("Oslo")));
        assert_eq!(g.pending_delta_len(), 1);
        let s = g.encode(&Term::iri("user3"));
        let p = g.encode(&Term::iri("livesIn"));
        let o = g.encode(&Term::literal("Lima"));
        assert_eq!(g.bulk_insert_ids([Triple::new(s, p, o)]), 1);
        // A small batch into a non-empty store rides the delta buffer (a
        // full three-index rebuild for one row would cost O(n))…
        assert_eq!(g.pending_delta_len(), 2);
        assert_eq!(g.len(), 8);
        // …and compaction folds it in on demand.
        g.compact();
        assert_eq!(g.pending_delta_len(), 0);
        assert_eq!(g.len(), 8);
        let lives = g.dict().iri_id("livesIn").unwrap();
        assert_eq!(
            g.count_matching(TriplePattern::new(None, Some(lives), None)),
            3
        );
        assert!(g.contains(
            &Term::iri("user2"),
            &Term::iri("livesIn"),
            &Term::literal("Oslo")
        ));
    }
}
