//! Dictionary encoding of RDF terms.
//!
//! Every distinct [`Term`] in a graph is interned once and referred to by a
//! dense `u32` [`TermId`]. All downstream processing — pattern matching,
//! joins, grouping, cube cells — operates on ids; strings are only touched at
//! parse and display time. This is the standard RDF-store design (and the
//! "smaller integers" guidance from the performance guide): ids halve memory
//! traffic and make hash joins integer-keyed.

use crate::fx::FxHashMap;
use crate::term::Term;
use std::fmt;

/// A dense identifier for an interned [`Term`]. Valid only with respect to
/// the [`Dictionary`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional `Term ⟷ TermId` mapping.
///
/// Ids are assigned densely in first-seen order, so `Vec`-indexed side tables
/// (`Vec<T>` keyed by `TermId::index()`) are cheap to maintain.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Interns an owned term without the extra clone when it is fresh.
    pub fn encode_owned(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Convenience: interns an IRI.
    pub fn encode_iri(&mut self, iri: &str) -> TermId {
        self.encode_owned(Term::iri(iri))
    }

    /// Looks up the id of `term` without interning.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Looks up the id of an IRI without interning.
    pub fn iri_id(&self, iri: &str) -> Option<TermId> {
        // Avoids allocating when the IRI is already interned is not possible
        // with std's borrow machinery over enum keys; a single short-lived
        // allocation here is acceptable (lookup is not on the hot path).
        self.id(&Term::iri(iri))
    }

    /// The term behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The term behind `id`, or `None` if the id is foreign.
    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(TermId, &Term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("hasAge"));
        let b = d.encode(&Term::iri("hasAge"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("a"));
        let b = d.encode(&Term::iri("b"));
        let c = d.encode(&Term::literal("c"));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn distinct_term_kinds_get_distinct_ids() {
        // An IRI, a plain literal, and a blank node that share lexical form
        // are different RDF terms.
        let mut d = Dictionary::new();
        let iri = d.encode(&Term::iri("x"));
        let lit = d.encode(&Term::literal("x"));
        let bnode = d.encode(&Term::blank("x"));
        assert_ne!(iri, lit);
        assert_ne!(lit, bnode);
        assert_ne!(iri, bnode);
    }

    #[test]
    fn round_trip() {
        let mut d = Dictionary::new();
        let t = Term::integer(28);
        let id = d.encode(&t);
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id(&t), Some(id));
    }

    #[test]
    fn foreign_id_lookup_is_safe() {
        let d = Dictionary::new();
        assert!(d.get(TermId(99)).is_none());
        assert!(d.iri_id("nope").is_none());
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("a"));
        d.encode(&Term::iri("b"));
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
