//! RDF terms: IRIs, blank nodes, and literals.
//!
//! Terms follow the RDF 1.1 abstract syntax. Literals carry an optional
//! language tag or datatype IRI; plain literals are modeled as
//! [`LiteralKind::Plain`] (equivalent to `xsd:string` under RDF 1.1, but kept
//! distinct so that serialization round-trips exactly).

use std::fmt;

/// The kind of an RDF literal: plain, language-tagged, or datatyped.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// A simple literal, e.g. `"Bill"`.
    Plain,
    /// A language-tagged string, e.g. `"Bill"@en`.
    Lang(Box<str>),
    /// A datatyped literal, e.g. `"28"^^xsd:integer`. Holds the datatype IRI.
    Typed(Box<str>),
}

/// An RDF literal: a lexical form plus its [`LiteralKind`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    kind: LiteralKind,
}

impl Literal {
    /// Creates a plain (simple) literal.
    pub fn plain(lexical: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang(lexical: impl Into<Box<str>>, tag: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Lang(tag.into()),
        }
    }

    /// Creates a datatyped literal.
    pub fn typed(lexical: impl Into<Box<str>>, datatype: impl Into<Box<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }

    /// Creates an `xsd:integer` literal from an `i64`.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::XSD_INTEGER)
    }

    /// Creates an `xsd:double` literal from an `f64`.
    pub fn double(value: f64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::XSD_DOUBLE)
    }

    /// Creates an `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(
            if value { "true" } else { "false" },
            crate::vocab::XSD_BOOLEAN,
        )
    }

    /// The lexical form of the literal.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The literal's kind (plain / language-tagged / datatyped).
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The datatype IRI, if this is a datatyped literal.
    pub fn datatype(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Typed(dt) => Some(dt),
            _ => None,
        }
    }

    /// The language tag, if this is a language-tagged literal.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Lang(tag) => Some(tag),
            _ => None,
        }
    }

    /// Attempts to interpret the literal as an `i64`.
    ///
    /// Plain literals whose lexical form parses as an integer are accepted
    /// too — the paper's examples write ages and word counts as bare numbers
    /// (`user1 hasAge 28`), and analytics must be able to aggregate them.
    pub fn as_i64(&self) -> Option<i64> {
        self.lexical.trim().parse::<i64>().ok()
    }

    /// Attempts to interpret the literal as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        self.lexical.trim().parse::<f64>().ok()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        match &self.kind {
            LiteralKind::Plain => Ok(()),
            LiteralKind::Lang(tag) => write!(f, "@{tag}"),
            LiteralKind::Typed(dt) => write!(f, "^^<{dt}>"),
        }
    }
}

/// An RDF term: the subject/predicate/object alphabet of RDF graphs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI (we do not enforce IRI syntax; the paper's examples use bare
    /// names like `hasAge`, which we accept verbatim as relative IRIs).
    Iri(Box<str>),
    /// A blank node with a local label, e.g. `_:b0`.
    BlankNode(Box<str>),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(iri: impl Into<Box<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// Creates a blank node term.
    pub fn blank(label: impl Into<Box<str>>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Creates a plain-literal term.
    pub fn literal(lexical: impl Into<Box<str>>) -> Self {
        Term::Literal(Literal::plain(lexical))
    }

    /// Creates an integer-literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// Creates a double-literal term.
    pub fn double(value: f64) -> Self {
        Term::Literal(Literal::double(value))
    }

    /// Returns the IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for blank node terms.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// Numeric view of the term, if it is a numeric literal.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_literal().and_then(Literal::as_i64)
    }

    /// Floating-point view of the term, if it is a numeric literal.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_literal().and_then(Literal::as_f64)
    }

    /// A compact, human-oriented rendering for tables and reports: numeric
    /// and plain literals show just their lexical form, other literals keep
    /// their suffix, IRIs drop angle brackets and a leading namespace.
    pub fn display_compact(&self) -> String {
        match self {
            Term::Iri(iri) => {
                let short = iri.rsplit(['#', '/']).next().unwrap_or(iri);
                short.to_string()
            }
            Term::BlankNode(label) => format!("_:{label}"),
            Term::Literal(lit) => match lit.kind() {
                LiteralKind::Plain => lit.lexical().to_string(),
                LiteralKind::Lang(tag) => format!("{}@{tag}", lit.lexical()),
                LiteralKind::Typed(dt) if dt.starts_with("http://www.w3.org/2001/XMLSchema#") => {
                    lit.lexical().to_string()
                }
                LiteralKind::Typed(dt) => format!("{}^^{dt}", lit.lexical()),
            },
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

/// Escapes a literal's lexical form for N-Triples output.
///
/// Besides the named escapes, every remaining C0 control character
/// (U+0000–U+001F) and DEL (U+007F) is emitted as a `\uXXXX` escape — raw
/// control bytes inside a quoted literal are not valid N-Triples, and the
/// Turtle lexer round-trips the `\u` form back to the original character.
pub(crate) fn escape_literal(s: &str) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c <= '\u{1F}' || c == '\u{7F}' => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors_and_accessors() {
        let plain = Literal::plain("Bill");
        assert_eq!(plain.lexical(), "Bill");
        assert_eq!(plain.datatype(), None);
        assert_eq!(plain.language(), None);

        let lang = Literal::lang("Bill", "en");
        assert_eq!(lang.language(), Some("en"));

        let typed = Literal::integer(28);
        assert_eq!(typed.datatype(), Some(crate::vocab::XSD_INTEGER));
        assert_eq!(typed.as_i64(), Some(28));
    }

    #[test]
    fn plain_numeric_literals_parse() {
        // The paper writes `user1 hasAge 28` with no datatype.
        let lit = Literal::plain("28");
        assert_eq!(lit.as_i64(), Some(28));
        assert_eq!(lit.as_f64(), Some(28.0));
        assert_eq!(Literal::plain("Madrid").as_i64(), None);
    }

    #[test]
    fn double_round_trip() {
        let lit = Literal::double(3.5);
        assert_eq!(lit.as_f64(), Some(3.5));
        assert_eq!(lit.as_i64(), None);
    }

    #[test]
    fn term_display_follows_ntriples() {
        assert_eq!(Term::iri("hasAge").to_string(), "<hasAge>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::literal("NY").to_string(), "\"NY\"");
        assert_eq!(
            Term::Literal(Literal::lang("Bill", "en")).to_string(),
            "\"Bill\"@en"
        );
        assert_eq!(
            Term::integer(28).to_string(),
            format!("\"28\"^^<{}>", crate::vocab::XSD_INTEGER)
        );
    }

    #[test]
    fn escaping_covers_control_characters() {
        assert_eq!(
            escape_literal("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf"
        );
    }

    #[test]
    fn escaping_covers_all_c0_controls_and_del() {
        // Unnamed C0 controls and DEL must come out as \uXXXX, not raw.
        assert_eq!(escape_literal("a\u{0}b"), "a\\u0000b");
        assert_eq!(escape_literal("\u{1}\u{1F}\u{7F}"), "\\u0001\\u001F\\u007F");
        // Nothing above DEL is touched (é, 日 pass through).
        assert_eq!(escape_literal("é日"), "é日");
        // The result never contains a raw control character.
        let all_controls: String = (0u32..0x20)
            .chain([0x7F])
            .map(|c| char::from_u32(c).unwrap())
            .collect();
        assert!(escape_literal(&all_controls)
            .chars()
            .all(|c| !c.is_control()));
    }

    #[test]
    fn term_kind_predicates() {
        assert!(Term::iri("x").is_iri());
        assert!(Term::blank("x").is_blank());
        assert!(Term::literal("x").is_literal());
        assert!(!Term::literal("x").is_iri());
    }

    #[test]
    fn display_compact_is_human_oriented() {
        assert_eq!(Term::integer(28).display_compact(), "28");
        assert_eq!(Term::literal("Madrid").display_compact(), "Madrid");
        assert_eq!(
            Term::iri("http://example.org/ns#Blogger").display_compact(),
            "Blogger"
        );
        assert_eq!(Term::iri("hasAge").display_compact(), "hasAge");
        assert_eq!(Term::blank("b0").display_compact(), "_:b0");
        assert_eq!(
            Term::Literal(Literal::lang("Bill", "en")).display_compact(),
            "Bill@en"
        );
        assert_eq!(
            Term::Literal(Literal::typed("x", "http://custom/dt")).display_compact(),
            "x^^http://custom/dt"
        );
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut terms = vec![Term::literal("a"), Term::iri("b"), Term::blank("c")];
        terms.sort();
        // Sorting must not panic and must be deterministic.
        let again = {
            let mut t = terms.clone();
            t.sort();
            t
        };
        assert_eq!(terms, again);
    }
}
