//! Forward-chaining RDFS saturation.
//!
//! The analytical framework the paper builds on (Colazzo et al., WWW 2014)
//! defines analytical-schema instances over *RDFS-entailed* graphs: class and
//! property hierarchies must be folded into the data before the node/edge
//! queries run. This module implements saturation for the ρdf fragment —
//! the four rules involving `rdfs:subClassOf`, `rdfs:subPropertyOf`,
//! `rdfs:domain` and `rdfs:range`:
//!
//! 1. `(c₁ ⊑ c₂), (c₂ ⊑ c₃) ⇒ (c₁ ⊑ c₃)` — and the same for `⊑ₚ`;
//! 2. `(s p o), (p ⊑ₚ q) ⇒ (s q o)`;
//! 3. `(p domain c), (s p o) ⇒ (s rdf:type c)`;
//! 4. `(p range c), (s p o) ⇒ (o rdf:type c)`;
//! 5. `(x rdf:type c₁), (c₁ ⊑ c₂) ⇒ (x rdf:type c₂)`.
//!
//! For this fragment the rules stratify: property closure (1–2) feeds
//! domain/range (3–4), which feeds class membership (5), so a single ordered
//! pass over the closures reaches the fixpoint — no naive iteration needed.

use crate::dictionary::TermId;
use crate::fx::{FxHashMap, FxHashSet};
use crate::graph::Graph;
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};
use crate::vocab;

/// Saturates `graph` in place under the ρdf RDFS rules.
/// Returns the number of entailed triples added.
pub fn saturate(graph: &mut Graph) -> usize {
    let rdf_type = graph.encode(&Term::iri(vocab::RDF_TYPE));
    let sub_class = graph.encode(&Term::iri(vocab::RDFS_SUBCLASSOF));
    let sub_prop = graph.encode(&Term::iri(vocab::RDFS_SUBPROPERTYOF));
    let domain = graph.encode(&Term::iri(vocab::RDFS_DOMAIN));
    let range = graph.encode(&Term::iri(vocab::RDFS_RANGE));

    let mut added = 0;

    // Each rule collects its entailed triples and loads them through the
    // graph's bulk loader: one sort + merge per round instead of per-triple
    // index maintenance, and the next rule then queries a compacted store.

    // Rule 1: transitive closures of the two hierarchies.
    let class_up = transitive_closure(graph, sub_class);
    let prop_up = transitive_closure(graph, sub_prop);
    let mut closures: Vec<Triple> = Vec::new();
    for (child, ancestors) in &class_up {
        for &anc in ancestors {
            closures.push(Triple::new(*child, sub_class, anc));
        }
    }
    for (child, ancestors) in &prop_up {
        for &anc in ancestors {
            closures.push(Triple::new(*child, sub_prop, anc));
        }
    }
    added += graph.bulk_insert_ids(closures);

    // Rule 2: propagate triples up the property hierarchy.
    let mut inherited: Vec<Triple> = Vec::new();
    for (&p, supers) in &prop_up {
        graph.for_each_match(TriplePattern::new(None, Some(p), None), |t| {
            for &q in supers {
                inherited.push(Triple::new(t.s, q, t.o));
            }
        });
    }
    added += graph.bulk_insert_ids(inherited);

    // Rules 3–4: domain and range produce rdf:type triples. Collect the
    // declarations first, then scan each declared property's extension.
    let mut typings: Vec<Triple> = Vec::new();
    let mut decls: Vec<(TermId, TermId, bool)> = Vec::new(); // (property, class, is_domain)
    graph.for_each_match(TriplePattern::new(None, Some(domain), None), |t| {
        decls.push((t.s, t.o, true));
    });
    graph.for_each_match(TriplePattern::new(None, Some(range), None), |t| {
        decls.push((t.s, t.o, false));
    });
    for (p, class, is_domain) in decls {
        graph.for_each_match(TriplePattern::new(None, Some(p), None), |t| {
            let node = if is_domain { t.s } else { t.o };
            typings.push(Triple::new(node, rdf_type, class));
        });
    }
    added += graph.bulk_insert_ids(typings);

    // Rule 5: propagate rdf:type up the class hierarchy.
    let mut uptyped: Vec<Triple> = Vec::new();
    for (&c, supers) in &class_up {
        graph.for_each_match(TriplePattern::new(None, Some(rdf_type), Some(c)), |t| {
            for &sup in supers {
                uptyped.push(Triple::new(t.s, rdf_type, sup));
            }
        });
    }
    added += graph.bulk_insert_ids(uptyped);

    added
}

/// For every node with at least one outgoing `edge_pred` edge, the set of all
/// nodes reachable through `edge_pred` (excluding trivial self-loops unless
/// asserted).
fn transitive_closure(graph: &Graph, edge_pred: TermId) -> FxHashMap<TermId, Vec<TermId>> {
    let mut direct: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    graph.for_each_match(TriplePattern::new(None, Some(edge_pred), None), |t| {
        direct.entry(t.s).or_default().push(t.o);
    });

    let mut closure: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    for &start in direct.keys() {
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        let mut stack: Vec<TermId> = direct[&start].clone();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                if let Some(next) = direct.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        let mut reach: Vec<TermId> = seen.into_iter().collect();
        reach.sort_unstable();
        closure.insert(start, reach);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_turtle;

    fn saturated(ttl: &str) -> Graph {
        let mut g = parse_turtle(ttl).unwrap();
        saturate(&mut g);
        g
    }

    #[test]
    fn subclass_transitivity_and_type_inheritance() {
        let g = saturated(
            "<Blogger> rdfs:subClassOf <Person> .\n\
             <Person> rdfs:subClassOf <Agent> .\n\
             <user1> rdf:type <Blogger> .\n",
        );
        assert!(g.contains(
            &Term::iri("Blogger"),
            &Term::iri(vocab::RDFS_SUBCLASSOF),
            &Term::iri("Agent")
        ));
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("Person")
        ));
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("Agent")
        ));
    }

    #[test]
    fn subproperty_propagation() {
        let g = saturated(
            "<wrotePost> rdfs:subPropertyOf <authored> .\n\
             <user1> <wrotePost> <post1> .\n",
        );
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri("authored"),
            &Term::iri("post1")
        ));
    }

    #[test]
    fn domain_and_range_typing() {
        let g = saturated(
            "<wrotePost> rdfs:domain <Blogger> .\n\
             <wrotePost> rdfs:range <BlogPost> .\n\
             <user1> <wrotePost> <post1> .\n",
        );
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("Blogger")
        ));
        assert!(g.contains(
            &Term::iri("post1"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("BlogPost")
        ));
    }

    #[test]
    fn stratified_interaction_subprop_then_domain_then_subclass() {
        // p ⊑ₚ q, q domain C, C ⊑ D, s p o ⇒ s type D.
        let g = saturated(
            "<p> rdfs:subPropertyOf <q> .\n\
             <q> rdfs:domain <C> .\n\
             <C> rdfs:subClassOf <D> .\n\
             <s> <p> <o> .\n",
        );
        assert!(g.contains(&Term::iri("s"), &Term::iri("q"), &Term::iri("o")));
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("C")
        ));
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("D")
        ));
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut g = parse_turtle(
            "<Blogger> rdfs:subClassOf <Person> .\n\
             <wrotePost> rdfs:domain <Blogger> .\n\
             <user1> <wrotePost> <post1> .\n",
        )
        .unwrap();
        let first = saturate(&mut g);
        assert!(first > 0);
        let len = g.len();
        let second = saturate(&mut g);
        assert_eq!(second, 0);
        assert_eq!(g.len(), len);
    }

    #[test]
    fn cycles_do_not_diverge() {
        // A ⊑ B ⊑ A — the closure must terminate and include both directions.
        let g = saturated(
            "<A> rdfs:subClassOf <B> .\n\
             <B> rdfs:subClassOf <A> .\n\
             <x> rdf:type <A> .\n",
        );
        assert!(g.contains(
            &Term::iri("x"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("B")
        ));
    }

    #[test]
    fn empty_graph_noop() {
        let mut g = Graph::new();
        assert_eq!(saturate(&mut g), 0);
    }
}
