//! A small Fx-style hasher for integer-dominated keys.
//!
//! The engine keys almost every map by dictionary-encoded [`crate::TermId`]s
//! (plain `u32`s) or short tuples of them. The standard library's SipHash is
//! collision-resistant but needlessly slow for that shape of key; the
//! `rustc-hash` crate is the usual remedy but is not available in this
//! environment, so we re-implement its ~30-line multiply-rotate scheme here
//! (the algorithm is public domain, originating in Firefox and rustc).
//!
//! Do **not** use these maps for attacker-controlled string keys in a
//! security-sensitive setting; dictionary ids and interned vocabulary are the
//! intended keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx scheme (a 64-bit "random odd
/// number", the same one rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply hasher; state is a single 64-bit word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash; the workhorse map of the whole workspace.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(42);
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_chunked_path() {
        // 13 bytes exercises the 8-, 4-, and 1-byte paths in one call.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let full = h.finish();
        assert_ne!(full, 0);
    }

    #[test]
    fn map_and_set_usable_with_term_like_keys() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
    }
}
