//! Subject-hash shards — the per-partition storage unit of [`Graph`].
//!
//! A [`Graph`] is a set of independent `Shard`s. Every triple belongs to
//! exactly one shard, chosen by hashing its **subject** (`shard_of_subject`),
//! so each shard is a complete, self-contained CSR triple store for its slice
//! of the data: its own SPO/POS/OSP sorted column sets, its own delta buffer
//! for incremental inserts, and its own merge threshold. Shards never
//! reference each other — the bulk loader builds them in parallel, and the
//! query engine evaluates BGP steps against them in parallel.
//!
//! Subject-hashing gives two structural guarantees the merge layers above
//! rely on:
//!
//! * any **subject-bound** probe touches exactly one shard (routing is a
//!   hash, not a search);
//! * for **subject-free** probes, a k-way merge of the per-shard sorted runs
//!   by the index's sort key reproduces the global sorted order with no ties
//!   across shards — equal subjects always share a shard.
//!
//! Delta entries carry a graph-global sequence number so cross-shard
//! enumeration can also reproduce the exact insertion order of a flat store.
//!
//! [`Graph`]: crate::graph::Graph

use crate::dictionary::TermId;
use crate::fx::FxHashSet;
use crate::triple::{Triple, TriplePattern};

/// Minimum delta size before an automatic merge is considered; below this
/// the linear delta scans are cheaper than re-merging the columns.
pub(crate) const DELTA_MERGE_MIN: usize = 1024;

/// Upper bound on a shard's delta regardless of its size: read probes sweep
/// the delta linearly, so letting it track `len / 4` unbounded would degrade
/// index lookups on incrementally-built giant graphs.
pub(crate) const DELTA_MERGE_MAX: usize = 65_536;

/// The shard owning subject `s` in an `n_shards`-way partitioning.
///
/// A Fibonacci multiplicative hash over the dense term id, taking the high
/// half before the modulo — the low bits of a multiplicative hash are poorly
/// mixed, and shard counts are not restricted to powers of two.
#[inline]
pub(crate) fn shard_of_subject(s: TermId, n_shards: usize) -> usize {
    if n_shards == 1 {
        return 0;
    }
    let h = u64::from(s.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % n_shards
}

/// One access-path index: triples sorted by a fixed component permutation,
/// stored as split columns under a CSR offset table over the first
/// component. The permutation itself is the caller's convention — this type
/// only sees `(first, second, third)` tuples.
#[derive(Debug, Default, Clone)]
pub(crate) struct CsrIndex {
    /// `offsets[a] .. offsets[a + 1]` is the row range whose first component
    /// is the term id `a`. Ids beyond the table (interned after the last
    /// rebuild) simply have no sorted rows.
    offsets: Vec<u32>,
    /// Second components, grouped by first component, sorted within a group.
    seconds: Vec<TermId>,
    /// Third components, sorted within each `(first, second)` run.
    thirds: Vec<TermId>,
}

impl CsrIndex {
    /// Number of rows (triples) in the sorted store.
    pub(crate) fn len(&self) -> usize {
        self.seconds.len()
    }

    /// The row range of first component `a`.
    fn group(&self, a: TermId) -> (usize, usize) {
        let i = a.index();
        if i + 1 >= self.offsets.len() {
            return (0, 0);
        }
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Number of rows with first component `a`.
    pub(crate) fn first_len(&self, a: TermId) -> usize {
        let (lo, hi) = self.group(a);
        hi - lo
    }

    /// The row range of the `(a, b)` pair, found by binary search within
    /// `a`'s group.
    pub(crate) fn pair_range(&self, a: TermId, b: TermId) -> (usize, usize) {
        let (lo, hi) = self.group(a);
        let run = &self.seconds[lo..hi];
        let from = lo + run.partition_point(|&x| x < b);
        let to = lo + run.partition_point(|&x| x <= b);
        (from, to)
    }

    /// The sorted third components of the `(a, b)` pair — a contiguous
    /// column slice.
    pub(crate) fn thirds_of_pair(&self, a: TermId, b: TermId) -> &[TermId] {
        let (from, to) = self.pair_range(a, b);
        &self.thirds[from..to]
    }

    /// True if the `(a, b, c)` tuple is present.
    pub(crate) fn contains(&self, a: TermId, b: TermId, c: TermId) -> bool {
        self.thirds_of_pair(a, b).binary_search(&c).is_ok()
    }

    /// `(second, third)` pairs of first component `a`, in sorted order.
    pub(crate) fn pairs_of_first(&self, a: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        let (lo, hi) = self.group(a);
        self.seconds[lo..hi]
            .iter()
            .copied()
            .zip(self.thirds[lo..hi].iter().copied())
    }

    /// All tuples in sorted order (first components reconstructed from the
    /// offset table).
    pub(crate) fn tuples(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |a| {
            let (lo, hi) = (self.offsets[a] as usize, self.offsets[a + 1] as usize);
            (lo..hi).map(move |i| (TermId(a as u32), self.seconds[i], self.thirds[i]))
        })
    }

    /// Number of distinct first components with at least one row.
    pub(crate) fn distinct_firsts(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// `(first, group size)` for every non-empty first component.
    pub(crate) fn first_group_sizes(&self) -> impl Iterator<Item = (TermId, usize)> + '_ {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] < w[1])
            .map(|(a, w)| (TermId(a as u32), (w[1] - w[0]) as usize))
    }

    /// Builds the CSR offset table (histogram + prefix sum over the first
    /// component) for `tuples`, covering ids `0..top`.
    fn build_offsets(tuples: &[(TermId, TermId, TermId)], top: usize) -> Vec<u32> {
        let mut offsets = vec![0u32; top + 1];
        for t in tuples {
            offsets[t.0.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        offsets
    }

    /// Replaces the store with `tuples`, which must be sorted and deduped.
    fn rebuild(&mut self, tuples: Vec<(TermId, TermId, TermId)>) {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]), "unsorted rebuild");
        let top = tuples.last().map_or(0, |t| t.0.index() + 1);
        self.offsets = Self::build_offsets(&tuples, top);
        self.seconds = tuples.iter().map(|t| t.1).collect();
        self.thirds = tuples.iter().map(|t| t.2).collect();
    }

    /// Replaces the store with `tuples`, which must be deduped but may be in
    /// any order. Classic CSR construction: a counting pass over the first
    /// component buckets the rows in O(n), then each (small) bucket is
    /// sorted by (second, third) — much cheaper than a global three-way
    /// sort, and the bulk loader's fast path for the two permutations whose
    /// order it does not already have.
    fn rebuild_grouped(&mut self, tuples: Vec<(TermId, TermId, TermId)>) {
        let top = tuples.iter().map(|t| t.0.index() + 1).max().unwrap_or(0);
        let offsets = Self::build_offsets(&tuples, top);
        let mut cursor = offsets.clone();
        let mut pairs: Vec<(TermId, TermId)> = vec![(TermId(0), TermId(0)); tuples.len()];
        for t in &tuples {
            let c = &mut cursor[t.0.index()];
            pairs[*c as usize] = (t.1, t.2);
            *c += 1;
        }
        drop(tuples);
        let mut start = 0usize;
        for a in 0..top {
            let end = offsets[a + 1] as usize;
            pairs[start..end].sort_unstable();
            start = end;
        }
        self.offsets = offsets;
        self.seconds = pairs.iter().map(|p| p.0).collect();
        self.thirds = pairs.iter().map(|p| p.1).collect();
    }

    /// Merges `add` (sorted, internally deduped) into the store, skipping
    /// tuples already present. Returns the number of tuples actually added.
    fn merge(&mut self, add: Vec<(TermId, TermId, TermId)>) -> usize {
        if add.is_empty() {
            return 0;
        }
        let old_len = self.len();
        if old_len == 0 {
            let added = add.len();
            self.rebuild(add);
            return added;
        }
        let mut merged = Vec::with_capacity(old_len + add.len());
        {
            let mut incoming = add.iter().copied().peekable();
            for old in self.tuples() {
                while let Some(&a) = incoming.peek() {
                    if a < old {
                        merged.push(a);
                        incoming.next();
                    } else if a == old {
                        incoming.next();
                    } else {
                        break;
                    }
                }
                merged.push(old);
            }
            merged.extend(incoming);
        }
        let added = merged.len() - old_len;
        self.rebuild(merged);
        added
    }
}

/// One subject-hash partition of a [`Graph`]: a complete CSR triple store
/// (SPO/POS/OSP) plus a delta buffer for the shard's incremental inserts.
///
/// Delta entries are stamped with a **graph-global** sequence number so that
/// cross-shard sweeps can replay the exact insertion order of a flat store.
///
/// [`Graph`]: crate::graph::Graph
#[derive(Debug, Default, Clone)]
pub(crate) struct Shard {
    /// Sorted as (s, p, o).
    pub(crate) spo: CsrIndex,
    /// Sorted as (p, o, s).
    pub(crate) pos: CsrIndex,
    /// Sorted as (o, s, p).
    pub(crate) osp: CsrIndex,
    /// Recent incremental inserts not yet merged, in insertion order, each
    /// stamped with the graph-global insertion sequence number.
    pub(crate) delta: Vec<(u64, Triple)>,
    /// The delta's triples again, for O(1) duplicate checks.
    pub(crate) delta_set: FxHashSet<Triple>,
    len: usize,
}

impl Shard {
    /// Number of triples in the shard (sorted runs + delta).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of triples sitting in the shard's delta buffer.
    pub(crate) fn pending_delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Delta size at which this shard's automatic merge fires. Proportional
    /// to the shard so incremental building stays amortized-cheap, but
    /// capped so read probes (which sweep the delta linearly) never pay more
    /// than a bounded scan on top of their index lookups.
    pub(crate) fn delta_threshold(&self) -> usize {
        DELTA_MERGE_MIN.max((self.spo.len() / 4).min(DELTA_MERGE_MAX))
    }

    /// True if the encoded triple is present in this shard.
    pub(crate) fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(s, p, o) || self.delta_set.contains(&Triple::new(s, p, o))
    }

    /// Inserts one triple into the shard's delta buffer under the given
    /// graph-global sequence number; returns `true` if it was new. The
    /// buffer auto-merges into the CSR runs once it crosses the shard's
    /// threshold.
    pub(crate) fn insert(&mut self, seq: u64, t: Triple) -> bool {
        if self.spo.contains(t.s, t.p, t.o) || self.delta_set.contains(&t) {
            return false;
        }
        self.delta.push((seq, t));
        self.delta_set.insert(t);
        self.len += 1;
        if self.delta.len() >= self.delta_threshold() {
            self.merge_batch(Vec::new());
        }
        true
    }

    /// Folds the shard's delta plus `batch` into the sorted CSR runs
    /// unconditionally. Returns the number of newly added triples. Because a
    /// duplicate triple shares its subject — and therefore its shard — with
    /// the original, shard-local dedup here is also global dedup.
    pub(crate) fn merge_batch(&mut self, batch: Vec<Triple>) -> usize {
        let before = self.len;
        let mut spo_add: Vec<(TermId, TermId, TermId)> = self
            .delta
            .iter()
            .map(|&(_, t)| t)
            .chain(batch.iter().copied())
            .map(|t| (t.s, t.p, t.o))
            .collect();
        drop(batch);
        self.delta.clear();
        self.delta_set.clear();
        if spo_add.is_empty() {
            return 0;
        }
        spo_add.sort_unstable();
        spo_add.dedup();
        // One sort + dedup covers all three permutations (a duplicate triple
        // is a duplicate in every component order). The permuted batches
        // therefore only need ordering, not dedup: when the shard is empty
        // they go through the O(n) counting-scatter construction, and only
        // merges into a non-empty shard pay for full permuted sorts.
        let pos_add: Vec<(TermId, TermId, TermId)> =
            spo_add.iter().map(|&(s, p, o)| (p, o, s)).collect();
        let osp_add: Vec<(TermId, TermId, TermId)> =
            spo_add.iter().map(|&(s, p, o)| (o, s, p)).collect();
        if self.spo.len() == 0 {
            self.pos.rebuild_grouped(pos_add);
            self.osp.rebuild_grouped(osp_add);
            self.spo.rebuild(spo_add);
        } else {
            self.spo.merge(spo_add);
            let mut pos_add = pos_add;
            pos_add.sort_unstable();
            self.pos.merge(pos_add);
            let mut osp_add = osp_add;
            osp_add.sort_unstable();
            self.osp.merge(osp_add);
        }
        self.len = self.spo.len();
        self.len - before
    }

    /// Calls `f` for every shard-local triple matching `pattern`: the sorted
    /// run in index order first, then the shard's delta in insertion order.
    /// For a single-shard graph this is exactly the flat store's enumeration
    /// order.
    pub(crate) fn for_each_match_local<F: FnMut(Triple)>(&self, pattern: TriplePattern, f: &mut F) {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                // contains_ids covers the delta; return before the delta
                // sweep below to avoid double-firing.
                if self.contains_ids(s, p, o) {
                    f(Triple::new(s, p, o));
                }
                return;
            }
            (Some(s), Some(p), None) => {
                for &o in self.spo.thirds_of_pair(s, p) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, Some(p), Some(o)) => {
                for &s in self.pos.thirds_of_pair(p, o) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), None, Some(o)) => {
                for &p in self.osp.thirds_of_pair(o, s) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), None, None) => {
                for (p, o) in self.spo.pairs_of_first(s) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, Some(p), None) => {
                for (o, s) in self.pos.pairs_of_first(p) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, None, Some(o)) => {
                for (s, p) in self.osp.pairs_of_first(o) {
                    f(Triple::new(s, p, o));
                }
            }
            (None, None, None) => {
                for (s, p, o) in self.spo.tuples() {
                    f(Triple::new(s, p, o));
                }
            }
        }
        for &(_, t) in &self.delta {
            if pattern.matches(&t) {
                f(t);
            }
        }
    }

    /// Exact number of shard-local triples matching `pattern`, from the CSR
    /// offset/run metadata plus a sweep of the bounded delta buffer — no
    /// shape falls back to a full scan, and nothing is materialized.
    pub(crate) fn count_matching_local(&self, pattern: TriplePattern) -> usize {
        let sorted = match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(s, p, o)),
            (Some(s), Some(p), None) => {
                let (from, to) = self.spo.pair_range(s, p);
                to - from
            }
            (None, Some(p), Some(o)) => {
                let (from, to) = self.pos.pair_range(p, o);
                to - from
            }
            (Some(s), None, Some(o)) => {
                let (from, to) = self.osp.pair_range(o, s);
                to - from
            }
            (Some(s), None, None) => self.spo.first_len(s),
            (None, Some(p), None) => self.pos.first_len(p),
            (None, None, Some(o)) => self.osp.first_len(o),
            (None, None, None) => return self.len,
        };
        if self.delta.is_empty() {
            sorted
        } else {
            sorted
                + self
                    .delta
                    .iter()
                    .filter(|(_, t)| pattern.matches(t))
                    .count()
        }
    }

    /// Number of distinct subjects in this shard (sorted runs + delta).
    /// Subjects never cross shards, so the graph-level count is the plain
    /// sum of these.
    pub(crate) fn distinct_subjects(&self) -> usize {
        distinct_with_delta(&self.spo, &self.delta, |t| t.s)
    }
}

/// Distinct first components of `idx`, counting delta extras not yet in the
/// sorted runs.
pub(crate) fn distinct_with_delta(
    idx: &CsrIndex,
    delta: &[(u64, Triple)],
    key: impl Fn(&Triple) -> TermId,
) -> usize {
    let base = idx.distinct_firsts();
    if delta.is_empty() {
        return base;
    }
    let mut extra: FxHashSet<TermId> = FxHashSet::default();
    for (_, t) in delta {
        let k = key(t);
        if idx.first_len(k) == 0 {
            extra.insert(k);
        }
    }
    base + extra.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in [1usize, 2, 7, 16] {
            for id in 0..1000u32 {
                let w = shard_of_subject(TermId(id), n);
                assert!(w < n);
                assert_eq!(w, shard_of_subject(TermId(id), n), "routing must be pure");
            }
        }
        // One shard routes everything to slot 0 without hashing.
        assert_eq!(shard_of_subject(TermId(u32::MAX), 1), 0);
    }

    #[test]
    fn routing_spreads_subjects_across_shards() {
        // Dense sequential ids (the dictionary's allocation pattern) must
        // not collapse onto few shards.
        for n in [2usize, 7, 16] {
            let mut hist = vec![0usize; n];
            for id in 0..10_000u32 {
                hist[shard_of_subject(TermId(id), n)] += 1;
            }
            let (min, max) = (
                hist.iter().min().copied().unwrap(),
                hist.iter().max().copied().unwrap(),
            );
            assert!(
                min * 2 > max,
                "unbalanced {n}-way split of sequential ids: {hist:?}"
            );
        }
    }
}
