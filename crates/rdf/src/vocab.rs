//! Well-known RDF, RDFS and XSD vocabulary IRIs.
//!
//! Only the handful of IRIs the framework actually interprets are listed:
//! `rdf:type` (class membership in analytical schema instances) and the four
//! RDFS properties the saturation rules of [`crate::reasoner`] implement.

/// `rdf:type` — asserts class membership.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:subClassOf`.
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// `rdfs:subPropertyOf`.
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

/// `rdfs:domain`.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";

/// `rdfs:range`.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";

/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// `xsd:decimal`.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";

/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

/// Namespace prefixes pre-registered by the Turtle parser and the query
/// parser: `(prefix, namespace)`.
pub const DEFAULT_PREFIXES: &[(&str, &str)] = &[
    ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
    ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
    ("xsd", "http://www.w3.org/2001/XMLSchema#"),
];

/// Expands a `prefix:local` pair against [`DEFAULT_PREFIXES`].
pub fn expand_default(prefix: &str, local: &str) -> Option<String> {
    DEFAULT_PREFIXES
        .iter()
        .find(|(p, _)| *p == prefix)
        .map(|(_, ns)| format!("{ns}{local}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdf_type_expands() {
        assert_eq!(expand_default("rdf", "type").as_deref(), Some(RDF_TYPE));
    }

    #[test]
    fn unknown_prefix_is_none() {
        assert_eq!(expand_default("ex", "thing"), None);
    }

    #[test]
    fn rdfs_constants_are_in_rdfs_namespace() {
        for iri in [RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE] {
            assert!(iri.starts_with("http://www.w3.org/2000/01/rdf-schema#"));
        }
    }
}
