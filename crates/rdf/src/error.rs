//! Error types for the RDF substrate.

use std::fmt;

/// An error raised while parsing an RDF serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// 1-based column of the offending input.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 14, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
