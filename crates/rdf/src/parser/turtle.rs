//! Grammar engine for the Turtle subset and strict N-Triples.

use super::lexer::{tokenize, Spanned, Token};
use crate::error::ParseError;
use crate::fx::FxHashMap;
use crate::graph::Graph;
use crate::term::{Literal, Term};
use crate::triple::Triple;
use crate::vocab;

/// Parses strict N-Triples into a fresh graph.
pub fn parse_ntriples(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    Parser::new(input, Mode::NTriples)?.run(&mut graph)?;
    Ok(graph)
}

/// Parses the Turtle subset into a fresh graph.
pub fn parse_turtle(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    Parser::new(input, Mode::Turtle)?.run(&mut graph)?;
    Ok(graph)
}

/// Parses the Turtle subset, adding triples to an existing graph.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), ParseError> {
    Parser::new(input, Mode::Turtle)?.run(graph)
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    NTriples,
    Turtle,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    mode: Mode,
    prefixes: FxHashMap<String, String>,
    anon_counter: usize,
}

impl Parser {
    fn new(input: &str, mode: Mode) -> Result<Self, ParseError> {
        let tokens = tokenize(input)?;
        let mut prefixes = FxHashMap::default();
        if mode == Mode::Turtle {
            for (p, ns) in vocab::DEFAULT_PREFIXES {
                prefixes.insert((*p).to_string(), (*ns).to_string());
            }
        }
        Ok(Parser {
            tokens,
            pos: 0,
            mode,
            prefixes,
            anon_counter: 0,
        })
    }

    /// A fresh blank node for an anonymous `[...]`; the `genid` prefix is
    /// reserved (user labels with it are still distinct thanks to the
    /// counter suffix being appended after a dot-free marker).
    fn fresh_blank(&mut self) -> Term {
        let label = format!("genid-{}", self.anon_counter);
        self.anon_counter += 1;
        Term::blank(label)
    }

    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        match self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
        {
            Some(s) => ParseError::new(s.line, s.column, msg),
            None => ParseError::new(0, 0, msg),
        }
    }

    fn expect_dot(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Some(Spanned {
                token: Token::Dot, ..
            }) => Ok(()),
            _ => Err(self.error_here("expected '.'")),
        }
    }

    /// Parses the whole input, staging encoded triples and handing the
    /// complete batch to the graph's bulk loader in one call (one sort +
    /// dedup per index instead of per-triple maintenance). On error nothing
    /// is inserted; only dictionary interning has happened.
    fn run(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        let mut staged: Vec<Triple> = Vec::new();
        self.statements(graph, &mut staged)?;
        graph.bulk_insert_ids(staged);
        Ok(())
    }

    fn statements(
        &mut self,
        graph: &mut Graph,
        staged: &mut Vec<Triple>,
    ) -> Result<(), ParseError> {
        while let Some(spanned) = self.peek() {
            match &spanned.token {
                Token::At(word) if word == "prefix" => {
                    if self.mode == Mode::NTriples {
                        return Err(self.error_here("@prefix is not allowed in N-Triples"));
                    }
                    self.bump();
                    self.directive(true)?;
                }
                Token::Keyword(word) if word.eq_ignore_ascii_case("prefix") => {
                    if self.mode == Mode::NTriples {
                        return Err(self.error_here("PREFIX is not allowed in N-Triples"));
                    }
                    self.bump();
                    self.directive(false)?;
                }
                _ => self.triples(graph, staged)?,
            }
        }
        Ok(())
    }

    /// `@prefix p: <ns> .`  (with_dot)  or SPARQL-style `PREFIX p: <ns>`.
    fn directive(&mut self, with_dot: bool) -> Result<(), ParseError> {
        let prefix = match self.bump() {
            Some(Spanned {
                token: Token::PrefixedName { prefix, local },
                ..
            }) if local.is_empty() => prefix,
            _ => return Err(self.error_here("expected 'prefix:' in @prefix directive")),
        };
        let ns = match self.bump() {
            Some(Spanned {
                token: Token::Iri(ns),
                ..
            }) => ns,
            _ => return Err(self.error_here("expected namespace IRI in @prefix directive")),
        };
        if with_dot {
            self.expect_dot()?;
        }
        self.prefixes.insert(prefix, ns);
        Ok(())
    }

    fn triples(&mut self, graph: &mut Graph, staged: &mut Vec<Triple>) -> Result<(), ParseError> {
        let subject = self.subject(graph, staged)?;
        loop {
            let predicate = self.predicate()?;
            loop {
                let object = self.object(graph, staged)?;
                stage(graph, staged, &subject, &predicate, &object);
                match self.peek().map(|s| &s.token) {
                    Some(Token::Comma) if self.mode == Mode::Turtle => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek().map(|s| &s.token) {
                Some(Token::Semicolon) if self.mode == Mode::Turtle => {
                    self.bump();
                    // A dangling semicolon before '.' is legal Turtle.
                    if matches!(self.peek().map(|s| &s.token), Some(Token::Dot)) {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.expect_dot()
    }

    fn subject(&mut self, graph: &mut Graph, staged: &mut Vec<Triple>) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Spanned {
                token: Token::Iri(iri),
                ..
            }) => Ok(Term::iri(iri)),
            Some(Spanned {
                token: Token::BlankNode(label),
                ..
            }) => Ok(Term::blank(label)),
            Some(Spanned {
                token: Token::PrefixedName { prefix, local },
                line,
                column,
            }) if self.mode == Mode::Turtle => {
                self.expand(&prefix, &local, line, column).map(Term::iri)
            }
            Some(Spanned {
                token: Token::LBracket,
                ..
            }) if self.mode == Mode::Turtle => self.blank_property_list(graph, staged),
            _ => Err(self.error_here("expected subject (IRI or blank node)")),
        }
    }

    /// Parses `[ predicateObjectList ]` (the opening bracket is already
    /// consumed), asserting the inner triples and returning the fresh node.
    /// An empty `[]` is a plain anonymous node.
    fn blank_property_list(
        &mut self,
        graph: &mut Graph,
        staged: &mut Vec<Triple>,
    ) -> Result<Term, ParseError> {
        let node = self.fresh_blank();
        if matches!(self.peek().map(|s| &s.token), Some(Token::RBracket)) {
            self.bump();
            return Ok(node);
        }
        loop {
            let predicate = self.predicate()?;
            loop {
                let object = self.object(graph, staged)?;
                stage(graph, staged, &node, &predicate, &object);
                match self.peek().map(|s| &s.token) {
                    Some(Token::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek().map(|s| &s.token) {
                Some(Token::Semicolon) => {
                    self.bump();
                    if matches!(self.peek().map(|s| &s.token), Some(Token::RBracket)) {
                        break;
                    }
                }
                _ => break,
            }
        }
        match self.bump() {
            Some(Spanned {
                token: Token::RBracket,
                ..
            }) => Ok(node),
            _ => Err(self.error_here("expected ']' closing a blank node property list")),
        }
    }

    fn predicate(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Spanned {
                token: Token::Iri(iri),
                ..
            }) => Ok(Term::iri(iri)),
            Some(Spanned {
                token: Token::Keyword(word),
                ..
            }) if self.mode == Mode::Turtle && word == "a" => Ok(Term::iri(vocab::RDF_TYPE)),
            Some(Spanned {
                token: Token::PrefixedName { prefix, local },
                line,
                column,
            }) if self.mode == Mode::Turtle => {
                self.expand(&prefix, &local, line, column).map(Term::iri)
            }
            _ => Err(self.error_here("expected predicate IRI")),
        }
    }

    fn object(&mut self, graph: &mut Graph, staged: &mut Vec<Triple>) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Spanned {
                token: Token::Iri(iri),
                ..
            }) => Ok(Term::iri(iri)),
            Some(Spanned {
                token: Token::BlankNode(label),
                ..
            }) => Ok(Term::blank(label)),
            Some(Spanned {
                token: Token::PrefixedName { prefix, local },
                line,
                column,
            }) if self.mode == Mode::Turtle => {
                self.expand(&prefix, &local, line, column).map(Term::iri)
            }
            Some(Spanned {
                token: Token::LBracket,
                ..
            }) if self.mode == Mode::Turtle => self.blank_property_list(graph, staged),
            Some(Spanned {
                token: Token::StringLiteral(body),
                ..
            }) => match self.peek().map(|s| &s.token) {
                Some(Token::At(_)) => {
                    let Some(Spanned {
                        token: Token::At(tag),
                        ..
                    }) = self.bump()
                    else {
                        unreachable!("peeked At");
                    };
                    Ok(Term::Literal(Literal::lang(body, tag)))
                }
                Some(Token::Carets) => {
                    self.bump();
                    let dt = match self.bump() {
                        Some(Spanned {
                            token: Token::Iri(iri),
                            ..
                        }) => iri,
                        Some(Spanned {
                            token: Token::PrefixedName { prefix, local },
                            line,
                            column,
                        }) if self.mode == Mode::Turtle => {
                            self.expand(&prefix, &local, line, column)?
                        }
                        _ => return Err(self.error_here("expected datatype IRI after '^^'")),
                    };
                    Ok(Term::Literal(Literal::typed(body, dt)))
                }
                _ => Ok(Term::Literal(Literal::plain(body))),
            },
            Some(Spanned {
                token: Token::Numeric(n),
                line,
                column,
            }) => {
                if self.mode == Mode::NTriples {
                    return Err(ParseError::new(
                        line,
                        column,
                        "bare numeric literals are not allowed in N-Triples",
                    ));
                }
                if n.contains(['.', 'e', 'E']) {
                    Ok(Term::Literal(Literal::typed(n, vocab::XSD_DECIMAL)))
                } else {
                    Ok(Term::Literal(Literal::typed(n, vocab::XSD_INTEGER)))
                }
            }
            Some(Spanned {
                token: Token::Keyword(word),
                ..
            }) if self.mode == Mode::Turtle && (word == "true" || word == "false") => {
                Ok(Term::Literal(Literal::typed(word, vocab::XSD_BOOLEAN)))
            }
            _ => Err(self.error_here("expected object (IRI, blank node or literal)")),
        }
    }

    fn expand(
        &self,
        prefix: &str,
        local: &str,
        line: usize,
        column: usize,
    ) -> Result<String, ParseError> {
        self.prefixes
            .get(prefix)
            .map(|ns| format!("{ns}{local}"))
            .ok_or_else(|| ParseError::new(line, column, format!("unknown prefix '{prefix}:'")))
    }
}

/// Interns the three terms and stages the encoded triple for the one-shot
/// bulk insertion at the end of the parse.
fn stage(graph: &mut Graph, staged: &mut Vec<Triple>, s: &Term, p: &Term, o: &Term) {
    let t = Triple::new(graph.encode(s), graph.encode(p), graph.encode(o));
    staged.push(t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TriplePattern;

    #[test]
    fn ntriples_basic() {
        let g = parse_ntriples(
            "<user1> <hasAge> \"28\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
             <user1> <livesIn> \"Madrid\" .\n\
             _:b0 <knows> <user1> .\n",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
        assert!(g.contains(&Term::blank("b0"), &Term::iri("knows"), &Term::iri("user1")));
    }

    #[test]
    fn ntriples_rejects_turtle_sugar() {
        assert!(parse_ntriples("@prefix ex: <http://e/> .").is_err());
        assert!(parse_ntriples("<a> <p> 28 .").is_err());
        assert!(parse_ntriples("ex:a <p> <o> .").is_err());
    }

    #[test]
    fn turtle_prefixes_and_a_keyword() {
        let g = parse_turtle(
            "@prefix ex: <http://example.org/> .\n\
             ex:user1 a ex:Blogger ;\n\
                ex:hasAge 28 ;\n\
                ex:livesIn \"Madrid\", \"Kyoto\" .\n",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.contains(
            &Term::iri("http://example.org/user1"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("http://example.org/Blogger")
        ));
        assert!(g.contains(
            &Term::iri("http://example.org/user1"),
            &Term::iri("http://example.org/livesIn"),
            &Term::literal("Kyoto")
        ));
    }

    #[test]
    fn turtle_default_rdf_prefix_is_preloaded() {
        let g = parse_turtle("<x> rdf:type <C> .").unwrap();
        assert!(g.contains(
            &Term::iri("x"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("C")
        ));
    }

    #[test]
    fn sparql_style_prefix() {
        let g = parse_turtle("PREFIX ex: <http://e/>\nex:s ex:p ex:o .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn numeric_literal_datatypes() {
        let g = parse_turtle("<s> <p> 28 . <s> <q> 3.5 . <s> <r> true .").unwrap();
        assert!(g.contains(&Term::iri("s"), &Term::iri("p"), &Term::integer(28)));
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri("q"),
            &Term::Literal(Literal::typed("3.5", vocab::XSD_DECIMAL))
        ));
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri("r"),
            &Term::Literal(Literal::boolean(true))
        ));
    }

    #[test]
    fn language_tags_and_datatyped_strings() {
        let g = parse_turtle("<s> <p> \"Bill\"@en . <s> <p> \"28\"^^xsd:integer .").unwrap();
        assert!(g.contains(
            &Term::iri("s"),
            &Term::iri("p"),
            &Term::Literal(Literal::lang("Bill", "en"))
        ));
        assert!(g.contains(&Term::iri("s"), &Term::iri("p"), &Term::integer(28)));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_turtle("nope:s <p> <o> .").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(parse_turtle("<s> <p> <o>").is_err());
    }

    #[test]
    fn dangling_semicolon_is_legal() {
        let g = parse_turtle("<s> <p> <o> ; .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_into_accumulates() {
        let mut g = parse_turtle("<s> <p> <o> .").unwrap();
        parse_into("<s2> <p> <o> .", &mut g).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn duplicate_triples_collapse() {
        let g = parse_turtle("<s> <p> <o> . <s> <p> <o> .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn anonymous_blank_node_objects() {
        // user1 has an address node with two properties.
        let g = parse_turtle("<user1> <address> [ <street> \"Main St\" ; <city> \"Madrid\" ] .")
            .unwrap();
        assert_eq!(g.len(), 3);
        let addr = g.matching(crate::triple::TriplePattern::new(
            g.dict().iri_id("user1"),
            g.dict().iri_id("address"),
            None,
        ))[0]
            .o;
        assert!(g.dict().term(addr).is_blank());
        let street = g.dict().iri_id("street").unwrap();
        assert_eq!(g.objects(addr, street).count(), 1);
    }

    #[test]
    fn anonymous_blank_node_subject_and_nesting() {
        let g = parse_turtle(
            "[ <p> <a> ] <q> <b> .\n\
             <x> <r> [ <s> [ <t> 1 ] ] .",
        )
        .unwrap();
        // [p a], [q b] on one node (2) + x→r→anon→s→anon→t→1 chain (3).
        assert_eq!(g.len(), 5);
        // Distinct [..] occurrences yield distinct nodes.
        let blanks: std::collections::HashSet<_> = g
            .triples()
            .flat_map(|t| [t.s, t.o])
            .filter(|&id| g.dict().term(id).is_blank())
            .collect();
        assert_eq!(blanks.len(), 3);
    }

    #[test]
    fn empty_anonymous_node_and_object_lists() {
        let g = parse_turtle("<x> <knows> [], [ <name> \"B\" ] .").unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn unterminated_bracket_is_an_error() {
        assert!(parse_turtle("<x> <p> [ <q> <y> .").is_err());
        assert!(parse_ntriples("<x> <p> [ <q> <y> ] .").is_err());
    }

    #[test]
    fn full_scan_matches_inserted_data() {
        let g = parse_turtle("<s> <p> <o1>, <o2>, <o3> .").unwrap();
        assert_eq!(g.matching(TriplePattern::default()).len(), 3);
    }
}
