//! Tokenizer shared by the N-Triples and Turtle parsers.

use crate::error::ParseError;

/// A lexical token of the Turtle/N-Triples grammar subset we support.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<iri>`
    Iri(String),
    /// `prefix:local` (prefix may be empty: `:local`)
    PrefixedName {
        /// The prefix part (before the colon).
        prefix: String,
        /// The local part (after the colon).
        local: String,
    },
    /// A bare name such as `a` (only legal in Turtle, where `a` = rdf:type)
    Keyword(String),
    /// `_:label`
    BlankNode(String),
    /// String literal body (unescaped), without language/datatype suffix.
    StringLiteral(String),
    /// `@tag` — language tag or `@prefix` directive marker.
    At(String),
    /// `^^` datatype marker.
    Carets,
    /// Bare numeric token, e.g. `28`, `-3.5`, `1e6`.
    Numeric(String),
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `[` — opens an anonymous blank node property list (Turtle only).
    LBracket,
    /// `]`
    RBracket,
}

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// Streaming tokenizer over the input text.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, msg)
    }

    fn skip_ws_and_comments(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '#' {
                while let Some(c) = self.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Spanned>, ParseError> {
        self.skip_ws_and_comments();
        let (line, column) = (self.line, self.column);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let token = match c {
            '<' => {
                self.bump();
                let mut iri = String::new();
                loop {
                    match self.bump() {
                        Some('>') => break,
                        Some('\n') => return Err(self.error("newline inside IRI")),
                        Some(ch) => iri.push(ch),
                        None => return Err(self.error("unterminated IRI")),
                    }
                }
                Token::Iri(iri)
            }
            '_' => {
                self.bump();
                if self.bump() != Some(':') {
                    return Err(self.error("expected ':' after '_' in blank node"));
                }
                let label = self.take_name();
                if label.is_empty() {
                    return Err(self.error("blank node label must not be empty"));
                }
                Token::BlankNode(label)
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('u') => s.push(self.unicode_escape(4)?),
                            Some('U') => s.push(self.unicode_escape(8)?),
                            Some(other) => {
                                return Err(self.error(format!("bad escape '\\{other}'")))
                            }
                            None => return Err(self.error("unterminated string escape")),
                        },
                        Some(ch) => s.push(ch),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Token::StringLiteral(s)
            }
            '@' => {
                self.bump();
                let word = self.take_name();
                if word.is_empty() {
                    return Err(self.error("expected a word after '@'"));
                }
                Token::At(word)
            }
            '^' => {
                self.bump();
                if self.bump() != Some('^') {
                    return Err(self.error("expected '^^'"));
                }
                Token::Carets
            }
            '.' => {
                self.bump();
                Token::Dot
            }
            ';' => {
                self.bump();
                Token::Semicolon
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            '[' => {
                self.bump();
                Token::LBracket
            }
            ']' => {
                self.bump();
                Token::RBracket
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut n = String::new();
                while let Some(ch) = self.peek() {
                    if ch.is_ascii_digit()
                        || ch == '.'
                        || ch == '-'
                        || ch == '+'
                        || ch == 'e'
                        || ch == 'E'
                    {
                        // A '.' followed by non-digit is the statement dot.
                        if ch == '.' {
                            let mut look = self.chars.clone();
                            look.next();
                            if !look.peek().is_some_and(|d| d.is_ascii_digit()) {
                                break;
                            }
                        }
                        n.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if n.is_empty() {
                    return Err(self.error("expected number"));
                }
                Token::Numeric(n)
            }
            c if is_name_start(c) => {
                let name = self.take_name();
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.take_name();
                    Token::PrefixedName {
                        prefix: name,
                        local,
                    }
                } else {
                    Token::Keyword(name)
                }
            }
            ':' => {
                self.bump();
                let local = self.take_name();
                Token::PrefixedName {
                    prefix: String::new(),
                    local,
                }
            }
            other => return Err(self.error(format!("unexpected character '{other}'"))),
        };
        Ok(Some(Spanned {
            token,
            line,
            column,
        }))
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, ParseError> {
        let mut code = 0u32;
        for _ in 0..digits {
            let Some(c) = self.bump() else {
                return Err(self.error("unterminated unicode escape"));
            };
            let Some(d) = c.to_digit(16) else {
                return Err(self.error("non-hex digit in unicode escape"));
            };
            code = code * 16 + d;
        }
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode code point"))
    }

    fn take_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenizes the whole input eagerly.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn iris_blanks_and_dots() {
        assert_eq!(
            toks("<http://a> <p> _:b0 ."),
            vec![
                Token::Iri("http://a".into()),
                Token::Iri("p".into()),
                Token::BlankNode("b0".into()),
                Token::Dot
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            toks(r#""he said \"hi\"\n""#),
            vec![Token::StringLiteral("he said \"hi\"\n".into())]
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(toks(r#""é""#), vec![Token::StringLiteral("é".into())]);
    }

    #[test]
    fn control_character_escapes_round_trip() {
        // The writer emits \uXXXX for unnamed C0 controls and DEL
        // (see `term::escape_literal`); the lexer must take them back.
        assert_eq!(
            toks(r#""a\u0000b\u0001c\u001Fd\u007Fe""#),
            vec![Token::StringLiteral("a\u{0}b\u{1}c\u{1F}d\u{7F}e".into())]
        );
        // Lowercase hex digits and long-form \U are accepted too.
        assert_eq!(
            toks(r#""\u001f\U0000007F""#),
            vec![Token::StringLiteral("\u{1F}\u{7F}".into())]
        );
    }

    #[test]
    fn language_and_datatype_markers() {
        assert_eq!(
            toks(r#""x"@en "#),
            vec![Token::StringLiteral("x".into()), Token::At("en".into())]
        );
        assert_eq!(
            toks(r#""28"^^<int>"#),
            vec![
                Token::StringLiteral("28".into()),
                Token::Carets,
                Token::Iri("int".into())
            ]
        );
    }

    #[test]
    fn numbers_vs_statement_dot() {
        assert_eq!(toks("28 ."), vec![Token::Numeric("28".into()), Token::Dot]);
        assert_eq!(
            toks("3.5 ."),
            vec![Token::Numeric("3.5".into()), Token::Dot]
        );
        // `28.` — the dot terminates the statement, not the number.
        assert_eq!(toks("28."), vec![Token::Numeric("28".into()), Token::Dot]);
    }

    #[test]
    fn prefixed_names_and_keywords() {
        assert_eq!(
            toks("rdf:type a foaf:Person"),
            vec![
                Token::PrefixedName {
                    prefix: "rdf".into(),
                    local: "type".into()
                },
                Token::Keyword("a".into()),
                Token::PrefixedName {
                    prefix: "foaf".into(),
                    local: "Person".into()
                },
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("# header\n<a> # trailing\n<b>"),
            vec![Token::Iri("a".into()), Token::Iri("b".into())]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = tokenize("<a>\n  <unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unterminated IRI"));
    }

    #[test]
    fn punctuation() {
        assert_eq!(toks("; ,"), vec![Token::Semicolon, Token::Comma]);
    }
}
