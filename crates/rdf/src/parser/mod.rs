//! Parsers for RDF serializations.
//!
//! Two entry points, sharing one tokenizer and one grammar engine:
//!
//! * [`parse_ntriples`] — strict triple-per-line form: IRIs, blank nodes and
//!   literals only; no prefixes, no abbreviations.
//! * [`parse_turtle`] — a practical Turtle subset: `@prefix`/`PREFIX`
//!   directives, prefixed names, the `a` keyword, `;`/`,` predicate and
//!   object lists, bare numeric and boolean literals. (Collections `(...)`
//!   and anonymous blank nodes `[...]` are not needed by any workload in
//!   this repository and are rejected with a clear error.)

pub mod lexer;
mod turtle;

pub use turtle::{parse_into, parse_ntriples, parse_turtle};
