//! # rdfcube-rdf — the RDF substrate
//!
//! A from-scratch, in-memory RDF store supporting the analytics stack of this
//! workspace:
//!
//! * [`term`] / [`dictionary`] — RDF 1.1 terms, interned to dense `u32`
//!   [`TermId`]s so every downstream operator works on integers;
//! * [`graph`] / [`shard`] — an append-only columnar triple store,
//!   hash-partitioned by subject into independent CSR shards (one by
//!   default): per-shard sorted SPO/POS/OSP column sets under CSR offset
//!   tables, a bulk loader for scatter-then-sort-once construction (parallel
//!   across shards), and per-shard delta buffers keeping incremental inserts
//!   cheap — all eight triple-pattern shapes are index-backed, and reads are
//!   bit-identical at any shard count;
//! * [`parser`] / [`writer`] — N-Triples and a practical Turtle subset, plus
//!   deterministic N-Triples output;
//! * [`reasoner`] — RDFS (ρdf) saturation, required by the analytical-schema
//!   framework which operates over entailed graphs;
//! * [`fx`] — the Fx-style hasher used by every map in the workspace.
//!
//! ## Quick example
//!
//! ```
//! use rdfcube_rdf::{parse_turtle, saturate, Term, vocab};
//!
//! let mut g = parse_turtle(
//!     "<Blogger> rdfs:subClassOf <Person> .
//!      <user1> rdf:type <Blogger> ; <hasAge> 28 .",
//! ).unwrap();
//! saturate(&mut g);
//! assert!(g.contains(
//!     &Term::iri("user1"),
//!     &Term::iri(vocab::RDF_TYPE),
//!     &Term::iri("Person"),
//! ));
//! ```

#![warn(missing_docs)]

pub mod dictionary;
pub mod error;
pub mod fx;
pub mod graph;
pub mod parser;
pub mod reasoner;
pub mod shard;
pub mod term;
pub mod triple;
pub mod vocab;
pub mod writer;

pub use dictionary::{Dictionary, TermId};
pub use error::ParseError;
pub use graph::{Graph, ShardedGraph};
pub use parser::{parse_into, parse_ntriples, parse_turtle};
pub use reasoner::saturate;
pub use term::{Literal, LiteralKind, Term};
pub use triple::{Triple, TriplePattern};
pub use writer::to_ntriples;
