//! Encoded triples and triple patterns.

use crate::dictionary::TermId;

/// A dictionary-encoded RDF triple `(subject, predicate, object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

impl Triple {
    /// Builds a triple from its three components.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }

    /// The triple as an `[s, p, o]` array.
    #[inline]
    pub fn as_array(&self) -> [TermId; 3] {
        [self.s, self.p, self.o]
    }
}

impl From<[TermId; 3]> for Triple {
    #[inline]
    fn from([s, p, o]: [TermId; 3]) -> Self {
        Triple { s, p, o }
    }
}

/// A triple-level access pattern: each position is either bound to a term id
/// or a wildcard. This is the store-facing form; variable names live one
/// level up, in the query engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TriplePattern {
    /// Bound subject, or `None` for a wildcard.
    pub s: Option<TermId>,
    /// Bound predicate, or `None` for a wildcard.
    pub p: Option<TermId>,
    /// Bound object, or `None` for a wildcard.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// Builds a pattern from optional components.
    #[inline]
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        TriplePattern { s, p, o }
    }

    /// True if `t` matches this pattern.
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3); a crude selectivity proxy.
    #[inline]
    pub fn bound_count(&self) -> u8 {
        self.s.is_some() as u8 + self.p.is_some() as u8 + self.o.is_some() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn triple_array_round_trip() {
        let t = Triple::new(id(1), id(2), id(3));
        assert_eq!(t.as_array(), [id(1), id(2), id(3)]);
        assert_eq!(Triple::from([id(1), id(2), id(3)]), t);
    }

    #[test]
    fn pattern_matches_per_position() {
        let t = Triple::new(id(1), id(2), id(3));
        assert!(TriplePattern::default().matches(&t));
        assert!(TriplePattern::new(Some(id(1)), None, None).matches(&t));
        assert!(TriplePattern::new(Some(id(1)), Some(id(2)), Some(id(3))).matches(&t));
        assert!(!TriplePattern::new(Some(id(9)), None, None).matches(&t));
        assert!(!TriplePattern::new(None, Some(id(9)), None).matches(&t));
        assert!(!TriplePattern::new(None, None, Some(id(9))).matches(&t));
    }

    #[test]
    fn bound_count() {
        assert_eq!(TriplePattern::default().bound_count(), 0);
        assert_eq!(
            TriplePattern::new(Some(id(1)), None, Some(id(2))).bound_count(),
            2
        );
    }
}
