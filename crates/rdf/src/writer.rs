//! N-Triples serialization.
//!
//! Output is sorted by the textual form of (subject, predicate, object) so
//! that serializing the same graph always yields the same bytes — convenient
//! for golden tests and for diffing generated workloads.

use crate::graph::Graph;

/// Serializes `graph` as deterministic N-Triples.
pub fn to_ntriples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph
        .triples()
        .map(|t| {
            let (s, p, o) = graph.decode(t);
            format!("{s} {p} {o} .")
        })
        .collect();
    lines.sort_unstable();
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ntriples;
    use crate::term::Term;

    #[test]
    fn round_trip_preserves_graph() {
        let mut g = Graph::new();
        g.insert_iri("user1", "hasAge", &Term::integer(28));
        g.insert_iri("user1", "identifiedBy", &Term::literal("Bill"));
        g.insert_iri(
            "user1",
            "identifiedBy",
            &Term::literal("A \"quoted\"\nname"),
        );
        g.insert(&Term::blank("b0"), &Term::iri("knows"), &Term::iri("user1"));

        let text = to_ntriples(&g);
        let back = parse_ntriples(&text).unwrap();
        assert_eq!(back.len(), g.len());
        for t in g.triples() {
            let (s, p, o) = g.decode(t);
            assert!(back.contains(s, p, o), "missing {s} {p} {o}");
        }
    }

    #[test]
    fn control_characters_round_trip_and_stay_escaped() {
        let mut g = Graph::new();
        let gnarly = Term::literal("bell\u{7}null\u{0}del\u{7F}tab\tend");
        g.insert_iri("s", "p", &gnarly);
        let text = to_ntriples(&g);
        // No raw control characters may reach the wire (newline terminates
        // each statement, which is the only control byte allowed).
        assert!(
            text.chars().all(|c| c == '\n' || !c.is_control()),
            "{text:?}"
        );
        assert!(text.contains("\\u0007"), "{text:?}");
        let back = parse_ntriples(&text).unwrap();
        assert!(back.contains(&Term::iri("s"), &Term::iri("p"), &gnarly));
    }

    #[test]
    fn output_is_deterministic() {
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        // Insert in different orders.
        g1.insert_iri("a", "p", &Term::literal("1"));
        g1.insert_iri("b", "p", &Term::literal("2"));
        g2.insert_iri("b", "p", &Term::literal("2"));
        g2.insert_iri("a", "p", &Term::literal("1"));
        assert_eq!(to_ntriples(&g1), to_ntriples(&g2));
    }

    #[test]
    fn empty_graph_serializes_to_empty_string() {
        assert_eq!(to_ntriples(&Graph::new()), "");
    }
}
