//! # rdfcube-obs — query-plane telemetry
//!
//! The observability layer for the rdfcube workspace, in two halves:
//!
//! * **Metrics** ([`registry`]) — a lock-free [`Registry`] of named
//!   atomic [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s.
//!   Increments and snapshots never take a lock (registration is the one
//!   mutex-guarded cold path); snapshots export as Prometheus text or
//!   JSON. Each OLAP session's catalog owns a registry; process-wide
//!   storage/engine counters live in the global [`ObsSink`].
//! * **Traces** ([`trace`]) — an opt-in, per-query structured tracer.
//!   [`trace_begin`]/[`trace_end`] bracket a query on the calling
//!   thread; instrumented stages open [`span`] guards that assemble an
//!   arena-backed [`QueryTrace`] span tree recording wall time, row
//!   counts, bytes and per-stage attributes. When no trace is active, a
//!   span site costs one relaxed atomic load and a branch.
//!
//! This crate is dependency-free and sits below every other rdfcube
//! crate; `rdfcube-core` surfaces it as
//! `OlapSession::answer_traced` / `SharedSession::answer_traced` and the
//! `EXPLAIN ANALYZE`-style `explain_analyze` renderer.

pub mod registry;
pub mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricValue, Registry, Snapshot,
    SnapshotValue, HISTOGRAM_BUCKETS, REGISTRY_CAPACITY,
};
pub use trace::{fmt_nanos, span, trace_begin, trace_end, QueryTrace, Span, SpanNode};

use std::sync::OnceLock;

/// Cheap handles to the process-global metric sinks the storage and
/// engine layers increment on their hot paths. All fields are plain
/// atomic-cell handles — incrementing is a relaxed `fetch_add`, and the
/// backing [`Registry`] can be snapshotted at any time via
/// [`ObsSink::snapshot`] or [`global_snapshot`].
#[derive(Debug)]
pub struct ObsSink {
    registry: Registry,
    /// Delta-buffer folds into the sorted CSR runs
    /// (`rdfcube_graph_delta_merges_total`).
    pub delta_merges: Counter,
    /// Triples moved by those folds
    /// (`rdfcube_graph_delta_merge_rows_total`).
    pub delta_merge_rows: Counter,
    /// BGP join steps executed (`rdfcube_engine_bgp_steps_total`).
    pub bgp_steps: Counter,
    /// Rows produced by BGP steps (`rdfcube_engine_step_rows_total`).
    pub step_rows: Counter,
    /// Shards probed by sharded BGP steps
    /// (`rdfcube_engine_shard_probes_total`).
    pub shard_probes: Counter,
    /// Shards skipped by the per-step active-shard filter
    /// (`rdfcube_engine_shards_skipped_total`).
    pub shards_skipped: Counter,
    /// Query traces completed (`rdfcube_traces_total`).
    pub traces: Counter,
}

impl ObsSink {
    fn new() -> Self {
        let registry = Registry::new();
        ObsSink {
            delta_merges: registry.counter("rdfcube_graph_delta_merges_total"),
            delta_merge_rows: registry.counter("rdfcube_graph_delta_merge_rows_total"),
            bgp_steps: registry.counter("rdfcube_engine_bgp_steps_total"),
            step_rows: registry.counter("rdfcube_engine_step_rows_total"),
            shard_probes: registry.counter("rdfcube_engine_shard_probes_total"),
            shards_skipped: registry.counter("rdfcube_engine_shards_skipped_total"),
            traces: registry.counter("rdfcube_traces_total"),
            registry,
        }
    }

    /// The registry behind the global counters (for extra registrations).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the global counters.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// The process-global [`ObsSink`], created on first use.
pub fn sink() -> &'static ObsSink {
    static SINK: OnceLock<ObsSink> = OnceLock::new();
    SINK.get_or_init(ObsSink::new)
}

/// Snapshot of the process-global sink's registry.
pub fn global_snapshot() -> Snapshot {
    sink().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_sink_registers_and_counts() {
        let s = sink();
        let before = s.snapshot().counter("rdfcube_engine_bgp_steps_total");
        s.bgp_steps.inc();
        s.bgp_steps.add(2);
        let after = global_snapshot().counter("rdfcube_engine_bgp_steps_total");
        assert_eq!(after - before, 3);
        assert!(global_snapshot()
            .names()
            .any(|n| n == "rdfcube_graph_delta_merges_total"));
    }
}
