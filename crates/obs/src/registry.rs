//! A lock-free metrics registry: named atomic counters, gauges and
//! log₂-bucketed histograms with Prometheus-text and JSON snapshot
//! exporters.
//!
//! ## Concurrency contract
//!
//! * **Increment path** — [`Counter::inc`], [`Gauge::set`],
//!   [`Histogram::record`] are single atomic RMW operations on cells the
//!   handle owns through an [`Arc`]. No lock, no allocation, no registry
//!   access.
//! * **Snapshot path** — [`Registry::snapshot`] walks the slot array
//!   guarded only by an `Acquire` load of the publication cursor and
//!   per-slot [`OnceLock`] reads. No lock is taken; writers are never
//!   stalled by a reader.
//! * **Registration path** — [`Registry::counter`] & friends are the one
//!   *cold* path and serialize on a `Mutex` so that duplicate names
//!   dedupe to the same cell. Register once, cache the handle, increment
//!   forever.
//!
//! ## Torn-read freedom
//!
//! A histogram records `sum`, then its bucket, then `count` with
//! `Release` ordering; a snapshot reads `count` first with `Acquire`.
//! Any recording racing with a snapshot is therefore either fully
//! visible or surplus: the invariant `Σ buckets ≥ count ∧ sum ≥
//! exact-sum-at-count` always holds, and after all writers quiesce the
//! three agree exactly. The 8-thread suite in `tests/concurrency.rs`
//! checks both the mid-flight invariant and the quiescent equality.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of distinct metrics one [`Registry`] can export.
///
/// Registrations past the cap still return working handles; the cells
/// simply never appear in snapshots (and a debug assertion fires so the
/// overflow is caught in tests).
pub const REGISTRY_CAPACITY: usize = 256;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds the value
/// 0 and bucket `b` holds values in `[2^(b-1), 2^b - 1]`, so the full
/// `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// What a registered metric measures; decides how exporters render it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can move both ways.
    Gauge,
    /// Log₂-bucketed distribution of recorded values.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter. Cloning shares the cell;
/// incrementing is one relaxed `fetch_add`.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry: counts, exports nowhere.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time value. Cloning shares the cell; all operations are
/// single atomic instructions.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at 0.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared cells behind a [`Histogram`] handle.
#[derive(Debug)]
pub struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the log₂ bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (`u64::MAX` for the last bucket).
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, row counts, bytes). Recording is three relaxed-or-release
/// `fetch_add`s — no lock, no allocation.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    ///
    /// `count` is bumped *last*, with `Release`: a snapshot that reads
    /// `count` first (`Acquire`) therefore sees at least that many
    /// samples already folded into `sum` and `buckets` — reads can be
    /// surplus but never torn.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Release);
    }

    /// Consistent point-in-time view (see [`Histogram::record`] for the
    /// ordering that keeps it tear-free).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.core.count.load(Ordering::Acquire);
        let buckets = std::array::from_fn(|i| self.core.buckets[i].load(Ordering::Relaxed));
        let sum = self.core.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of samples fully recorded when the snapshot was taken.
    pub count: u64,
    /// Sum of all samples (covers *at least* the `count` samples).
    pub sum: u64,
    /// Per-bucket sample counts; `Σ buckets ≥ count` always.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); an upper estimate within 2× of the true value.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        u64::MAX
    }
}

enum MetricData {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl MetricData {
    fn kind(&self) -> MetricKind {
        match self {
            MetricData::Counter(_) => MetricKind::Counter,
            MetricData::Gauge(_) => MetricKind::Gauge,
            MetricData::Histogram(_) => MetricKind::Histogram,
        }
    }
}

impl std::fmt::Debug for MetricData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind().as_str())
    }
}

#[derive(Debug)]
struct Slot {
    name: String,
    data: MetricData,
}

/// A fixed-capacity, lock-free-on-the-hot-path metrics registry.
///
/// See the [module docs](self) for the concurrency contract. Each
/// [`crate::Registry`] is independent — the catalog of every session owns
/// one, and the process-global engine/storage counters live in
/// [`crate::sink`]'s registry — so metrics from two sessions never
/// collide.
#[derive(Debug)]
pub struct Registry {
    slots: Box<[OnceLock<Slot>]>,
    /// Slots `[0, claimed)` are fully initialized; published with
    /// `Release` after the `OnceLock` is set, read with `Acquire`.
    claimed: AtomicUsize,
    register: Mutex<()>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with [`REGISTRY_CAPACITY`] slots.
    pub fn new() -> Self {
        Registry {
            slots: (0..REGISTRY_CAPACITY).map(|_| OnceLock::new()).collect(),
            claimed: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Register (or look up) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register_slot(name, MetricKind::Counter) {
            Some(MetricData::Counter(cell)) => Counter { cell: cell.clone() },
            _ => Counter::detached(),
        }
    }

    /// Register (or look up) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register_slot(name, MetricKind::Gauge) {
            Some(MetricData::Gauge(cell)) => Gauge { cell: cell.clone() },
            _ => Gauge::detached(),
        }
    }

    /// Register (or look up) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register_slot(name, MetricKind::Histogram) {
            Some(MetricData::Histogram(core)) => Histogram { core: core.clone() },
            _ => Histogram::detached(),
        }
    }

    /// Cold path: find `name` or claim the next free slot for it.
    /// Returns `None` (→ detached handle) on capacity overflow or when
    /// `name` is already registered with a different kind.
    fn register_slot(&self, name: &str, kind: MetricKind) -> Option<&MetricData> {
        let _guard = self
            .register
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let claimed = self.claimed.load(Ordering::Acquire);
        for slot in self.slots[..claimed].iter() {
            if let Some(s) = slot.get() {
                if s.name == name {
                    if s.data.kind() == kind {
                        return Some(&s.data);
                    }
                    debug_assert!(
                        false,
                        "metric {name:?} re-registered as {kind:?} (was {:?})",
                        s.data.kind()
                    );
                    return None;
                }
            }
        }
        if claimed >= self.slots.len() {
            debug_assert!(false, "metrics registry full registering {name:?}");
            return None;
        }
        let data = match kind {
            MetricKind::Counter => MetricData::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Gauge => MetricData::Gauge(Arc::new(AtomicU64::new(0))),
            MetricKind::Histogram => MetricData::Histogram(Arc::new(HistogramCore::default())),
        };
        let slot = Slot {
            name: name.to_string(),
            data,
        };
        let stored = self.slots[claimed].set(slot);
        debug_assert!(stored.is_ok(), "slot {claimed} claimed twice");
        self.claimed.store(claimed + 1, Ordering::Release);
        self.slots[claimed].get().map(|s| &s.data)
    }

    /// Lock-free point-in-time view of every registered metric, in
    /// registration order. Safe to call concurrently with any number of
    /// writers; histogram entries obey the tear-free invariant described
    /// in the [module docs](self).
    pub fn snapshot(&self) -> Snapshot {
        let claimed = self.claimed.load(Ordering::Acquire);
        let mut entries = Vec::with_capacity(claimed);
        for slot in self.slots[..claimed].iter() {
            let Some(s) = slot.get() else { continue };
            let value = match &s.data {
                MetricData::Counter(c) => SnapshotValue::Counter(c.load(Ordering::Relaxed)),
                MetricData::Gauge(g) => SnapshotValue::Gauge(g.load(Ordering::Relaxed)),
                MetricData::Histogram(h) => {
                    SnapshotValue::Histogram(Box::new(Histogram { core: h.clone() }.snapshot()))
                }
            };
            entries.push(MetricValue {
                name: s.name.clone(),
                value,
            });
        }
        Snapshot { entries }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct MetricValue {
    /// The name it was registered under.
    pub name: String,
    /// Its value at snapshot time.
    pub value: SnapshotValue,
}

/// The value part of a [`MetricValue`].
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram reading (boxed: a snapshot carries 64 buckets).
    Histogram(Box<HistogramSnapshot>),
}

impl SnapshotValue {
    fn kind(&self) -> MetricKind {
        match self {
            SnapshotValue::Counter(_) => MetricKind::Counter,
            SnapshotValue::Gauge(_) => MetricKind::Gauge,
            SnapshotValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A point-in-time view of a [`Registry`], ready to export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All metric readings, in registration order.
    pub entries: Vec<MetricValue>,
}

impl Snapshot {
    /// Look up a reading by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter reading by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge reading by name (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(SnapshotValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram reading by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(SnapshotValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Registered metric names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Concatenate two snapshots (e.g. the global sink's plus a
    /// session's). Entries keep their order; duplicate names are kept
    /// as-is.
    pub fn merged(mut self, other: Snapshot) -> Snapshot {
        self.entries.extend(other.entries);
        self
    }

    /// Render in the Prometheus text exposition format. Histograms emit
    /// cumulative `_bucket{le=…}` series up to the highest non-empty
    /// bucket, plus `_sum` and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for entry in &self.entries {
            let name = &entry.name;
            let _ = writeln!(out, "# TYPE {name} {}", entry.value.kind().as_str());
            match &entry.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                SnapshotValue::Histogram(h) => {
                    let last = h
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map_or(0, |b| (b + 1).min(HISTOGRAM_BUCKETS - 1));
                    let mut cumulative = 0u64;
                    for b in 0..=last {
                        cumulative += h.buckets[b];
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_upper_bound(b)
                        );
                    }
                    let total: u64 = h.buckets.iter().sum();
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }

    /// Render as a JSON object keyed by metric name. Histogram buckets
    /// are `[upper_bound, count]` pairs for non-empty buckets only
    /// (counts are per-bucket, not cumulative).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  \"{}\": {{\"type\": \"{}\", ",
                json_escape(&entry.name),
                entry.value.kind().as_str()
            );
            match &entry.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "\"value\": {v}}}");
                }
                SnapshotValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    );
                    let mut first = true;
                    for (b, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let _ = write!(out, "[{}, {n}]", bucket_upper_bound(b));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(b)), b);
            assert_eq!(bucket_index(bucket_upper_bound(b) + 1), b + 1);
        }
    }

    #[test]
    fn registration_dedupes_by_name() {
        let reg = Registry::new();
        let a = reg.counter("ops_total");
        let b = reg.counter("ops_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("ops_total"), 3);
        assert_eq!(reg.snapshot().entries.len(), 1);
    }

    #[test]
    fn snapshot_reports_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(42);
        let h = reg.histogram("h");
        h.record(0);
        h.record(100);
        h.record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauge("g"), 42);
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 200);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 3);
        assert!((hs.mean() - 200.0 / 3.0).abs() < 1e-9);
        assert!(hs.approx_quantile(0.99) >= 100);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::detached();
        g.set(5);
        g.sub(7);
        assert_eq!(g.get(), 0);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn exporters_render_every_metric() {
        let reg = Registry::new();
        reg.counter("hits_total").add(4);
        reg.gauge("resident_bytes").set(1024);
        reg.histogram("latency_nanos").record(1500);
        let snap = reg.snapshot();
        let prom = snap.to_prometheus_text();
        assert!(prom.contains("# TYPE hits_total counter"));
        assert!(prom.contains("hits_total 4"));
        assert!(prom.contains("resident_bytes 1024"));
        assert!(prom.contains("latency_nanos_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("latency_nanos_sum 1500"));
        assert!(prom.contains("latency_nanos_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"hits_total\": {\"type\": \"counter\", \"value\": 4}"));
        assert!(json.contains("\"count\": 1, \"sum\": 1500"));
    }

    #[test]
    fn merged_concatenates() {
        let a = Registry::new();
        a.counter("a").inc();
        let b = Registry::new();
        b.counter("b").inc();
        let merged = a.snapshot().merged(b.snapshot());
        assert_eq!(merged.counter("a"), 1);
        assert_eq!(merged.counter("b"), 1);
    }
}
