//! A structured query tracer: an arena-backed span tree recording wall
//! time, row counts and bytes per stage of an answered query.
//!
//! Tracing is **opt-in per query and pay-for-what-you-use**: span sites
//! (`obs::span("…")`) first load one global relaxed atomic — when no
//! trace is active anywhere in the process, that load-plus-branch is the
//! *entire* cost of an instrumented code path. When a trace is active on
//! the current thread, spans append to a thread-local arena
//! ([`Vec<SpanNode>`]) with parent links taken from an open-span stack,
//! so the tree shape falls out of ordinary scoping: a span guard created
//! while another is open becomes its child.
//!
//! Worker threads never touch the collector — parallel stages report
//! per-shard statistics back to the coordinating thread, which attaches
//! them to its own span as attributes.
//!
//! ```
//! let began = rdfcube_obs::trace_begin("answer_query");
//! {
//!     let sp = rdfcube_obs::span("plan");
//!     sp.rows(100, 10);
//!     sp.attr("candidates", 3);
//! } // guard drop records the elapsed time
//! let trace = rdfcube_obs::trace_end().unwrap();
//! assert!(began && trace.spans().len() == 2);
//! println!("{}", trace.render());
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of threads with an active trace collector; span sites bail out
/// on a single relaxed load of this when it is 0.
static ACTIVE_TRACES: AtomicUsize = AtomicUsize::new(0);

/// Distinguishes collectors so a stale [`Span`] guard (kept across a
/// `trace_end`/`trace_begin` pair by misuse) can never write into the
/// wrong trace's arena.
static NEXT_TRACE_GEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

struct Collector {
    generation: u64,
    spans: Vec<SpanNode>,
    /// Indices of currently open spans, root at the bottom.
    stack: Vec<usize>,
    started: Instant,
}

/// One node of a [`QueryTrace`]'s span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Stage name (e.g. `"plan"`, `"bgp_step"`, `"group_aggregate"`).
    pub name: &'static str,
    /// Free-form detail (e.g. the chosen strategy), empty when unset.
    pub detail: String,
    /// Arena index of the parent span; `None` for the root.
    pub parent: Option<usize>,
    /// Wall time spent inside the span.
    pub nanos: u64,
    /// Rows entering the stage.
    pub rows_in: u64,
    /// Rows leaving the stage.
    pub rows_out: u64,
    /// Bytes touched or produced by the stage.
    pub bytes: u64,
    /// Additional named measurements (e.g. `shards_probed`).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanNode {
    fn new(name: &'static str, parent: Option<usize>) -> Self {
        SpanNode {
            name,
            detail: String::new(),
            parent,
            nanos: 0,
            rows_in: 0,
            rows_out: 0,
            bytes: 0,
            attrs: Vec::new(),
        }
    }

    /// Value of the named attribute, if recorded.
    pub fn attr(&self, name: &str) -> Option<u64> {
        self.attrs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// RAII guard for one stage: created by [`span`], records its wall time
/// into the current trace when dropped. Guards must be dropped in LIFO
/// order (ordinary lexical scoping guarantees this).
#[derive(Debug)]
pub struct Span {
    /// Arena index in the collector, `usize::MAX` when inert.
    idx: usize,
    generation: u64,
    /// `None` when the span is inert (no active trace on this thread).
    start: Option<Instant>,
}

impl Span {
    const INERT: Span = Span {
        idx: usize::MAX,
        generation: 0,
        start: None,
    };

    /// Whether this span is recording (false on untraced queries).
    /// Use to skip measurement-only work:
    /// `if sp.active() { sp.bytes(cube.approx_bytes() as u64) }`.
    #[inline]
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Record input/output row counts.
    #[inline]
    pub fn rows(&self, rows_in: u64, rows_out: u64) {
        self.update(|n| {
            n.rows_in = rows_in;
            n.rows_out = rows_out;
        });
    }

    /// Record bytes touched or produced.
    #[inline]
    pub fn bytes(&self, bytes: u64) {
        self.update(|n| n.bytes = bytes);
    }

    /// Attach a named measurement; repeated names accumulate by sum.
    #[inline]
    pub fn attr(&self, name: &'static str, value: u64) {
        self.update(|n| {
            if let Some(slot) = n.attrs.iter_mut().find(|(a, _)| *a == name) {
                slot.1 += value;
            } else {
                n.attrs.push((name, value));
            }
        });
    }

    /// Set the detail string; the closure runs only when the span is
    /// recording, so untraced queries never pay for the formatting.
    #[inline]
    pub fn detail(&self, f: impl FnOnce() -> String) {
        if !self.active() {
            return;
        }
        let detail = f();
        self.update(|n| n.detail = detail);
    }

    fn update(&self, f: impl FnOnce(&mut SpanNode)) {
        if !self.active() {
            return;
        }
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                if col.generation == self.generation {
                    if let Some(node) = col.spans.get_mut(self.idx) {
                        f(node);
                    }
                }
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos() as u64;
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                if col.generation != self.generation {
                    return;
                }
                if let Some(node) = col.spans.get_mut(self.idx) {
                    node.nanos = nanos;
                }
                if col.stack.last() == Some(&self.idx) {
                    col.stack.pop();
                } else {
                    // Out-of-order drop (should not happen with lexical
                    // guards): unlink defensively.
                    col.stack.retain(|&i| i != self.idx);
                }
            }
        });
    }
}

/// Open a span for the current stage. Returns an inert guard (a single
/// relaxed load + branch) when no trace is active on this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    if ACTIVE_TRACES.load(Ordering::Relaxed) == 0 {
        return Span::INERT;
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(col) = slot.as_mut() else {
            return Span::INERT;
        };
        let idx = col.spans.len();
        let parent = col.stack.last().copied();
        col.spans.push(SpanNode::new(name, parent));
        col.stack.push(idx);
        Span {
            idx,
            generation: col.generation,
            start: Some(Instant::now()),
        }
    })
}

/// Start collecting a trace on the current thread, rooted at a span
/// named `root`. Returns `false` (and changes nothing) if a trace is
/// already active on this thread — nested traces are ignored, so a
/// traced entry point may freely call other traced entry points.
pub fn trace_begin(root: &'static str) -> bool {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Collector {
            generation: NEXT_TRACE_GEN.fetch_add(1, Ordering::Relaxed),
            spans: vec![SpanNode::new(root, None)],
            stack: vec![0],
            started: Instant::now(),
        });
        ACTIVE_TRACES.fetch_add(1, Ordering::Relaxed);
        true
    })
}

/// Finish the current thread's trace and return it (`None` when no
/// trace is active). The root span's wall time is set to the full
/// `trace_begin`→`trace_end` interval.
pub fn trace_end() -> Option<QueryTrace> {
    COLLECTOR.with(|c| {
        let col = c.borrow_mut().take()?;
        ACTIVE_TRACES.fetch_sub(1, Ordering::Relaxed);
        let mut spans = col.spans;
        spans[0].nanos = col.started.elapsed().as_nanos() as u64;
        Some(QueryTrace { spans })
    })
}

/// A completed span tree for one traced query.
///
/// Spans live in an arena in creation order; `spans()[0]` is the root
/// and every other node links to its parent by index.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    spans: Vec<SpanNode>,
}

impl QueryTrace {
    /// All spans, root first, in creation order. Empty for a trace that
    /// never collected (e.g. `answer_traced` nested inside another
    /// trace).
    pub fn spans(&self) -> &[SpanNode] {
        &self.spans
    }

    /// The root span, if the trace collected anything.
    pub fn root(&self) -> Option<&SpanNode> {
        self.spans.first()
    }

    /// End-to-end wall time of the traced call.
    pub fn total_nanos(&self) -> u64 {
        self.root().map_or(0, |r| r.nanos)
    }

    /// First span with the given name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanNode> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Arena indices of `idx`'s direct children, in creation order.
    pub fn children(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        self.spans
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.parent == Some(idx))
            .map(|(i, _)| i)
    }

    /// Sum of the root's direct children's wall times — the portion of
    /// the end-to-end time the per-stage spans account for.
    pub fn stage_nanos(&self) -> u64 {
        if self.spans.is_empty() {
            return 0;
        }
        self.children(0).map(|i| self.spans[i].nanos).sum()
    }

    /// Fraction of the end-to-end wall time covered by the root's
    /// direct stage spans (0 when the trace is empty).
    pub fn stage_coverage(&self) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.stage_nanos() as f64 / total as f64
        }
    }

    /// Render the span tree as human-readable indented text: one line
    /// per span with wall time, rows in→out, bytes and attributes.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(empty trace)\n");
            return out;
        }
        self.render_node(0, "", "", &mut out);
        let _ = write!(
            out,
            "stage coverage: {:.1}% of {}",
            self.stage_coverage() * 100.0,
            fmt_nanos(self.total_nanos())
        );
        out.push('\n');
        out
    }

    fn render_node(&self, idx: usize, lead: &str, child_lead: &str, out: &mut String) {
        use std::fmt::Write;
        let node = &self.spans[idx];
        let _ = write!(out, "{lead}{}", node.name);
        if !node.detail.is_empty() {
            let _ = write!(out, ": {}", node.detail);
        }
        let _ = write!(out, "  [{}", fmt_nanos(node.nanos));
        if node.rows_in != 0 || node.rows_out != 0 {
            let _ = write!(out, ", rows {}→{}", node.rows_in, node.rows_out);
        }
        if node.bytes != 0 {
            let _ = write!(out, ", {} B", node.bytes);
        }
        for (name, value) in &node.attrs {
            let _ = write!(out, ", {name}={value}");
        }
        out.push_str("]\n");
        let children: Vec<usize> = self.children(idx).collect();
        for (i, &child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let branch = if last { "└─ " } else { "├─ " };
            let cont = if last { "   " } else { "│  " };
            self.render_node(
                child,
                &format!("{child_lead}{branch}"),
                &format!("{child_lead}{cont}"),
                out,
            );
        }
    }
}

/// Format a nanosecond count with a human-friendly unit.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untraced_spans_are_inert() {
        let sp = span("noop");
        assert!(!sp.active());
        sp.rows(1, 2);
        sp.attr("x", 1);
        drop(sp);
        assert!(trace_end().is_none());
    }

    #[test]
    fn spans_nest_by_scope() {
        assert!(trace_begin("root"));
        {
            let plan = span("plan");
            plan.rows(10, 4);
            {
                let inner = span("bgp_step");
                inner.attr("shards_probed", 3);
                inner.attr("shards_probed", 2);
                inner.detail(|| "p0".to_string());
            }
        }
        {
            let _exec = span("execute");
        }
        let trace = trace_end().unwrap();
        let spans = trace.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].name, "plan");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "bgp_step");
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[2].attr("shards_probed"), Some(5));
        assert_eq!(spans[2].detail, "p0");
        assert_eq!(spans[3].parent, Some(0));
        assert_eq!(trace.children(0).count(), 2);
        assert!(trace.total_nanos() >= trace.stage_nanos());
        let rendered = trace.render();
        assert!(rendered.contains("bgp_step: p0"), "render:\n{rendered}");
        assert!(rendered.contains("stage coverage"), "render:\n{rendered}");
    }

    #[test]
    fn nested_trace_begin_is_ignored() {
        assert!(trace_begin("outer"));
        assert!(!trace_begin("inner"));
        let _sp = span("child");
        drop(_sp);
        let trace = trace_end().unwrap();
        assert_eq!(trace.root().unwrap().name, "outer");
        assert!(trace_end().is_none());
    }

    #[test]
    fn stale_guard_cannot_write_into_a_new_trace() {
        assert!(trace_begin("first"));
        let stale = span("stage");
        let _ = trace_end().unwrap();
        assert!(trace_begin("second"));
        stale.rows(9, 9); // must not touch the new collector
        drop(stale);
        let second = trace_end().unwrap();
        assert_eq!(second.spans().len(), 1);
        assert_eq!(second.root().unwrap().rows_in, 0);
    }

    #[test]
    fn fmt_nanos_picks_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_710_000), "2.71ms");
        assert_eq!(fmt_nanos(1_500_000_000), "1.50s");
    }
}
