//! Deterministic Zipf-skewed query workloads over a base analytical
//! query.
//!
//! The view-selection advisor (`rdfcube_core::advisor`) pays off exactly
//! when a workload keeps posing *distinct but derivable* queries: each
//! variant is new to the catalog (the reactive plane cannot serve it as a
//! duplicate), yet all of them hang below a handful of lattice ancestors
//! the advisor can pre-materialize. This module generates such workloads
//! reproducibly:
//!
//! * [`variant_pool`] enumerates distinct *restricted* slice / dice /
//!   drill-out+dice variants of a base query by pure index arithmetic —
//!   no randomness, so pool index `i` is the same query in every run and
//!   the Zipf rank order is stable;
//! * [`zipf_sequence`] draws a seeded Zipf-skewed sequence of pool
//!   indices ([`crate::zipf::Zipf`] + `StdRng`), so a few hot variants
//!   dominate with a long tail, the usual shape of analytical dashboards;
//! * [`zipf_workload`] combines both.
//!
//! Every variant keeps at least one restricted dimension, so a session
//! replaying the pool never materializes an unrestricted ancestor as a
//! side effect — whatever ancestor serves the tail must come from the
//! advisor (or be paid for from scratch, which is the baseline the
//! benchmarks measure).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdfcube_core::{apply, CoreError, ExtendedQuery, OlapOp, ValueSelector};
use rdfcube_rdf::Term;

use crate::zipf::Zipf;

/// One dimension of the base query together with the constant values its
/// variants may restrict it to.
#[derive(Debug, Clone)]
pub struct DimDomain {
    /// The dimension's user-facing name in the base query (e.g. `dcity`).
    pub dim: String,
    /// Values to dice the dimension to. Need not be exhaustive — a
    /// representative sample of the dimension's domain is enough.
    pub values: Vec<Term>,
}

impl DimDomain {
    /// Convenience constructor.
    pub fn new(dim: impl Into<String>, values: Vec<Term>) -> Self {
        DimDomain {
            dim: dim.into(),
            values,
        }
    }
}

/// Enumerates `n` distinct restricted variants of `base`, cycling through
/// three kinds per dimension and value offset (index arithmetic only —
/// deterministic by construction):
///
/// * kind 0 — dice the dimension to one value;
/// * kind 1 — drill out the *next* dimension, then dice this one (falls
///   back to a two-value dice when the base has a single dimension);
/// * kind 2 — dice the dimension to two adjacent values.
///
/// Low pool indices exhaust all kinds and dimensions first, so a
/// Zipf-ranked replay spreads its hot set across every variant family.
pub fn variant_pool(
    base: &ExtendedQuery,
    domains: &[DimDomain],
    n: usize,
) -> Result<Vec<ExtendedQuery>, CoreError> {
    assert!(
        !domains.is_empty(),
        "variant_pool needs at least one domain"
    );
    assert!(
        domains.iter().all(|d| !d.values.is_empty()),
        "every domain needs at least one value"
    );
    let nd = domains.len();
    (0..n)
        .map(|i| {
            let kind = i % 3;
            let di = (i / 3) % nd;
            let vi = i / (3 * nd);
            let d = &domains[di];
            let value = |offset: usize| d.values[(vi + offset) % d.values.len()].clone();
            let dice_one = OlapOp::Dice {
                constraints: vec![(d.dim.clone(), ValueSelector::one(value(0)))],
            };
            match kind {
                0 => apply(base, &dice_one),
                1 if nd >= 2 => {
                    let other = &domains[(di + 1) % nd];
                    let dropped = apply(
                        base,
                        &OlapOp::DrillOut {
                            dims: vec![other.dim.clone()],
                        },
                    )?;
                    apply(&dropped, &dice_one)
                }
                _ => apply(
                    base,
                    &OlapOp::Dice {
                        constraints: vec![(
                            d.dim.clone(),
                            ValueSelector::OneOf(vec![value(0), value(1)]),
                        )],
                    },
                ),
            }
        })
        .collect()
}

/// A seeded Zipf-skewed sequence of `len` pool indices in
/// `0..pool_len`, exponent `s` (0 = uniform; 1 ≈ classic web skew).
/// Index 0 is the hottest rank.
pub fn zipf_sequence(pool_len: usize, len: usize, s: f64, seed: u64) -> Vec<usize> {
    let zipf = Zipf::new(pool_len, s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| zipf.sample(&mut rng) - 1).collect()
}

/// [`variant_pool`] + [`zipf_sequence`]: the pool and a replay order over
/// it. `workload.1[k]` indexes into `workload.0`.
pub fn zipf_workload(
    base: &ExtendedQuery,
    domains: &[DimDomain],
    pool_size: usize,
    len: usize,
    s: f64,
    seed: u64,
) -> Result<(Vec<ExtendedQuery>, Vec<usize>), CoreError> {
    let pool = variant_pool(base, domains, pool_size)?;
    let sequence = zipf_sequence(pool.len(), len, s, seed);
    Ok((pool, sequence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_core::OlapSession;
    use rdfcube_engine::AggFunc;

    fn base_query() -> (OlapSession, ExtendedQuery) {
        let cfg = crate::BloggerConfig {
            n_bloggers: 40,
            ..Default::default()
        };
        let instance = crate::generate_instance(&cfg);
        let mut s = OlapSession::new(instance);
        let eq = s
            .parse_query(
                crate::EXAMPLE1_CLASSIFIER,
                crate::EXAMPLE1_MEASURE,
                AggFunc::Count,
            )
            .unwrap();
        (s, eq)
    }

    fn domains() -> Vec<DimDomain> {
        vec![
            DimDomain::new("dage", (18..28).map(Term::integer).collect()),
            DimDomain::new(
                "dcity",
                (0..10).map(|i| Term::literal(format!("city{i}"))).collect(),
            ),
        ]
    }

    #[test]
    fn pool_is_deterministic_and_distinct() {
        let (_s, base) = base_query();
        let pool = variant_pool(&base, &domains(), 24).unwrap();
        let again = variant_pool(&base, &domains(), 24).unwrap();
        assert_eq!(pool.len(), 24);
        for (a, b) in pool.iter().zip(&again) {
            assert_eq!(a.query().dim_names(), b.query().dim_names());
            assert_eq!(a.sigma(), b.sigma());
        }
        // No two variants share both dimension list and Σ.
        for i in 0..pool.len() {
            for j in 0..i {
                let same_dims = pool[i].query().dim_names() == pool[j].query().dim_names();
                assert!(
                    !(same_dims && pool[i].sigma() == pool[j].sigma()),
                    "variants {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn every_variant_keeps_a_restriction() {
        let (_s, base) = base_query();
        let pool = variant_pool(&base, &domains(), 30).unwrap();
        for eq in &pool {
            assert!(
                eq.sigma()
                    .selectors()
                    .iter()
                    .any(|sel| !matches!(sel, ValueSelector::All)),
                "unrestricted variant would let a replay materialize an ancestor"
            );
        }
    }

    #[test]
    fn variants_answer_like_scratch() {
        let (mut s, base) = base_query();
        let pool = variant_pool(&base, &domains(), 12).unwrap();
        for eq in pool {
            let (h, _) = s.answer_query(eq).unwrap();
            let scratch = s.cube(h).query().answer(s.instance()).unwrap();
            assert!(s.answer(h).same_cells(&scratch));
        }
    }

    #[test]
    fn zipf_sequence_is_seeded_and_skewed() {
        let a = zipf_sequence(50, 400, 1.1, 42);
        let b = zipf_sequence(50, 400, 1.1, 42);
        assert_eq!(a, b, "same seed, same sequence");
        let c = zipf_sequence(50, 400, 1.1, 43);
        assert_ne!(a, c, "different seed, different sequence");
        assert!(a.iter().all(|&i| i < 50));
        // Rank 0 dominates any deep-tail rank under s > 1.
        let hot = a.iter().filter(|&&i| i == 0).count();
        let cold = a.iter().filter(|&&i| i >= 40).count();
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }
}
