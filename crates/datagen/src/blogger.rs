//! The blogger world — the paper's Figure 1 analytical schema, generated at
//! scale.
//!
//! The generator produces *base* RDF graphs in a "raw" vocabulary
//! (`Person/age/city/posted/on/words/name/knows`) that the Figure 1
//! analytical schema ([`blogger_schema`]) re-exposes as
//! `Blogger/hasAge/livesIn/wrotePost/postedOn/hasWordCount/identifiedBy/
//! acquaintedWith`. [`generate_instance`] shortcuts the materialization for
//! benchmark setup.
//!
//! Every knob relevant to the paper's algorithms is explicit:
//!
//! * `n_bloggers` — scale;
//! * `multi_city_prob` / `multi_name_prob` — **multi-valuedness**, the
//!   RDF-specific fan-out that makes ans-based drill-out incorrect
//!   (Example 5) and that benchmark E4/E7 sweep;
//! * `n_cities` / `n_ages` — dimension cardinality, which drives dice
//!   selectivity;
//! * `max_posts`/`post_skew` — Zipf-skewed measure bag sizes;
//! * `missing_age_prob` — heterogeneity: bloggers that classify but lack a
//!   dimension value (they silently drop out of cubes on that dimension).
//!
//! Generation is fully deterministic for a given `seed`.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfcube_core::AnalyticalSchema;
use rdfcube_rdf::{Graph, Term, TermId, Triple};

/// Configuration of the blogger-world generator.
#[derive(Debug, Clone)]
pub struct BloggerConfig {
    /// Number of bloggers (facts).
    pub n_bloggers: usize,
    /// Maximum posts per blogger (Zipf-distributed in `1..=max_posts`).
    pub max_posts: usize,
    /// Zipf exponent for the posts-per-blogger distribution.
    pub post_skew: f64,
    /// Number of distinct cities (the `dcity` dimension's domain).
    pub n_cities: usize,
    /// Number of distinct ages (the `dage` dimension's domain, starting 18).
    pub n_ages: usize,
    /// Number of distinct sites posts appear on.
    pub n_sites: usize,
    /// Probability a blogger lives in a second city (multi-valuedness).
    pub multi_city_prob: f64,
    /// Probability a blogger has a second name (multi-valuedness).
    pub multi_name_prob: f64,
    /// Probability a blogger has no recorded age (heterogeneity).
    pub missing_age_prob: f64,
    /// Average number of acquaintance edges per blogger.
    pub acquaintances_per_blogger: f64,
    /// RNG seed — same seed, same graph.
    pub seed: u64,
}

impl Default for BloggerConfig {
    fn default() -> Self {
        BloggerConfig {
            n_bloggers: 1_000,
            max_posts: 8,
            post_skew: 1.0,
            n_cities: 50,
            n_ages: 50,
            n_sites: 100,
            multi_city_prob: 0.1,
            multi_name_prob: 0.2,
            missing_age_prob: 0.05,
            acquaintances_per_blogger: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

/// The "large world" target size: ≥1M base triples, roughly 10× the usual
/// benchmark ceiling — the scale the sharded store is built for. Used by
/// [`BloggerConfig::large_world`], the report binary's `--scale large`
/// flag, and the `e12_sharded` bench.
pub const LARGE_WORLD_TRIPLES: usize = 1_000_000;

impl BloggerConfig {
    /// A config scaled to approximately `triples` base triples (the
    /// benchmark sweeps specify dataset sizes this way).
    pub fn with_approx_triples(triples: usize) -> Self {
        // Rough per-blogger triple count for the defaults: 1 type + ~0.95
        // age + ~1.1 city + ~1.2 name + 1 acquaintance + E[posts]·3 where
        // the Zipf(8, 1.0) mean is ≈ 2.94 → ≈ 14 triples per blogger.
        let per_blogger = 14;
        BloggerConfig {
            n_bloggers: (triples / per_blogger).max(1),
            ..Default::default()
        }
    }

    /// The ~[`LARGE_WORLD_TRIPLES`]-triple blogger world. Same default
    /// seed as every other config, so the world is fully deterministic:
    /// two `large_world()` graphs are triple-for-triple identical.
    pub fn large_world() -> Self {
        Self::with_approx_triples(LARGE_WORLD_TRIPLES)
    }
}

/// The Figure 1 analytical schema for the generated base vocabulary.
pub fn blogger_schema() -> AnalyticalSchema {
    let mut s = AnalyticalSchema::new("blog");
    s.add_node("Blogger", "n(?x) :- ?x rdf:type Person")
        .add_node("Age", "n(?a) :- ?x age ?a")
        .add_node("City", "n(?c) :- ?x city ?c")
        .add_node("Name", "n(?n) :- ?x name ?n")
        .add_node("BlogPost", "n(?p) :- ?x posted ?p")
        .add_node("Site", "n(?s) :- ?p on ?s")
        .add_node("Value", "n(?w) :- ?p words ?w")
        .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
        .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
        .add_edge("identifiedBy", "Blogger", "Name", "e(?x, ?n) :- ?x name ?n")
        .add_edge(
            "acquaintedWith",
            "Blogger",
            "Blogger",
            "e(?x, ?y) :- ?x knows ?y",
        )
        .add_edge(
            "wrotePost",
            "Blogger",
            "BlogPost",
            "e(?x, ?p) :- ?x posted ?p",
        )
        .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s")
        .add_edge(
            "hasWordCount",
            "BlogPost",
            "Value",
            "e(?p, ?w) :- ?p words ?w",
        );
    s
}

/// The classifier text of the paper's Example 1 (count of sites by age and
/// city) against a materialized blogger instance.
pub const EXAMPLE1_CLASSIFIER: &str =
    "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity";

/// The measure text of the paper's Example 1.
pub const EXAMPLE1_MEASURE: &str =
    "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite";

/// The measure text of the paper's Example 4 (word counts).
pub const EXAMPLE4_MEASURE: &str =
    "m(?x, ?vwords) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p hasWordCount ?vwords";

/// Generates the base (pre-lens) graph.
pub fn generate_base(cfg: &BloggerConfig) -> Graph {
    generate(cfg, Vocab::base())
}

/// Generates the analytical-schema instance directly (same shape as
/// `blogger_schema().materialize(generate_base(cfg))`, minus the
/// intermediate-class typings benchmarks never touch).
pub fn generate_instance(cfg: &BloggerConfig) -> Graph {
    generate(cfg, Vocab::instance())
}

/// Predicate vocabulary: the generator emits identical structure for the
/// base graph and the instance graph, only the names differ.
struct Vocab {
    person_class: &'static str,
    age: &'static str,
    city: &'static str,
    name: &'static str,
    knows: &'static str,
    posted: &'static str,
    on: &'static str,
    words: &'static str,
}

impl Vocab {
    fn base() -> Self {
        Vocab {
            person_class: "Person",
            age: "age",
            city: "city",
            name: "name",
            knows: "knows",
            posted: "posted",
            on: "on",
            words: "words",
        }
    }

    fn instance() -> Self {
        Vocab {
            person_class: "Blogger",
            age: "hasAge",
            city: "livesIn",
            name: "identifiedBy",
            knows: "acquaintedWith",
            posted: "wrotePost",
            on: "postedOn",
            words: "hasWordCount",
        }
    }
}

fn generate(cfg: &BloggerConfig, vocab: Vocab) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let posts_dist = Zipf::new(cfg.max_posts.max(1), cfg.post_skew);
    let site_dist = Zipf::new(cfg.n_sites.max(1), 1.0);

    // Intern the fixed vocabulary and the dimension domains once, then stage
    // id-level triples for one bulk load at the end: the store sorts + dedups
    // each index a single time instead of maintaining them per insert.
    let rdf_type = g.encode(&Term::iri(rdfcube_rdf::vocab::RDF_TYPE));
    let class = g.encode(&Term::iri(vocab.person_class));
    let p_age = g.encode(&Term::iri(vocab.age));
    let p_city = g.encode(&Term::iri(vocab.city));
    let p_name = g.encode(&Term::iri(vocab.name));
    let p_knows = g.encode(&Term::iri(vocab.knows));
    let p_posted = g.encode(&Term::iri(vocab.posted));
    let p_on = g.encode(&Term::iri(vocab.on));
    let p_words = g.encode(&Term::iri(vocab.words));

    let cities: Vec<TermId> = (0..cfg.n_cities.max(1))
        .map(|i| g.encode(&Term::literal(format!("city{i}"))))
        .collect();
    let sites: Vec<TermId> = (0..cfg.n_sites.max(1))
        .map(|i| g.encode(&Term::iri(format!("site{i}"))))
        .collect();

    let mut staged: Vec<Triple> = Vec::with_capacity(cfg.n_bloggers * 8);
    let mut post_counter = 0usize;
    for b in 0..cfg.n_bloggers {
        let user = g.encode(&Term::iri(format!("user{b}")));
        staged.push(Triple::new(user, rdf_type, class));

        if !rng.gen_bool(cfg.missing_age_prob.clamp(0.0, 1.0)) {
            let age = 18 + (rng.gen_range(0..cfg.n_ages.max(1)) as i64);
            let age = g.encode(&Term::integer(age));
            staged.push(Triple::new(user, p_age, age));
        }

        let city = cities[rng.gen_range(0..cities.len())];
        staged.push(Triple::new(user, p_city, city));
        if rng.gen_bool(cfg.multi_city_prob.clamp(0.0, 1.0)) {
            let second = cities[rng.gen_range(0..cities.len())];
            // May coincide with the first, in which case the bulk loader's
            // dedup absorbs it — exactly like real RDF data.
            staged.push(Triple::new(user, p_city, second));
        }

        let name = g.encode(&Term::literal(format!("name{b}")));
        staged.push(Triple::new(user, p_name, name));
        if rng.gen_bool(cfg.multi_name_prob.clamp(0.0, 1.0)) {
            let alias = g.encode(&Term::literal(format!("alias{b}")));
            staged.push(Triple::new(user, p_name, alias));
        }

        let n_acq = cfg.acquaintances_per_blogger.max(0.0);
        let acq_count =
            n_acq.floor() as usize + usize::from(rng.gen_bool(n_acq.fract().clamp(0.0, 1.0)));
        for _ in 0..acq_count.min(cfg.n_bloggers.saturating_sub(1)) {
            let other = rng.gen_range(0..cfg.n_bloggers);
            if other != b {
                let other = g.encode(&Term::iri(format!("user{other}")));
                staged.push(Triple::new(user, p_knows, other));
            }
        }

        let n_posts = posts_dist.sample(&mut rng);
        for _ in 0..n_posts {
            let post = g.encode(&Term::iri(format!("post{post_counter}")));
            post_counter += 1;
            staged.push(Triple::new(user, p_posted, post));
            let site = sites[site_dist.sample(&mut rng) - 1];
            staged.push(Triple::new(post, p_on, site));
            let words = rng.gen_range(50..=2000);
            let words = g.encode(&Term::integer(words));
            staged.push(Triple::new(post, p_words, words));
        }
    }
    g.bulk_insert_ids(staged);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_core::{ExtendedQuery, OlapSession};
    use rdfcube_engine::AggFunc;

    #[test]
    fn generation_is_deterministic() {
        let cfg = BloggerConfig {
            n_bloggers: 50,
            ..Default::default()
        };
        let a = rdfcube_rdf::to_ntriples(&generate_base(&cfg));
        let b = rdfcube_rdf::to_ntriples(&generate_base(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = BloggerConfig {
            n_bloggers: 50,
            ..Default::default()
        };
        let other = BloggerConfig {
            seed: 1,
            ..cfg.clone()
        };
        assert_ne!(
            rdfcube_rdf::to_ntriples(&generate_base(&cfg)),
            rdfcube_rdf::to_ntriples(&generate_base(&other))
        );
    }

    #[test]
    fn approx_triples_is_in_the_ballpark() {
        let cfg = BloggerConfig::with_approx_triples(20_000);
        let g = generate_base(&cfg);
        let n = g.len();
        assert!(
            (10_000..40_000).contains(&n),
            "asked ≈20k, got {n} (cfg: {} bloggers)",
            cfg.n_bloggers
        );
    }

    #[test]
    fn large_world_config_targets_a_million_triples() {
        // Config math only — the 1M world itself is generated in the
        // release-mode `e12_sharded` bench, not in debug tests.
        let cfg = BloggerConfig::large_world();
        assert_eq!(cfg.n_bloggers, LARGE_WORLD_TRIPLES / 14);
        assert!(cfg.n_bloggers >= 70_000);
        assert_eq!(cfg.seed, BloggerConfig::default().seed, "deterministic");
    }

    #[test]
    fn instance_matches_materialized_base_on_cube_answers() {
        // The shortcut instance and the schema-materialized instance answer
        // the paper's Example 1 cube identically.
        let cfg = BloggerConfig {
            n_bloggers: 120,
            seed: 9,
            ..Default::default()
        };
        let mut base = generate_base(&cfg);
        let materialized = blogger_schema().materialize(&mut base).unwrap();
        let direct = generate_instance(&cfg);

        let cube_of = |g: Graph| {
            let mut s = OlapSession::new(g);
            let h = s
                .register(EXAMPLE1_CLASSIFIER, EXAMPLE1_MEASURE, AggFunc::Count)
                .unwrap();
            // Decode cells to strings so cubes over different dictionaries
            // compare meaningfully.
            let dict = s.instance().dict();
            let mut cells: Vec<(Vec<String>, String)> = s
                .answer(h)
                .cells()
                .iter()
                .map(|(k, v)| {
                    (
                        k.iter().map(|&id| dict.term(id).to_string()).collect(),
                        v.display(dict),
                    )
                })
                .collect();
            cells.sort();
            cells
        };
        assert_eq!(cube_of(materialized), cube_of(direct));
    }

    #[test]
    fn multivaluedness_knob_works() {
        let none = BloggerConfig {
            n_bloggers: 300,
            multi_city_prob: 0.0,
            ..Default::default()
        };
        let lots = BloggerConfig {
            n_bloggers: 300,
            multi_city_prob: 0.9,
            n_cities: 1000, // large domain → second city rarely collides
            ..none.clone()
        };
        let count_city_triples = |g: &Graph| {
            let p = g.dict().iri_id("city").unwrap();
            g.count_matching(rdfcube_rdf::TriplePattern::new(None, Some(p), None))
        };
        let g_none = generate_base(&none);
        let g_lots = generate_base(&lots);
        assert_eq!(count_city_triples(&g_none), 300);
        assert!(count_city_triples(&g_lots) > 500);
    }

    #[test]
    fn heterogeneity_missing_ages() {
        let cfg = BloggerConfig {
            n_bloggers: 200,
            missing_age_prob: 0.5,
            ..Default::default()
        };
        let g = generate_base(&cfg);
        let p = g.dict().iri_id("age").unwrap();
        let with_age = g.count_matching(rdfcube_rdf::TriplePattern::new(None, Some(p), None));
        assert!(
            with_age < 160,
            "about half the bloggers should lack an age, got {with_age}"
        );
    }

    #[test]
    fn example_queries_parse_against_instance() {
        let g = generate_instance(&BloggerConfig {
            n_bloggers: 30,
            ..Default::default()
        });
        let mut s = OlapSession::new(g);
        let h = s
            .register(EXAMPLE1_CLASSIFIER, EXAMPLE4_MEASURE, AggFunc::Avg)
            .unwrap();
        assert!(!s.answer(h).is_empty());
        let _ = ExtendedQuery::from_query; // silence potential unused import churn
    }
}
