//! # rdfcube-datagen — seeded synthetic workloads for RDF analytics
//!
//! Generators for the two worlds the paper's examples live in:
//!
//! * [`blogger`] — the Figure 1 blogging schema (bloggers, ages, cities,
//!   posts, sites, word counts) with controllable scale, dimension
//!   cardinality, heterogeneity and — crucially for the paper's algorithms —
//!   **multi-valuedness**;
//! * [`video`] — the Figure 3 / Example 6 video-hosting schema used by the
//!   DRILL-IN benchmarks;
//! * [`zipf`] — the skew sampler both use;
//! * [`workload`] — Zipf-skewed query workloads of distinct-but-derivable
//!   slice/dice/drill-out variants, for exercising the view-selection
//!   advisor.
//!
//! All generation is deterministic per seed, so benchmark runs are
//! reproducible and parser/writer round-trips can be golden-tested.

#![warn(missing_docs)]

pub mod blogger;
pub mod video;
pub mod workload;
pub mod zipf;

pub use blogger::{
    blogger_schema, generate_base, generate_instance, BloggerConfig, EXAMPLE1_CLASSIFIER,
    EXAMPLE1_MEASURE, EXAMPLE4_MEASURE, LARGE_WORLD_TRIPLES,
};
pub use video::{generate_videos, VideoConfig, BROWSERS, EXAMPLE6_CLASSIFIER, EXAMPLE6_MEASURE};
pub use workload::{variant_pool, zipf_sequence, zipf_workload, DimDomain};
pub use zipf::Zipf;
