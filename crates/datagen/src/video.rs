//! The video world — the paper's Figure 3 / Example 6 scenario, generated
//! at scale for the DRILL-IN benchmarks.
//!
//! Videos are posted on websites; each website has a URL and supports one or
//! more browsers; each video has a view count. The classifier of Example 6
//! groups view sums by URL, and DRILL-IN adds the browser dimension, whose
//! values live two hops away from the fact — precisely the case where
//! Algorithm 2's auxiliary query must consult the instance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfcube_rdf::{Graph, Term, TermId, Triple};

/// Configuration of the video-world generator.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Number of videos (facts).
    pub n_videos: usize,
    /// Number of websites.
    pub n_websites: usize,
    /// Maximum websites a video is posted on (uniform in `1..=max`).
    pub max_postings: usize,
    /// Maximum browsers a website supports (uniform in `1..=max`) —
    /// multi-valuedness of the drilled-in dimension.
    pub max_browsers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            n_videos: 1_000,
            n_websites: 100,
            max_postings: 3,
            max_browsers: 2,
            seed: 7,
        }
    }
}

/// Browser names used by the generator.
pub const BROWSERS: [&str; 5] = ["firefox", "chrome", "safari", "edge", "opera"];

/// The Example 6 classifier over the generated instance.
pub const EXAMPLE6_CLASSIFIER: &str = "c(?x, ?d2) :- ?x rdf:type Video, ?x postedOn ?d1, \
     ?d1 hasUrl ?d2, ?d1 supportsBrowser ?d3";

/// The Example 6 measure.
pub const EXAMPLE6_MEASURE: &str = "m(?x, ?v) :- ?x rdf:type Video, ?x viewNum ?v";

/// Generates the video-world instance graph.
pub fn generate_videos(cfg: &VideoConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();

    // Intern the vocabulary up front and stage id-level triples for one
    // bulk load — same fast path as the blogger generator.
    let rdf_type = g.encode(&Term::iri(rdfcube_rdf::vocab::RDF_TYPE));
    let video_class = g.encode(&Term::iri("Video"));
    let p_posted = g.encode(&Term::iri("postedOn"));
    let p_url = g.encode(&Term::iri("hasUrl"));
    let p_browser = g.encode(&Term::iri("supportsBrowser"));
    let p_views = g.encode(&Term::iri("viewNum"));
    let browsers: Vec<TermId> = BROWSERS.iter().map(|b| g.encode(&Term::iri(*b))).collect();

    let websites: Vec<TermId> = (0..cfg.n_websites.max(1))
        .map(|i| g.encode(&Term::iri(format!("website{i}"))))
        .collect();
    let mut staged: Vec<Triple> = Vec::with_capacity(cfg.n_videos * 4 + websites.len() * 3);
    for (i, &site) in websites.iter().enumerate() {
        let url = g.encode(&Term::iri(format!("URL{i}")));
        staged.push(Triple::new(site, p_url, url));
        let n_browsers = rng.gen_range(1..=cfg.max_browsers.clamp(1, BROWSERS.len()));
        // Choose distinct browsers by rotating through a shuffled start.
        let start = rng.gen_range(0..BROWSERS.len());
        for b in 0..n_browsers {
            let browser = browsers[(start + b) % BROWSERS.len()];
            staged.push(Triple::new(site, p_browser, browser));
        }
    }

    for v in 0..cfg.n_videos {
        let video = g.encode(&Term::iri(format!("video{v}")));
        staged.push(Triple::new(video, rdf_type, video_class));
        let views = g.encode(&Term::integer(rng.gen_range(0..100_000)));
        staged.push(Triple::new(video, p_views, views));
        let n_postings = rng.gen_range(1..=cfg.max_postings.max(1));
        for _ in 0..n_postings {
            let site = websites[rng.gen_range(0..websites.len())];
            staged.push(Triple::new(video, p_posted, site));
        }
    }
    g.bulk_insert_ids(staged);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_core::{OlapOp, OlapSession, Strategy};
    use rdfcube_engine::AggFunc;

    #[test]
    fn deterministic() {
        let cfg = VideoConfig {
            n_videos: 40,
            ..Default::default()
        };
        assert_eq!(
            rdfcube_rdf::to_ntriples(&generate_videos(&cfg)),
            rdfcube_rdf::to_ntriples(&generate_videos(&cfg))
        );
    }

    #[test]
    fn every_website_has_url_and_browser() {
        let cfg = VideoConfig {
            n_videos: 10,
            n_websites: 20,
            ..Default::default()
        };
        let g = generate_videos(&cfg);
        let url = g.dict().iri_id("hasUrl").unwrap();
        let browser = g.dict().iri_id("supportsBrowser").unwrap();
        assert_eq!(
            g.count_matching(rdfcube_rdf::TriplePattern::new(None, Some(url), None)),
            20
        );
        assert!(g.count_matching(rdfcube_rdf::TriplePattern::new(None, Some(browser), None)) >= 20);
    }

    #[test]
    fn example_6_drill_in_runs_on_generated_world() {
        let g = generate_videos(&VideoConfig {
            n_videos: 60,
            ..Default::default()
        });
        let mut s = OlapSession::new(g);
        let h = s
            .register(EXAMPLE6_CLASSIFIER, EXAMPLE6_MEASURE, AggFunc::Sum)
            .unwrap();
        let (h2, strategy) = s
            .transform(h, &OlapOp::DrillIn { var: "d3".into() })
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm2);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
        assert!(s.answer(h2).len() >= s.answer(h).len());
    }
}
