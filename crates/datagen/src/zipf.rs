//! A small Zipf-distributed integer sampler.
//!
//! Post counts per blogger and site popularity are skewed in any realistic
//! blogging workload; `rand` 0.8 does not ship a Zipf distribution (that
//! lives in `rand_distr`, not available offline), so we provide a compact
//! inverse-CDF sampler: O(n) setup, O(log n) sampling, exact for any finite
//! support.

use rand::Rng;

/// Zipf distribution over `{1, …, n}` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[k-1] = P(X ≤ k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution. `n ≥ 1`; `s ≥ 0` (0 = uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a value in `{1, …, n}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is NaN-free"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The support size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn skew_prefers_small_values() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        let mut big = 0;
        for _ in 0..10_000 {
            match z.sample(&mut rng) {
                1 => ones += 1,
                v if v > 50 => big += 1,
                _ => {}
            }
        }
        assert!(
            ones > big,
            "rank 1 ({ones}) should dominate ranks >50 ({big})"
        );
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "counts {counts:?} not ~uniform"
            );
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 1);
        assert_eq!(z.n(), 1);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
