//! Materialized relations and the relational-algebra operators the paper's
//! algorithms are written in (π projection, σ selection, δ deduplication,
//! ⋈ natural join).
//!
//! A [`Relation`] stores rows of dictionary-encoded terms in one flat,
//! cache-friendly buffer; the schema names each column with the [`VarId`] it
//! binds. Operators follow the paper's convention: **bag semantics by
//! default** (§3: "all relational algebra operators are assumed to have bag
//! semantics"), with an explicit [`Relation::distinct`] for δ.

use crate::error::EngineError;
use crate::var::VarId;
use rdfcube_rdf::fx::{FxHashMap, FxHashSet};
use rdfcube_rdf::TermId;

/// A materialized relation over dictionary-encoded terms.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    schema: Vec<VarId>,
    data: Vec<TermId>,
}

impl Relation {
    /// Creates an empty relation with the given column schema.
    pub fn new(schema: Vec<VarId>) -> Self {
        Relation {
            schema,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation pre-sized for `rows` rows.
    pub fn with_capacity(schema: Vec<VarId>, rows: usize) -> Self {
        let arity = schema.len();
        Relation {
            schema,
            data: Vec::with_capacity(rows * arity),
        }
    }

    /// The column schema.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.schema.is_empty() {
            0
        } else {
            self.data.len() / self.schema.len()
        }
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row; its length must equal the arity.
    pub fn push_row(&mut self, row: &[TermId]) {
        debug_assert_eq!(row.len(), self.arity(), "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[TermId] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[TermId]> {
        let a = self.arity().max(1);
        self.data.chunks_exact(a)
    }

    /// Index of the column bound to `v`.
    pub fn col(&self, v: VarId) -> Option<usize> {
        self.schema.iter().position(|&c| c == v)
    }

    /// Index of the column bound to `v`, or a schema error naming it.
    pub fn col_required(&self, v: VarId) -> Result<usize, EngineError> {
        self.col(v)
            .ok_or_else(|| EngineError::Schema(format!("column {v} not present in relation")))
    }

    /// π — projects onto `cols` (which may repeat or reorder columns).
    /// Bag semantics: row multiplicities are preserved.
    pub fn project(&self, cols: &[VarId]) -> Result<Relation, EngineError> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|&v| self.col_required(v))
            .collect::<Result<_, _>>()?;
        Ok(self.project_indices(cols.to_vec(), &idx))
    }

    /// π by column positions, with an explicit output schema.
    pub fn project_indices(&self, schema: Vec<VarId>, idx: &[usize]) -> Relation {
        let mut out = Relation::with_capacity(schema, self.len());
        for row in self.rows() {
            for &i in idx {
                out.data.push(row[i]);
            }
        }
        out
    }

    /// σ — keeps the rows satisfying `keep`.
    pub fn select<F: FnMut(&[TermId]) -> bool>(&self, mut keep: F) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for row in self.rows() {
            if keep(row) {
                out.data.extend_from_slice(row);
            }
        }
        out
    }

    /// δ — removes duplicate rows (first occurrence kept, order otherwise
    /// preserved).
    pub fn distinct(&self) -> Relation {
        let mut seen: FxHashSet<&[TermId]> = FxHashSet::default();
        let mut out = Relation::new(self.schema.clone());
        for row in self.rows() {
            if seen.insert(row) {
                out.data.extend_from_slice(row);
            }
        }
        out
    }

    /// ⋈ — natural hash join on all shared columns. The output schema is
    /// `self.schema` followed by the non-shared columns of `other`.
    /// Bag semantics: each matching pair of rows produces one output row.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let shared: Vec<(usize, usize)> = self
            .schema
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| other.col(v).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.arity())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let mut schema = self.schema.clone();
        schema.extend(other_extra.iter().map(|&j| other.schema[j]));

        let mut out = Relation::new(schema);
        if shared.is_empty() {
            // Degenerates to a cartesian product.
            for left in self.rows() {
                for right in other.rows() {
                    out.data.extend_from_slice(left);
                    out.data.extend(other_extra.iter().map(|&j| right[j]));
                }
            }
            return out;
        }

        // Build on the right side, probe with the left, so output order
        // follows the left relation (deterministic given its order).
        let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
        for (ri, right) in other.rows().enumerate() {
            let key: Vec<TermId> = shared.iter().map(|&(_, j)| right[j]).collect();
            table.entry(key).or_default().push(ri);
        }
        let mut key = Vec::with_capacity(shared.len());
        for left in self.rows() {
            key.clear();
            key.extend(shared.iter().map(|&(i, _)| left[i]));
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let right = other.row(ri);
                    out.data.extend_from_slice(left);
                    out.data.extend(other_extra.iter().map(|&j| right[j]));
                }
            }
        }
        out
    }

    /// Rows sorted lexicographically — canonical form for comparisons in
    /// tests and for deterministic output.
    pub fn sorted_rows(&self) -> Vec<Vec<TermId>> {
        let mut rows: Vec<Vec<TermId>> = self.rows().map(|r| r.to_vec()).collect();
        rows.sort_unstable();
        rows
    }

    /// True if `self` and `other` contain the same bag of rows under the
    /// same schema (order-insensitive).
    pub fn same_bag(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.sorted_rows() == other.sorted_rows()
    }

    /// Renames a column in place (used when aligning relations produced by
    /// different queries before a join, e.g. classifier ⋈ measure on the
    /// paper's shared root `x`).
    pub fn rename(&mut self, from: VarId, to: VarId) -> Result<(), EngineError> {
        let i = self.col_required(from)?;
        self.schema[i] = to;
        Ok(())
    }

    /// Replaces the whole schema (same arity required). Classifier and
    /// measure queries own independent variable registries whose numeric ids
    /// overlap; before joining their results the caller rebases one side
    /// into the other's variable space with this.
    pub fn set_schema(&mut self, schema: Vec<VarId>) -> Result<(), EngineError> {
        if schema.len() != self.schema.len() {
            return Err(EngineError::Schema(format!(
                "set_schema arity mismatch: {} vs {}",
                schema.len(),
                self.schema.len()
            )));
        }
        self.schema = schema;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u16) -> VarId {
        VarId(n)
    }

    fn t(n: u32) -> TermId {
        TermId(n)
    }

    fn rel(schema: &[u16], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(schema.iter().map(|&n| v(n)).collect());
        for row in rows {
            let encoded: Vec<TermId> = row.iter().map(|&n| t(n)).collect();
            r.push_row(&encoded);
        }
        r
    }

    #[test]
    fn push_and_read_rows() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.row(1), &[t(3), t(4)]);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let p = r.project(&[v(1), v(0), v(1)]).unwrap();
        assert_eq!(p.schema(), &[v(1), v(0), v(1)]);
        assert_eq!(p.row(0), &[t(2), t(1), t(2)]);
    }

    #[test]
    fn project_unknown_column_errors() {
        let r = rel(&[0], &[&[1]]);
        assert!(r.project(&[v(9)]).is_err());
    }

    #[test]
    fn select_filters() {
        let r = rel(&[0], &[&[1], &[2], &[3]]);
        let s = r.select(|row| row[0].0 % 2 == 1);
        assert_eq!(s.sorted_rows(), vec![vec![t(1)], vec![t(3)]]);
    }

    #[test]
    fn distinct_removes_duplicates_keeps_order() {
        let r = rel(&[0, 1], &[&[1, 1], &[2, 2], &[1, 1], &[3, 3]]);
        let d = r.distinct();
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(0), &[t(1), t(1)]);
        assert_eq!(d.row(1), &[t(2), t(2)]);
        assert_eq!(d.row(2), &[t(3), t(3)]);
    }

    #[test]
    fn natural_join_on_shared_column() {
        // classifier(x, d) ⋈ measure(x, v) — the paper's pres join shape.
        let c = rel(&[0, 1], &[&[10, 100], &[11, 101], &[12, 102]]);
        let m = rel(&[0, 2], &[&[10, 7], &[10, 8], &[12, 9]]);
        let j = c.natural_join(&m);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
        assert_eq!(
            j.sorted_rows(),
            vec![
                vec![t(10), t(100), t(7)],
                vec![t(10), t(100), t(8)],
                vec![t(12), t(102), t(9)],
            ]
        );
    }

    #[test]
    fn join_respects_bag_semantics() {
        // Duplicate rows multiply: 2 left × 2 right = 4 output rows.
        let l = rel(&[0], &[&[1], &[1]]);
        let r = rel(&[0, 1], &[&[1, 5], &[1, 6]]);
        assert_eq!(l.natural_join(&r).len(), 4);
    }

    #[test]
    fn join_without_shared_columns_is_cartesian() {
        let l = rel(&[0], &[&[1], &[2]]);
        let r = rel(&[1], &[&[8], &[9]]);
        let j = l.natural_join(&r);
        assert_eq!(j.len(), 4);
        assert_eq!(j.schema(), &[v(0), v(1)]);
    }

    #[test]
    fn join_on_multiple_shared_columns() {
        let l = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 9, 4]]);
        let r = rel(&[1, 0], &[&[2, 1]]);
        let j = l.natural_join(&r);
        assert_eq!(j.sorted_rows(), vec![vec![t(1), t(2), t(3)]]);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
    }

    #[test]
    fn rename_aligns_columns_for_joins() {
        let mut l = rel(&[0], &[&[1]]);
        let r = rel(&[5], &[&[1]]);
        l.rename(v(0), v(5)).unwrap();
        assert_eq!(l.natural_join(&r).len(), 1);
        assert!(l.rename(v(7), v(8)).is_err());
    }

    #[test]
    fn same_bag_is_order_insensitive_but_schema_sensitive() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[0], &[&[2], &[1]]);
        let c = rel(&[1], &[&[1], &[2]]);
        assert!(a.same_bag(&b));
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::new(vec![v(0), v(1)]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.rows().count(), 0);
        assert!(r.distinct().is_empty());
    }
}
