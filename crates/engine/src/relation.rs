//! Materialized relations and the relational-algebra operators the paper's
//! algorithms are written in (π projection, σ selection, δ deduplication,
//! ⋈ natural join).
//!
//! A [`Relation`] stores rows of dictionary-encoded terms in one flat,
//! cache-friendly buffer with an explicit row count (so even zero-column
//! relations keep their multiplicity — the zero-dimensional-cube case); the
//! schema names each column with the [`VarId`] it binds. Operators follow
//! the paper's convention: **bag semantics by default** (§3: "all relational
//! algebra operators are assumed to have bag semantics"), with an explicit
//! [`Relation::distinct`] for δ.
//!
//! The hot operators avoid per-row heap traffic: δ and ⋈ specialize 1- and
//! 2-column keys by packing the `u32` term ids into a single `u64` (falling
//! back to slice/`Vec` keys at higher arities), and [`Relation::sort_by_cols`]
//! reorders the flat buffer through a row permutation — the primitive behind
//! the general (3+ dimension) path of sort-based grouped aggregation in
//! [`crate::aggfn`] (the 1-/2-column paths sort packed integers directly).

use crate::error::EngineError;
use crate::var::VarId;
use rdfcube_rdf::fx::{FxHashMap, FxHashSet};
use rdfcube_rdf::TermId;

/// Packs two 32-bit term ids into one order-preserving `u64` key
/// (lexicographic `(a, b)` order equals numeric order of the packed value).
#[inline]
pub(crate) fn pack2(a: TermId, b: TermId) -> u64 {
    (u64::from(a.0) << 32) | u64::from(b.0)
}

/// A materialized relation over dictionary-encoded terms.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    schema: Vec<VarId>,
    data: Vec<TermId>,
    /// Explicit row count: `data.len() / arity` when `arity > 0`, but also
    /// meaningful for zero-column relations, whose rows carry no data.
    rows: usize,
}

/// Iterator over the rows of a [`Relation`] as slices. Zero-arity relations
/// yield one empty slice per row, preserving multiplicity.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    data: &'a [TermId],
    arity: usize,
    remaining: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [TermId];

    #[inline]
    fn next(&mut self) -> Option<&'a [TermId]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.arity == 0 {
            Some(&[])
        } else {
            let (row, rest) = self.data.split_at(self.arity);
            self.data = rest;
            Some(row)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl Relation {
    /// Creates an empty relation with the given column schema.
    pub fn new(schema: Vec<VarId>) -> Self {
        Relation {
            schema,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Creates an empty relation pre-sized for `rows` rows.
    pub fn with_capacity(schema: Vec<VarId>, rows: usize) -> Self {
        let arity = schema.len();
        Relation {
            schema,
            data: Vec::with_capacity(rows * arity),
            rows: 0,
        }
    }

    /// The column schema.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows (multiplicity is tracked even at arity 0).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row; its length must equal the arity.
    pub fn push_row(&mut self, row: &[TermId]) {
        debug_assert_eq!(row.len(), self.arity(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a row produced by an iterator (the evaluator's head
    /// projection writes arena slots straight into the buffer, with no
    /// intermediate row `Vec`). The iterator must yield exactly `arity`
    /// values.
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = TermId>) {
        let before = self.data.len();
        self.data.extend(row);
        debug_assert_eq!(self.data.len() - before, self.arity(), "row arity mismatch");
        self.rows += 1;
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[TermId] {
        debug_assert!(i < self.rows, "row index out of range");
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates rows as slices (empty slices for a zero-column relation).
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.arity(),
            remaining: self.rows,
        }
    }

    /// Index of the column bound to `v`.
    pub fn col(&self, v: VarId) -> Option<usize> {
        self.schema.iter().position(|&c| c == v)
    }

    /// Index of the column bound to `v`, or a schema error naming it.
    pub fn col_required(&self, v: VarId) -> Result<usize, EngineError> {
        self.col(v)
            .ok_or_else(|| EngineError::Schema(format!("column {v} not present in relation")))
    }

    /// π — projects onto `cols` (which may repeat or reorder columns).
    /// Bag semantics: row multiplicities are preserved.
    pub fn project(&self, cols: &[VarId]) -> Result<Relation, EngineError> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|&v| self.col_required(v))
            .collect::<Result<_, _>>()?;
        Ok(self.project_indices(cols.to_vec(), &idx))
    }

    /// π by column positions, with an explicit output schema.
    pub fn project_indices(&self, schema: Vec<VarId>, idx: &[usize]) -> Relation {
        let mut out = Relation::with_capacity(schema, self.len());
        for row in self.rows() {
            for &i in idx {
                out.data.push(row[i]);
            }
            out.rows += 1;
        }
        out
    }

    /// σ — keeps the rows satisfying `keep`.
    pub fn select<F: FnMut(&[TermId]) -> bool>(&self, mut keep: F) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for row in self.rows() {
            if keep(row) {
                out.data.extend_from_slice(row);
                out.rows += 1;
            }
        }
        out
    }

    /// δ — removes duplicate rows (first occurrence kept, order otherwise
    /// preserved). 1- and 2-column relations dedup through packed `u64` keys
    /// instead of hashing slices.
    pub fn distinct(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        match self.arity() {
            0 => {
                // All rows are identical; at most one survives δ.
                out.rows = self.rows.min(1);
            }
            1 => {
                let mut seen: FxHashSet<u32> = FxHashSet::default();
                seen.reserve(self.rows);
                for row in self.rows() {
                    if seen.insert(row[0].0) {
                        out.data.push(row[0]);
                        out.rows += 1;
                    }
                }
            }
            2 => {
                let mut seen: FxHashSet<u64> = FxHashSet::default();
                seen.reserve(self.rows);
                for row in self.rows() {
                    if seen.insert(pack2(row[0], row[1])) {
                        out.data.extend_from_slice(row);
                        out.rows += 1;
                    }
                }
            }
            3 => {
                // Three u32 ids fit one u128 — covers the classifier shape
                // `[x, d₁, d₂]` without hashing slices.
                let mut seen: FxHashSet<u128> = FxHashSet::default();
                seen.reserve(self.rows);
                for row in self.rows() {
                    let key = (u128::from(row[0].0) << 64)
                        | (u128::from(row[1].0) << 32)
                        | u128::from(row[2].0);
                    if seen.insert(key) {
                        out.data.extend_from_slice(row);
                        out.rows += 1;
                    }
                }
            }
            _ => {
                let mut seen: FxHashSet<&[TermId]> = FxHashSet::default();
                seen.reserve(self.rows);
                for row in self.rows() {
                    if seen.insert(row) {
                        out.data.extend_from_slice(row);
                        out.rows += 1;
                    }
                }
            }
        }
        out
    }

    /// ⋈ — natural hash join on all shared columns. The output schema is
    /// `self.schema` followed by the non-shared columns of `other`.
    /// Bag semantics: each matching pair of rows produces one output row.
    ///
    /// Joins on one or two shared columns (the common shapes: classifier ⋈
    /// measure on the root, pres-style joins on root + one dimension) pack
    /// the key into a `u64` instead of allocating a `Vec<TermId>` per row.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let shared: Vec<(usize, usize)> = self
            .schema
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| other.col(v).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.arity())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let mut schema = self.schema.clone();
        schema.extend(other_extra.iter().map(|&j| other.schema[j]));

        let mut out = Relation::new(schema);
        match shared.as_slice() {
            [] => {
                // Degenerates to a cartesian product.
                for left in self.rows() {
                    for right in other.rows() {
                        out.data.extend_from_slice(left);
                        out.data.extend(other_extra.iter().map(|&j| right[j]));
                        out.rows += 1;
                    }
                }
            }
            &[(i, j)] => self.join_probe(
                other,
                &other_extra,
                &mut out,
                |right| u64::from(right[j].0),
                |left| u64::from(left[i].0),
            ),
            &[(i0, j0), (i1, j1)] => self.join_probe(
                other,
                &other_extra,
                &mut out,
                |right| pack2(right[j0], right[j1]),
                |left| pack2(left[i0], left[i1]),
            ),
            _ => {
                // General path: build on the right side, probe with the
                // left, so output order follows the left relation
                // (deterministic given its order). The probe key reuses one
                // buffer; only build-side keys allocate.
                let mut table: FxHashMap<Vec<TermId>, Vec<u32>> = FxHashMap::default();
                for (ri, right) in other.rows().enumerate() {
                    let key: Vec<TermId> = shared.iter().map(|&(_, j)| right[j]).collect();
                    table.entry(key).or_default().push(ri as u32);
                }
                let mut key = Vec::with_capacity(shared.len());
                for left in self.rows() {
                    key.clear();
                    key.extend(shared.iter().map(|&(i, _)| left[i]));
                    if let Some(matches) = table.get(&key) {
                        for &ri in matches {
                            let right = other.row(ri as usize);
                            out.data.extend_from_slice(left);
                            out.data.extend(other_extra.iter().map(|&j| right[j]));
                            out.rows += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Shared body of the packed-key join specializations: hash the right
    /// side under `right_key`, probe with `left_key`.
    ///
    /// Rows sharing a key are chained through one flat `next` array instead
    /// of a `Vec<row>` per hash entry, so building the table allocates
    /// exactly twice (map + chain) no matter how skewed the key
    /// distribution is. The chain is built in reverse so traversal visits
    /// right rows in their original order, keeping the output deterministic
    /// (left-major, right order within a left row).
    fn join_probe(
        &self,
        other: &Relation,
        other_extra: &[usize],
        out: &mut Relation,
        right_key: impl Fn(&[TermId]) -> u64,
        left_key: impl Fn(&[TermId]) -> u64,
    ) {
        const NONE: u32 = u32::MAX;
        let n = other.len();
        debug_assert!(n < NONE as usize, "relation too large for u32 row links");
        let mut first: FxHashMap<u64, u32> = FxHashMap::default();
        first.reserve(n);
        let mut next_link: Vec<u32> = vec![NONE; n];
        for ri in (0..n).rev() {
            match first.entry(right_key(other.row(ri))) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    next_link[ri] = *e.get();
                    e.insert(ri as u32);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ri as u32);
                }
            }
        }
        out.data.reserve(self.data.len());
        // The dominant join shape appends exactly one non-shared right
        // column (the measure value); a direct push skips the iterator
        // plumbing in the innermost loop.
        if let &[j] = other_extra {
            for left in self.rows() {
                if let Some(&start) = first.get(&left_key(left)) {
                    let mut ri = start;
                    while ri != NONE {
                        out.data.extend_from_slice(left);
                        out.data.push(other.row(ri as usize)[j]);
                        out.rows += 1;
                        ri = next_link[ri as usize];
                    }
                }
            }
            return;
        }
        for left in self.rows() {
            if let Some(&start) = first.get(&left_key(left)) {
                let mut ri = start;
                while ri != NONE {
                    let right = other.row(ri as usize);
                    out.data.extend_from_slice(left);
                    out.data.extend(other_extra.iter().map(|&j| right[j]));
                    out.rows += 1;
                    ri = next_link[ri as usize];
                }
            }
        }
    }

    /// Sorts rows in place, lexicographically by the column *positions* in
    /// `cols` (ties broken by original row order, so the sort is stable and
    /// deterministic). The flat buffer is permuted once, after sorting a
    /// row-index permutation.
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        let a = self.arity();
        if a == 0 || self.rows <= 1 {
            return;
        }
        let mut perm: Vec<u32> = (0..self.rows as u32).collect();
        let data = &self.data;
        perm.sort_unstable_by(|&x, &y| {
            let rx = &data[x as usize * a..x as usize * a + a];
            let ry = &data[y as usize * a..y as usize * a + a];
            cols.iter()
                .map(|&c| rx[c])
                .cmp(cols.iter().map(|&c| ry[c]))
                .then(x.cmp(&y))
        });
        let mut sorted = Vec::with_capacity(self.data.len());
        for &i in &perm {
            sorted.extend_from_slice(&self.data[i as usize * a..i as usize * a + a]);
        }
        self.data = sorted;
    }

    /// Rows sorted lexicographically — canonical form for comparisons in
    /// tests and for deterministic output.
    pub fn sorted_rows(&self) -> Vec<Vec<TermId>> {
        let mut rows: Vec<Vec<TermId>> = self.rows().map(|r| r.to_vec()).collect();
        rows.sort_unstable();
        rows
    }

    /// True if `self` and `other` contain the same bag of rows under the
    /// same schema (order-insensitive).
    pub fn same_bag(&self, other: &Relation) -> bool {
        self.schema == other.schema
            && self.rows == other.rows
            && self.sorted_rows() == other.sorted_rows()
    }

    /// Renames a column in place (used when aligning relations produced by
    /// different queries before a join, e.g. classifier ⋈ measure on the
    /// paper's shared root `x`).
    pub fn rename(&mut self, from: VarId, to: VarId) -> Result<(), EngineError> {
        let i = self.col_required(from)?;
        self.schema[i] = to;
        Ok(())
    }

    /// Replaces the whole schema (same arity required). Classifier and
    /// measure queries own independent variable registries whose numeric ids
    /// overlap; before joining their results the caller rebases one side
    /// into the other's variable space with this.
    pub fn set_schema(&mut self, schema: Vec<VarId>) -> Result<(), EngineError> {
        if schema.len() != self.schema.len() {
            return Err(EngineError::Schema(format!(
                "set_schema arity mismatch: {} vs {}",
                schema.len(),
                self.schema.len()
            )));
        }
        self.schema = schema;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u16) -> VarId {
        VarId(n)
    }

    fn t(n: u32) -> TermId {
        TermId(n)
    }

    fn rel(schema: &[u16], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(schema.iter().map(|&n| v(n)).collect());
        for row in rows {
            let encoded: Vec<TermId> = row.iter().map(|&n| t(n)).collect();
            r.push_row(&encoded);
        }
        r
    }

    #[test]
    fn push_and_read_rows() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.row(1), &[t(3), t(4)]);
    }

    #[test]
    fn zero_arity_relation_keeps_multiplicity() {
        // The zero-dimensional-cube case: q() under bag semantics counts
        // homomorphisms, so an arity-0 relation must remember its row count.
        let mut r = Relation::new(vec![]);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.rows().count(), 3);
        assert!(r.rows().all(|row| row.is_empty()));
        // δ collapses the indistinguishable rows to one.
        let d = r.distinct();
        assert_eq!(d.len(), 1);
        assert_eq!(d.rows().count(), 1);
        // Bag-semantics cartesian join multiplies multiplicities.
        let l = rel(&[0], &[&[1], &[2]]);
        assert_eq!(l.natural_join(&r).len(), 6);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let p = r.project(&[v(1), v(0), v(1)]).unwrap();
        assert_eq!(p.schema(), &[v(1), v(0), v(1)]);
        assert_eq!(p.row(0), &[t(2), t(1), t(2)]);
    }

    #[test]
    fn project_to_zero_columns_keeps_rows() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let p = r.project(&[]).unwrap();
        assert_eq!(p.arity(), 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn project_unknown_column_errors() {
        let r = rel(&[0], &[&[1]]);
        assert!(r.project(&[v(9)]).is_err());
    }

    #[test]
    fn select_filters() {
        let r = rel(&[0], &[&[1], &[2], &[3]]);
        let s = r.select(|row| row[0].0 % 2 == 1);
        assert_eq!(s.sorted_rows(), vec![vec![t(1)], vec![t(3)]]);
    }

    #[test]
    fn distinct_removes_duplicates_keeps_order() {
        let r = rel(&[0, 1], &[&[1, 1], &[2, 2], &[1, 1], &[3, 3]]);
        let d = r.distinct();
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(0), &[t(1), t(1)]);
        assert_eq!(d.row(1), &[t(2), t(2)]);
        assert_eq!(d.row(2), &[t(3), t(3)]);
    }

    #[test]
    fn distinct_agrees_across_arities() {
        // The packed 1-/2-column paths must agree with the general slice
        // path; simulate by comparing against sorted+dedup'd rows.
        for arity in 1u16..4 {
            let schema: Vec<u16> = (0..arity).collect();
            let mut r = Relation::new(schema.iter().map(|&n| v(n)).collect());
            for i in 0..40u32 {
                let row: Vec<TermId> = (0..arity).map(|c| t((i * 7 + u32::from(c)) % 5)).collect();
                r.push_row(&row);
            }
            let d = r.distinct();
            let mut expect = r.sorted_rows();
            expect.dedup();
            assert_eq!(d.sorted_rows(), expect, "arity {arity}");
        }
    }

    #[test]
    fn natural_join_on_shared_column() {
        // classifier(x, d) ⋈ measure(x, v) — the paper's pres join shape.
        let c = rel(&[0, 1], &[&[10, 100], &[11, 101], &[12, 102]]);
        let m = rel(&[0, 2], &[&[10, 7], &[10, 8], &[12, 9]]);
        let j = c.natural_join(&m);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
        assert_eq!(
            j.sorted_rows(),
            vec![
                vec![t(10), t(100), t(7)],
                vec![t(10), t(100), t(8)],
                vec![t(12), t(102), t(9)],
            ]
        );
    }

    #[test]
    fn join_respects_bag_semantics() {
        // Duplicate rows multiply: 2 left × 2 right = 4 output rows.
        let l = rel(&[0], &[&[1], &[1]]);
        let r = rel(&[0, 1], &[&[1, 5], &[1, 6]]);
        assert_eq!(l.natural_join(&r).len(), 4);
    }

    #[test]
    fn join_without_shared_columns_is_cartesian() {
        let l = rel(&[0], &[&[1], &[2]]);
        let r = rel(&[1], &[&[8], &[9]]);
        let j = l.natural_join(&r);
        assert_eq!(j.len(), 4);
        assert_eq!(j.schema(), &[v(0), v(1)]);
    }

    #[test]
    fn join_on_multiple_shared_columns() {
        let l = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 9, 4]]);
        let r = rel(&[1, 0], &[&[2, 1]]);
        let j = l.natural_join(&r);
        assert_eq!(j.sorted_rows(), vec![vec![t(1), t(2), t(3)]]);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
    }

    #[test]
    fn join_on_three_shared_columns_uses_general_path() {
        let l = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 6], &[1, 2, 9]]);
        let r = rel(&[2, 1, 0], &[&[3, 2, 1], &[6, 5, 4], &[8, 8, 8]]);
        let j = l.natural_join(&r);
        assert_eq!(
            j.sorted_rows(),
            vec![vec![t(1), t(2), t(3)], vec![t(4), t(5), t(6)]]
        );
    }

    #[test]
    fn rename_aligns_columns_for_joins() {
        let mut l = rel(&[0], &[&[1]]);
        let r = rel(&[5], &[&[1]]);
        l.rename(v(0), v(5)).unwrap();
        assert_eq!(l.natural_join(&r).len(), 1);
        assert!(l.rename(v(7), v(8)).is_err());
    }

    #[test]
    fn sort_by_cols_orders_and_is_stable() {
        let mut r = rel(&[0, 1], &[&[2, 10], &[1, 30], &[2, 5], &[1, 20], &[1, 30]]);
        r.sort_by_cols(&[0]);
        // Sorted by column 0; ties keep original order (stable).
        assert_eq!(
            r.rows().map(|x| x.to_vec()).collect::<Vec<_>>(),
            vec![
                vec![t(1), t(30)],
                vec![t(1), t(20)],
                vec![t(1), t(30)],
                vec![t(2), t(10)],
                vec![t(2), t(5)],
            ]
        );
        r.sort_by_cols(&[0, 1]);
        assert_eq!(r.row(0), &[t(1), t(20)]);
        assert_eq!(r.row(4), &[t(2), t(10)]);
    }

    #[test]
    fn same_bag_is_order_insensitive_but_schema_sensitive() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[0], &[&[2], &[1]]);
        let c = rel(&[1], &[&[1], &[2]]);
        assert!(a.same_bag(&b));
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::new(vec![v(0), v(1)]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.rows().count(), 0);
        assert!(r.distinct().is_empty());
    }
}
