//! Filter expressions over query variables.
//!
//! Extended analytical queries restrict dimensions with Σ (Definition 2).
//! Conceptually that is a selection over the classifier answer, but a good
//! evaluator pushes the selection *into* pattern matching so that bindings
//! violating Σ are discarded the moment the dimension variable binds —
//! before they fan out through the remaining joins. This module provides
//! the engine-level filter language that [`crate::eval::evaluate_filtered`]
//! applies during binding propagation (the E7c ablation quantifies the
//! difference against post-filtering).

use crate::var::VarId;
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{Dictionary, Term, TermId};

/// Comparison operators for [`FilterExpr::Compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equal (term identity).
    Eq,
    /// Not equal (term identity).
    Ne,
    /// Numerically less than.
    Lt,
    /// Numerically at most.
    Le,
    /// Numerically greater than.
    Gt,
    /// Numerically at least.
    Ge,
}

/// A predicate over a single query variable.
#[derive(Debug, Clone)]
pub enum FilterExpr {
    /// Compare the variable's binding against a constant. `Eq`/`Ne` use
    /// term identity; the ordered operators interpret both sides
    /// numerically and reject non-numeric bindings.
    Compare {
        /// The constrained variable.
        var: VarId,
        /// The comparison.
        op: CompareOp,
        /// The constant to compare against.
        value: TermId,
    },
    /// The binding must be a numeric literal within `lo..=hi`.
    NumericBetween {
        /// The constrained variable.
        var: VarId,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// The binding must be one of the given terms.
    OneOf {
        /// The constrained variable.
        var: VarId,
        /// Admissible term ids.
        set: FxHashSet<TermId>,
    },
}

impl FilterExpr {
    /// The variable this filter constrains.
    pub fn var(&self) -> VarId {
        match self {
            FilterExpr::Compare { var, .. }
            | FilterExpr::NumericBetween { var, .. }
            | FilterExpr::OneOf { var, .. } => *var,
        }
    }

    /// If this filter pins its variable to exactly one term — an `Eq`
    /// comparison or a one-element [`FilterExpr::OneOf`] (how slice
    /// constants arrive from Σ) — returns that term. The evaluator
    /// pre-binds such variables as constants before any pattern runs,
    /// pushing the selection into the index probes themselves (and, on a
    /// sharded store, into shard skipping).
    pub fn as_eq_constant(&self) -> Option<TermId> {
        match self {
            FilterExpr::Compare {
                op: CompareOp::Eq,
                value,
                ..
            } => Some(*value),
            FilterExpr::OneOf { set, .. } if set.len() == 1 => set.iter().next().copied(),
            _ => None,
        }
    }

    /// True if the binding `id` satisfies the filter.
    pub fn admits(&self, id: TermId, dict: &Dictionary) -> bool {
        match self {
            FilterExpr::Compare {
                op: CompareOp::Eq,
                value,
                ..
            } => id == *value,
            FilterExpr::Compare {
                op: CompareOp::Ne,
                value,
                ..
            } => id != *value,
            FilterExpr::Compare { op, value, .. } => {
                let (Some(a), Some(b)) = (
                    dict.get(id).and_then(Term::as_f64),
                    dict.get(*value).and_then(Term::as_f64),
                ) else {
                    return false;
                };
                match op {
                    CompareOp::Lt => a < b,
                    CompareOp::Le => a <= b,
                    CompareOp::Gt => a > b,
                    CompareOp::Ge => a >= b,
                    CompareOp::Eq | CompareOp::Ne => unreachable!("handled above"),
                }
            }
            FilterExpr::NumericBetween { lo, hi, .. } => dict
                .get(id)
                .and_then(Term::as_i64)
                .is_some_and(|v| *lo <= v && v <= *hi),
            FilterExpr::OneOf { set, .. } => set.contains(&id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_with(values: &[Term]) -> (Dictionary, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids = values.iter().map(|t| d.encode(t)).collect();
        (d, ids)
    }

    #[test]
    fn eq_constant_extraction() {
        let (_, ids) = dict_with(&[Term::integer(1), Term::integer(2)]);
        let v = VarId(0);
        let eq = FilterExpr::Compare {
            var: v,
            op: CompareOp::Eq,
            value: ids[0],
        };
        assert_eq!(eq.as_eq_constant(), Some(ids[0]));
        let ne = FilterExpr::Compare {
            var: v,
            op: CompareOp::Ne,
            value: ids[0],
        };
        assert_eq!(ne.as_eq_constant(), None);
        let single = FilterExpr::OneOf {
            var: v,
            set: [ids[1]].into_iter().collect(),
        };
        assert_eq!(single.as_eq_constant(), Some(ids[1]));
        let multi = FilterExpr::OneOf {
            var: v,
            set: ids.iter().copied().collect(),
        };
        assert_eq!(multi.as_eq_constant(), None);
        let between = FilterExpr::NumericBetween {
            var: v,
            lo: 0,
            hi: 9,
        };
        assert_eq!(between.as_eq_constant(), None);
    }

    #[test]
    fn eq_ne_are_term_identity() {
        let (d, ids) = dict_with(&[Term::integer(1), Term::literal("1")]);
        let v = VarId(0);
        let eq = FilterExpr::Compare {
            var: v,
            op: CompareOp::Eq,
            value: ids[0],
        };
        assert!(eq.admits(ids[0], &d));
        // "1" as a plain literal is a different *term* even if numerically equal.
        assert!(!eq.admits(ids[1], &d));
        let ne = FilterExpr::Compare {
            var: v,
            op: CompareOp::Ne,
            value: ids[0],
        };
        assert!(ne.admits(ids[1], &d));
    }

    #[test]
    fn ordered_comparisons_are_numeric() {
        let (d, ids) = dict_with(&[Term::integer(5), Term::integer(7), Term::literal("abc")]);
        let v = VarId(0);
        let lt = FilterExpr::Compare {
            var: v,
            op: CompareOp::Lt,
            value: ids[1],
        };
        assert!(lt.admits(ids[0], &d));
        assert!(!lt.admits(ids[1], &d));
        assert!(!lt.admits(ids[2], &d), "non-numeric must be rejected");
        let ge = FilterExpr::Compare {
            var: v,
            op: CompareOp::Ge,
            value: ids[0],
        };
        assert!(ge.admits(ids[1], &d));
        assert!(ge.admits(ids[0], &d));
    }

    #[test]
    fn between_and_one_of() {
        let (d, ids) = dict_with(&[Term::integer(25), Term::integer(45), Term::literal("NY")]);
        let v = VarId(1);
        let between = FilterExpr::NumericBetween {
            var: v,
            lo: 20,
            hi: 30,
        };
        assert!(between.admits(ids[0], &d));
        assert!(!between.admits(ids[1], &d));
        assert!(!between.admits(ids[2], &d));
        let one_of = FilterExpr::OneOf {
            var: v,
            set: [ids[2]].into_iter().collect(),
        };
        assert!(one_of.admits(ids[2], &d));
        assert!(!one_of.admits(ids[0], &d));
        assert_eq!(one_of.var(), v);
    }
}
