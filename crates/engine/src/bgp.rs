//! Basic graph pattern (BGP) queries.
//!
//! The paper's query language is the conjunctive subset of SPARQL:
//! `q(x̄) :- t₁, …, t_α` with a head (distinguished variables) and a body of
//! triple patterns. A *rooted* BGP additionally requires every variable to be
//! reachable from a distinguished root variable by following triple patterns
//! (§2 of the paper); classifiers and measures of analytical queries must be
//! rooted in the same analysis-class node.

use crate::error::EngineError;
use crate::pattern::{PatternTerm, QueryPattern};
use crate::var::{VarId, VarRegistry};
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{Dictionary, TermId};

/// A conjunctive query `q(head) :- body`.
#[derive(Debug, Clone)]
pub struct Bgp {
    name: String,
    head: Vec<VarId>,
    body: Vec<QueryPattern>,
    vars: VarRegistry,
}

impl Bgp {
    /// Creates an empty query named `name` (e.g. `"c"` for a classifier).
    pub fn new(name: impl Into<String>) -> Self {
        Bgp {
            name: name.into(),
            head: Vec::new(),
            body: Vec::new(),
            vars: VarRegistry::new(),
        }
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the query.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Interns a variable name (shared across head and body).
    pub fn var(&mut self, name: &str) -> VarId {
        self.vars.intern(name)
    }

    /// Appends a head (distinguished) variable.
    pub fn push_head(&mut self, v: VarId) {
        self.head.push(v);
    }

    /// Replaces the whole head.
    pub fn set_head(&mut self, head: Vec<VarId>) {
        self.head = head;
    }

    /// Appends a body triple pattern.
    pub fn push_pattern(&mut self, p: QueryPattern) {
        self.body.push(p);
    }

    /// Keeps only the body patterns for which `keep` returns true; `keep`
    /// receives the pattern's original position. Used by the DRILL-IN
    /// auxiliary-query construction (Definition 6), which extracts a subset
    /// of the classifier body while preserving the variable registry.
    pub fn retain_body<F: FnMut(usize, &QueryPattern) -> bool>(&mut self, mut keep: F) {
        let mut i = 0;
        self.body.retain(|p| {
            let keep_it = keep(i, p);
            i += 1;
            keep_it
        });
    }

    /// The distinguished variables, in head order.
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The body patterns.
    pub fn body(&self) -> &[QueryPattern] {
        &self.body
    }

    /// The variable registry.
    pub fn vars(&self) -> &VarRegistry {
        &self.vars
    }

    /// Mutable access to the registry (for synthesizing fresh variables).
    pub fn vars_mut(&mut self) -> &mut VarRegistry {
        &mut self.vars
    }

    /// Every distinct variable occurring in the body.
    pub fn body_vars(&self) -> Vec<VarId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for p in &self.body {
            for v in p.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The body variables as a set — the form the evaluator's static
    /// bound-variable tracking consumes.
    pub fn body_var_set(&self) -> FxHashSet<VarId> {
        self.body.iter().flat_map(|p| p.vars()).collect()
    }

    /// Body variables that are *not* distinguished (the existential ones).
    pub fn existential_vars(&self) -> Vec<VarId> {
        let head: FxHashSet<VarId> = self.head.iter().copied().collect();
        self.body_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Checks structural well-formedness: non-empty body, and every head
    /// variable occurs in the body.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.body.is_empty() {
            return Err(EngineError::Validation(format!(
                "query '{}' has an empty body",
                self.name
            )));
        }
        let body_vars = self.body_var_set();
        for &h in &self.head {
            if !body_vars.contains(&h) {
                return Err(EngineError::Validation(format!(
                    "head variable ?{} of query '{}' does not occur in its body",
                    self.vars.name(h),
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// True if every variable is reachable from `root` following triple
    /// patterns subject→object (and subject→predicate for predicate
    /// variables), per the paper's rooted-BGP definition.
    pub fn is_rooted_in(&self, root: VarId) -> bool {
        let all = self.body_var_set();
        if !all.contains(&root) {
            return false;
        }
        let mut reached: FxHashSet<VarId> = FxHashSet::default();
        reached.insert(root);
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.body {
                // A pattern whose subject is reached (a reached variable, or
                // a constant — constants are trivially "grounded") extends
                // reachability to its object and predicate variables.
                let subject_ok = match p.s {
                    PatternTerm::Var(v) => reached.contains(&v),
                    PatternTerm::Const(_) => false,
                };
                if subject_ok {
                    for pos in [p.p, p.o] {
                        if let PatternTerm::Var(v) = pos {
                            if reached.insert(v) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        all.iter().all(|v| reached.contains(v))
    }

    /// Convenience: the root of a rooted query is, by the paper's
    /// convention, its first head variable.
    pub fn root(&self) -> Option<VarId> {
        self.head.first().copied()
    }

    /// Validates and checks rootedness in the first head variable.
    pub fn validate_rooted(&self) -> Result<(), EngineError> {
        self.validate()?;
        let root = self.root().ok_or_else(|| {
            EngineError::Validation(format!("query '{}' has an empty head", self.name))
        })?;
        if !self.is_rooted_in(root) {
            return Err(EngineError::Validation(format!(
                "query '{}' is not rooted in ?{}",
                self.name,
                self.vars.name(root)
            )));
        }
        Ok(())
    }

    /// The set of constant term ids mentioned in the body.
    pub fn constants(&self) -> Vec<TermId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for p in &self.body {
            for pos in p.positions() {
                if let PatternTerm::Const(c) = pos {
                    if seen.insert(c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Renders the query in the paper's notation, decoding constants against
    /// `dict`.
    pub fn to_text(&self, dict: &Dictionary) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let heads: Vec<&str> = self.head.iter().map(|&v| self.vars.name(v)).collect();
        let _ = write!(s, "{}(", self.name);
        for (i, h) in heads.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "?{h}");
        }
        s.push_str(") :- ");
        for (i, p) in self.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            for (j, pos) in p.positions().into_iter().enumerate() {
                if j > 0 {
                    s.push(' ');
                }
                match pos {
                    PatternTerm::Var(v) => {
                        let _ = write!(s, "?{}", self.vars.name(v));
                    }
                    PatternTerm::Const(c) => {
                        let _ = write!(
                            s,
                            "{}",
                            dict.get(c).map_or_else(|| c.to_string(), |t| t.to_string())
                        );
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::Term;

    /// Builds the paper's rooted example:
    /// `q(x1,x2,x3) :- x1 acquaintedWith x2, x1 identifiedBy y1,
    ///                 x1 wrotePost y2, y2 postedOn x3`
    fn paper_rooted_query(dict: &mut Dictionary) -> Bgp {
        let mut q = Bgp::new("q");
        let x1 = q.var("x1");
        let x2 = q.var("x2");
        let x3 = q.var("x3");
        let y1 = q.var("y1");
        let y2 = q.var("y2");
        q.set_head(vec![x1, x2, x3]);
        let acq = dict.encode(&Term::iri("acquaintedWith"));
        let idb = dict.encode(&Term::iri("identifiedBy"));
        let wrote = dict.encode(&Term::iri("wrotePost"));
        let posted = dict.encode(&Term::iri("postedOn"));
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(x1),
            PatternTerm::Const(acq),
            PatternTerm::Var(x2),
        ));
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(x1),
            PatternTerm::Const(idb),
            PatternTerm::Var(y1),
        ));
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(x1),
            PatternTerm::Const(wrote),
            PatternTerm::Var(y2),
        ));
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(y2),
            PatternTerm::Const(posted),
            PatternTerm::Var(x3),
        ));
        q
    }

    #[test]
    fn paper_example_is_rooted_in_x1_only() {
        let mut dict = Dictionary::new();
        let q = paper_rooted_query(&mut dict);
        let x1 = q.vars().id("x1").unwrap();
        let x2 = q.vars().id("x2").unwrap();
        assert!(q.is_rooted_in(x1));
        assert!(!q.is_rooted_in(x2));
        assert!(q.validate_rooted().is_ok());
    }

    #[test]
    fn head_var_missing_from_body_is_invalid() {
        let mut q = Bgp::new("bad");
        let x = q.var("x");
        let ghost = q.var("ghost");
        q.set_head(vec![x, ghost]);
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(x),
            PatternTerm::Const(TermId(0)),
            PatternTerm::Var(x),
        ));
        let err = q.validate().unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn empty_body_is_invalid() {
        let q = Bgp::new("empty");
        assert!(q.validate().is_err());
    }

    #[test]
    fn existential_vars_are_body_minus_head() {
        let mut dict = Dictionary::new();
        let q = paper_rooted_query(&mut dict);
        let names: Vec<&str> = q
            .existential_vars()
            .into_iter()
            .map(|v| q.vars().name(v))
            .collect();
        assert_eq!(names, vec!["y1", "y2"]);
    }

    #[test]
    fn constants_are_collected_once() {
        let mut dict = Dictionary::new();
        let q = paper_rooted_query(&mut dict);
        assert_eq!(q.constants().len(), 4);
    }

    #[test]
    fn to_text_round_trips_shape() {
        let mut dict = Dictionary::new();
        let q = paper_rooted_query(&mut dict);
        let text = q.to_text(&dict);
        assert!(text.starts_with("q(?x1, ?x2, ?x3) :- "));
        assert!(text.contains("?x1 <acquaintedWith> ?x2"));
        assert!(text.contains("?y2 <postedOn> ?x3"));
    }

    #[test]
    fn disconnected_query_is_not_rooted() {
        let mut q = Bgp::new("q");
        let x = q.var("x");
        let z = q.var("z");
        q.set_head(vec![x]);
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(x),
            PatternTerm::Const(TermId(0)),
            PatternTerm::Var(x),
        ));
        q.push_pattern(QueryPattern::new(
            PatternTerm::Var(z),
            PatternTerm::Const(TermId(0)),
            PatternTerm::Var(z),
        ));
        assert!(!q.is_rooted_in(x));
        assert!(q.validate_rooted().is_err());
    }
}
