//! # rdfcube-engine — conjunctive query engine over RDF graphs
//!
//! Evaluates the paper's query language — BGP (basic graph pattern) queries,
//! the conjunctive subset of SPARQL — against [`rdfcube_rdf::Graph`] stores:
//!
//! * [`bgp`] — queries `q(x̄) :- t₁, …, t_α` with head/body, rootedness
//!   checking (§2 of the paper), and the paper's textual notation via
//!   [`parser::parse_query`];
//! * [`eval`] — index-backed evaluation with greedy join ordering, under
//!   **set** semantics (classifiers) or **bag** semantics (measures);
//! * [`relation`] — materialized relations with the relational algebra the
//!   paper's algorithms are stated in: π, σ, δ, ⋈ (bag semantics);
//! * [`aggfn`] — aggregation functions ⊕ with their distributivity
//!   classification, and grouped aggregation γ.
//!
//! ## Quick example
//!
//! ```
//! use rdfcube_engine::{evaluate, parse_query, Semantics};
//! use rdfcube_rdf::parse_turtle;
//!
//! let mut g = parse_turtle(
//!     "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .",
//! ).unwrap();
//! let c = parse_query(
//!     "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
//!     g.dict_mut(),
//! ).unwrap();
//! let rows = evaluate(&g, &c, Semantics::Set).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod aggfn;
pub mod bgp;
pub mod error;
pub mod eval;
pub mod filter;
pub mod parser;
pub mod pattern;
pub mod relation;
pub mod sparql;
pub mod var;

pub use aggfn::{group_aggregate, AggFunc, AggValue, Distributivity};
pub use bgp::Bgp;
pub use error::EngineError;
pub use eval::{
    eval_threads, evaluate, evaluate_filtered, evaluate_in_order, evaluate_nested_loop, explain,
    set_eval_threads, PlanStep, Semantics,
};
pub use filter::{CompareOp, FilterExpr};
pub use parser::parse_query;
pub use pattern::{PatternTerm, QueryPattern};
pub use relation::Relation;
pub use sparql::{evaluate_sparql, parse_sparql, SparqlQuery, SparqlResult, SparqlRow};
pub use var::{VarId, VarRegistry};
