//! A SPARQL 1.1 SELECT surface with grouping and aggregation.
//!
//! The paper's related-work section positions analytical queries against
//! SPARQL 1.1's "SQL-style grouping and aggregation, less expressive than
//! our AnQs". This module makes that comparison executable: a small SPARQL
//! SELECT dialect over the same BGP engine —
//!
//! ```text
//! PREFIX ex: <http://example.org/>
//! SELECT ?dage (COUNT(?site) AS ?n)
//! WHERE { ?x rdf:type ex:Blogger . ?x ex:hasAge ?dage .
//!         ?x ex:wrotePost ?p . ?p ex:postedOn ?site }
//! GROUP BY ?dage
//! ```
//!
//! Supported: `PREFIX`, `SELECT` with variables and one or more
//! `(AGG(?v) AS ?alias)` projections (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`,
//! and `COUNT(DISTINCT ?v)`), a `WHERE` block of triple patterns separated
//! by `.`, and `GROUP BY`. `SELECT *`, `FILTER`, `OPTIONAL` and property
//! paths are out of scope — the comparison only needs the aggregation
//! fragment.
//!
//! The key semantic difference from AnQs, preserved faithfully here: SPARQL
//! aggregates over the *joined solution multiset* of one BGP, so a fact
//! multi-valued along a grouped variable duplicates its measure values —
//! exactly the coupling the paper's classifier/measure split avoids
//! (see `sparql_vs_anq` in the tests, and the `sparql_aggregation` example).

use crate::aggfn::{group_aggregate, AggFunc, AggValue};
use crate::bgp::Bgp;
use crate::error::EngineError;
use crate::eval::{evaluate, Semantics};
use crate::pattern::{PatternTerm, QueryPattern};
use crate::relation::Relation;
use crate::var::VarId;
use rdfcube_rdf::fx::FxHashMap;
use rdfcube_rdf::{vocab, Dictionary, Literal, Term, TermId};

/// One aggregate projection `(AGG(?var) AS ?alias)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggProjection {
    /// The aggregation function.
    pub func: AggFunc,
    /// The aggregated variable.
    pub var: VarId,
    /// The alias it is bound to in the result.
    pub alias: String,
}

/// A parsed SPARQL SELECT query (aggregation fragment).
#[derive(Debug, Clone)]
pub struct SparqlQuery {
    /// The underlying BGP; its head lists every variable referenced by the
    /// projection (grouped variables first).
    pub bgp: Bgp,
    /// Plain projected variables (must equal the GROUP BY list when
    /// aggregates are present, per the SPARQL 1.1 grammar).
    pub group_vars: Vec<VarId>,
    /// Aggregate projections; empty for a plain SELECT.
    pub aggregates: Vec<AggProjection>,
}

/// One row of an aggregated SPARQL result: grouped values + one value per
/// aggregate projection.
#[derive(Debug, Clone, PartialEq)]
pub struct SparqlRow {
    /// Values of the grouped variables, in projection order.
    pub keys: Vec<TermId>,
    /// One aggregate value per `(AGG(...) AS ...)` projection.
    pub aggregates: Vec<AggValue>,
}

/// Result of evaluating a [`SparqlQuery`].
#[derive(Debug, Clone)]
pub enum SparqlResult {
    /// A plain SELECT: a relation over the projected variables.
    Solutions(Relation),
    /// An aggregated SELECT: one row per group, sorted by key.
    Groups(Vec<SparqlRow>),
}

/// Evaluates a parsed SPARQL query over a graph.
pub fn evaluate_sparql(
    graph: &rdfcube_rdf::Graph,
    query: &SparqlQuery,
) -> Result<SparqlResult, EngineError> {
    if query.aggregates.is_empty() {
        // Plain SELECT over the projected variables, set semantics (SPARQL
        // SELECT is bag by default, but without aggregates the distinction
        // is immaterial to our comparison; DISTINCT semantics is the safer
        // default for classifier-style use).
        return Ok(SparqlResult::Solutions(evaluate(
            graph,
            &query.bgp,
            Semantics::Set,
        )?));
    }
    // SPARQL aggregation: group the full solution multiset.
    let solutions = evaluate(graph, &query.bgp, Semantics::Bag)?;
    let mut rows: FxHashMap<Vec<TermId>, Vec<AggValue>> = FxHashMap::default();
    // Evaluate each aggregate independently over the same grouping, then
    // zip the per-aggregate results together.
    for (i, agg) in query.aggregates.iter().enumerate() {
        let groups = if agg.func == AggFunc::CountDistinct {
            group_aggregate(
                &solutions,
                &query.group_vars,
                agg.var,
                AggFunc::CountDistinct,
                graph.dict(),
            )?
        } else {
            group_aggregate(
                &solutions,
                &query.group_vars,
                agg.var,
                agg.func,
                graph.dict(),
            )?
        };
        for (key, value) in groups {
            let entry = rows
                .entry(key)
                .or_insert_with(|| vec![AggValue::Int(0); query.aggregates.len()]);
            entry[i] = value;
        }
    }
    let mut out: Vec<SparqlRow> = rows
        .into_iter()
        .map(|(keys, aggregates)| SparqlRow { keys, aggregates })
        .collect();
    out.sort_unstable_by(|a, b| a.keys.cmp(&b.keys));
    Ok(SparqlResult::Groups(out))
}

/// Parses the SPARQL SELECT dialect described in the module docs.
pub fn parse_sparql(text: &str, dict: &mut Dictionary) -> Result<SparqlQuery, EngineError> {
    SparqlParser::new(text).parse(dict)
}

struct SparqlParser<'a> {
    input: &'a str,
    pos: usize,
    prefixes: FxHashMap<String, String>,
}

impl<'a> SparqlParser<'a> {
    fn new(input: &'a str) -> Self {
        let mut prefixes = FxHashMap::default();
        for (p, ns) in vocab::DEFAULT_PREFIXES {
            prefixes.insert((*p).to_string(), (*ns).to_string());
        }
        SparqlParser {
            input,
            pos: 0,
            prefixes,
        }
    }

    fn error(&self, msg: impl Into<String>) -> EngineError {
        let consumed = &self.input[..self.pos];
        let line = consumed.lines().count().max(1);
        let column = consumed.lines().last().map_or(1, |l| l.len() + 1);
        EngineError::parse(line, column, msg)
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = &self.input[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with('#') {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn eat_char(&mut self, c: char) -> Result<(), EngineError> {
        if self.peek_char() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected '{c}'")))
        }
    }

    /// Consumes `keyword` case-insensitively if present.
    fn eat_keyword(&mut self, keyword: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= keyword.len()
            && rest[..keyword.len()].eq_ignore_ascii_case(keyword)
            && !rest[keyword.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn word(&mut self) -> String {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-'))
            .map_or(rest.len(), |(i, _)| i);
        self.pos += end;
        rest[..end].to_string()
    }

    fn variable(&mut self, bgp: &mut Bgp) -> Result<VarId, EngineError> {
        self.eat_char('?')?;
        let name = self.word();
        if name.is_empty() {
            return Err(self.error("expected variable name after '?'"));
        }
        Ok(bgp.var(&name))
    }

    fn parse(mut self, dict: &mut Dictionary) -> Result<SparqlQuery, EngineError> {
        while self.eat_keyword("PREFIX") {
            let prefix = self.word();
            self.eat_char(':')?;
            self.eat_char('<')?;
            let ns = self.until('>')?;
            self.prefixes.insert(prefix, ns);
        }

        if !self.eat_keyword("SELECT") {
            return Err(self.error("expected SELECT"));
        }
        let mut bgp = Bgp::new("sparql");
        let mut group_vars: Vec<VarId> = Vec::new();
        let mut aggregates: Vec<AggProjection> = Vec::new();

        loop {
            match self.peek_char() {
                Some('?') => group_vars.push(self.variable(&mut bgp)?),
                Some('(') => {
                    self.eat_char('(')?;
                    let func_name = self.word().to_ascii_uppercase();
                    self.eat_char('(')?;
                    let distinct = self.eat_keyword("DISTINCT");
                    let var = self.variable(&mut bgp)?;
                    self.eat_char(')')?;
                    if !self.eat_keyword("AS") {
                        return Err(self.error("expected AS in aggregate projection"));
                    }
                    self.eat_char('?')?;
                    let alias = self.word();
                    self.eat_char(')')?;
                    let func = match (func_name.as_str(), distinct) {
                        ("COUNT", false) => AggFunc::Count,
                        ("COUNT", true) => AggFunc::CountDistinct,
                        ("SUM", false) => AggFunc::Sum,
                        ("AVG", false) => AggFunc::Avg,
                        ("MIN", false) => AggFunc::Min,
                        ("MAX", false) => AggFunc::Max,
                        (other, true) => {
                            return Err(self.error(format!(
                                "DISTINCT is only supported for COUNT, not {other}"
                            )))
                        }
                        (other, _) => {
                            return Err(self.error(format!("unsupported aggregate {other}")))
                        }
                    };
                    aggregates.push(AggProjection { func, var, alias });
                }
                _ => break,
            }
        }
        if group_vars.is_empty() && aggregates.is_empty() {
            return Err(self.error("SELECT needs at least one projection"));
        }

        if !self.eat_keyword("WHERE") {
            return Err(self.error("expected WHERE"));
        }
        self.eat_char('{')?;
        loop {
            if self.peek_char() == Some('}') {
                break;
            }
            let s = self.term(&mut bgp, dict, false)?;
            let p = self.term(&mut bgp, dict, true)?;
            let o = self.term(&mut bgp, dict, false)?;
            bgp.push_pattern(QueryPattern::new(s, p, o));
            // '.' separates; it is optional before '}'.
            if self.peek_char() == Some('.') {
                self.eat_char('.')?;
            }
        }
        self.eat_char('}')?;

        let mut declared_groups: Vec<VarId> = Vec::new();
        if self.eat_keyword("GROUP") {
            if !self.eat_keyword("BY") {
                return Err(self.error("expected BY after GROUP"));
            }
            while self.peek_char() == Some('?') {
                declared_groups.push(self.variable(&mut bgp)?);
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("unexpected trailing input"));
        }

        if !aggregates.is_empty() {
            // SPARQL 1.1: every plain projected variable must be grouped.
            if declared_groups.is_empty() && !group_vars.is_empty() {
                return Err(self.error("aggregates mixed with plain variables require GROUP BY"));
            }
            for v in &group_vars {
                if !declared_groups.contains(v) {
                    return Err(self.error(format!(
                        "projected variable ?{} is not in GROUP BY",
                        bgp.vars().name(*v)
                    )));
                }
            }
        } else if !declared_groups.is_empty() {
            return Err(self.error("GROUP BY without aggregates"));
        }

        // The BGP head: grouped variables plus every aggregated variable
        // (so bag evaluation materializes exactly what grouping needs).
        let mut head = group_vars.clone();
        for agg in &aggregates {
            if !head.contains(&agg.var) {
                head.push(agg.var);
            }
        }
        bgp.set_head(head);
        bgp.validate()?;
        Ok(SparqlQuery {
            bgp,
            group_vars,
            aggregates,
        })
    }

    fn until(&mut self, stop: char) -> Result<String, EngineError> {
        let rest = &self.input[self.pos..];
        match rest.find(stop) {
            Some(i) => {
                let out = rest[..i].to_string();
                self.pos += i + stop.len_utf8();
                Ok(out)
            }
            None => Err(self.error(format!("expected '{stop}'"))),
        }
    }

    fn term(
        &mut self,
        bgp: &mut Bgp,
        dict: &mut Dictionary,
        is_predicate: bool,
    ) -> Result<PatternTerm, EngineError> {
        match self.peek_char() {
            Some('?') => Ok(PatternTerm::Var(self.variable(bgp)?)),
            Some('<') => {
                self.eat_char('<')?;
                let iri = self.until('>')?;
                Ok(PatternTerm::Const(dict.encode_owned(Term::iri(iri))))
            }
            Some('"') => {
                self.eat_char('"')?;
                let body = self.until('"')?;
                if self.input[self.pos..].starts_with("^^") {
                    self.pos += 2;
                    let dt = match self.term(bgp, dict, false)? {
                        PatternTerm::Const(id) => match dict.get(id).and_then(Term::as_iri) {
                            Some(iri) => iri.to_string(),
                            None => return Err(self.error("datatype must be an IRI")),
                        },
                        PatternTerm::Var(_) => {
                            return Err(self.error("datatype cannot be a variable"))
                        }
                    };
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::Literal(Literal::typed(body, dt))),
                    ));
                }
                Ok(PatternTerm::Const(dict.encode_owned(Term::literal(body))))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let rest = &self.input[self.pos..];
                let end = rest
                    .char_indices()
                    .find(|(_, ch)| !(ch.is_ascii_digit() || "+-.eE".contains(*ch)))
                    .map_or(rest.len(), |(i, _)| i);
                let n = rest[..end].to_string();
                self.pos += end;
                let term = if n.contains(['.', 'e', 'E']) {
                    Term::Literal(Literal::typed(n, vocab::XSD_DECIMAL))
                } else {
                    Term::Literal(Literal::typed(n, vocab::XSD_INTEGER))
                };
                Ok(PatternTerm::Const(dict.encode_owned(term)))
            }
            Some(c) if c.is_alphabetic() => {
                let name = self.word();
                if name == "a" && is_predicate {
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::iri(vocab::RDF_TYPE)),
                    ));
                }
                if self.input[self.pos..].starts_with(':') {
                    self.pos += 1;
                    let local = self.word();
                    let ns = self
                        .prefixes
                        .get(&name)
                        .ok_or_else(|| self.error(format!("unknown prefix '{name}:'")))?;
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::iri(format!("{ns}{local}"))),
                    ));
                }
                Err(self.error(format!(
                    "bare name '{name}' is not valid SPARQL; use a prefixed name or <IRI>"
                )))
            }
            other => Err(self.error(format!("unexpected {other:?} in triple pattern"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::{parse_turtle, Graph};

    fn blog() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap()
    }

    #[test]
    fn plain_select() {
        let mut g = blog();
        let q = parse_sparql(
            "SELECT ?x ?age WHERE { ?x a <Blogger> . ?x <hasAge> ?age . }",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Solutions(rel) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("expected solutions");
        };
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn grouped_count() {
        let mut g = blog();
        let q = parse_sparql(
            "SELECT ?age (COUNT(?site) AS ?n) \
             WHERE { ?x a <Blogger> . ?x <hasAge> ?age . \
                     ?x <wrotePost> ?p . ?p <postedOn> ?site } \
             GROUP BY ?age",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Groups(rows) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("expected groups");
        };
        assert_eq!(rows.len(), 2);
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let row28 = rows.iter().find(|r| r.keys == vec![age28]).unwrap();
        assert_eq!(row28.aggregates, vec![AggValue::Int(3)]);
    }

    #[test]
    fn multiple_aggregates_and_distinct() {
        let mut g = blog();
        let q = parse_sparql(
            "SELECT ?age (COUNT(?site) AS ?n) (COUNT(DISTINCT ?site) AS ?d) \
             WHERE { ?x a <Blogger> . ?x <hasAge> ?age . \
                     ?x <wrotePost> ?p . ?p <postedOn> ?site } \
             GROUP BY ?age",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Groups(rows) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("expected groups");
        };
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let row28 = rows.iter().find(|r| r.keys == vec![age28]).unwrap();
        // user1's sites: s1, s1, s2 → count 3, distinct 2.
        assert_eq!(row28.aggregates, vec![AggValue::Int(3), AggValue::Int(2)]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let mut g = blog();
        let q = parse_sparql(
            "SELECT (COUNT(?p) AS ?posts) WHERE { ?x <wrotePost> ?p }",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Groups(rows) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("expected groups");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].aggregates, vec![AggValue::Int(5)]);
    }

    #[test]
    fn prefixes_expand() {
        let mut g = Graph::new();
        g.insert(
            &Term::iri("http://ex.org/a"),
            &Term::iri("http://ex.org/p"),
            &Term::integer(1),
        );
        let q = parse_sparql(
            "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p 1 }",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Solutions(rel) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("expected solutions");
        };
        assert_eq!(rel.len(), 1);
    }

    /// The §4 comparison, executable: SPARQL couples classifier and measure
    /// in one BGP, so a blogger with two cities has its word counts
    /// duplicated into both groups *and* its sites multiplied by the extra
    /// join — the AnQ's separate measure query does not suffer the latter.
    #[test]
    fn sparql_vs_anq_on_multivalued_dimensions() {
        let mut g = blog();
        rdfcube_rdf::parse_into("<user1> <livesIn> \"Lisbon\" .", &mut g).unwrap();

        // SPARQL: one BGP, grouped by city — user1's 3 posts appear under
        // both Madrid and Lisbon, which *matches* AnQ semantics per cell…
        let q = parse_sparql(
            "SELECT ?city (COUNT(?site) AS ?n) \
             WHERE { ?x a <Blogger> . ?x <livesIn> ?city . \
                     ?x <wrotePost> ?p . ?p <postedOn> ?site } \
             GROUP BY ?city",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Groups(rows) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("groups")
        };
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        let n_madrid = rows.iter().find(|r| r.keys == vec![madrid]).unwrap();
        assert_eq!(n_madrid.aggregates, vec![AggValue::Int(3)]);

        // …but a *global* count (no grouping) double-counts the multi-city
        // blogger, which the AnQ's fact-based semantics would not:
        let q = parse_sparql(
            "SELECT (COUNT(?site) AS ?n) \
             WHERE { ?x a <Blogger> . ?x <livesIn> ?city . \
                     ?x <wrotePost> ?p . ?p <postedOn> ?site }",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Groups(rows) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("groups")
        };
        // 5 facts have 5 posts total, but user1's 3 posts × 2 cities = 6,
        // plus user3's and user4's 1 each ⇒ 8, not 5.
        assert_eq!(rows[0].aggregates, vec![AggValue::Int(8)]);
    }

    #[test]
    fn parse_errors() {
        let mut dict = Dictionary::new();
        for bad in [
            "",
            "SELECT WHERE { ?x <p> ?y }",
            "SELECT ?x { ?x <p> ?y }",     // missing WHERE
            "SELECT ?x WHERE { ?x <p> }",  // incomplete triple
            "SELECT ?x WHERE { ?x <p> ?y", // unterminated block
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <p> ?y }", // ungrouped ?x
            "SELECT ?x WHERE { ?x <p> ?y } GROUP BY ?x", // GROUP BY w/o agg
            "SELECT (MEDIAN(?y) AS ?m) WHERE { ?x <p> ?y }", // unknown agg
            "SELECT (SUM(DISTINCT ?y) AS ?s) WHERE { ?x <p> ?y }",
            "SELECT ?x WHERE { ?x nope:p ?y }", // unknown prefix
            "SELECT ?x WHERE { ?x bare ?y }",   // bare name
        ] {
            assert!(parse_sparql(bad, &mut dict).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn comments_are_ignored() {
        let mut g = blog();
        let q = parse_sparql(
            "# heading\nSELECT ?x # trailing\nWHERE { ?x a <Blogger> }",
            g.dict_mut(),
        )
        .unwrap();
        let SparqlResult::Solutions(rel) = evaluate_sparql(&g, &q).unwrap() else {
            panic!("solutions")
        };
        assert_eq!(rel.len(), 3);
    }
}
