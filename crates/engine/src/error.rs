//! Error types for the query engine.

use std::fmt;

/// Errors raised while parsing, validating or evaluating BGP queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Textual query could not be parsed.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// The query is structurally invalid (e.g. head variable missing from
    /// the body, or a non-rooted query where a rooted one is required).
    Validation(String),
    /// An aggregation was applied to values it cannot handle
    /// (e.g. `sum` over city names).
    NonNumericAggregate(String),
    /// Relational operands are incompatible (schema mismatch on union,
    /// unknown column in a projection, …).
    Schema(String),
}

impl EngineError {
    pub(crate) fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        EngineError::Parse {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "query parse error at {line}:{column}: {message}")
            }
            EngineError::Validation(m) => write!(f, "invalid query: {m}"),
            EngineError::NonNumericAggregate(m) => write!(f, "non-numeric aggregate: {m}"),
            EngineError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::parse(1, 2, "oops").to_string().contains("1:2"));
        assert!(EngineError::Validation("v".into())
            .to_string()
            .contains("invalid query"));
        assert!(EngineError::NonNumericAggregate("x".into())
            .to_string()
            .contains("non-numeric"));
        assert!(EngineError::Schema("s".into())
            .to_string()
            .contains("schema"));
    }
}
