//! Query variables and the per-query variable registry.

use rdfcube_rdf::fx::FxHashMap;
use std::fmt;

/// A dense identifier for a query variable, valid within one [`VarRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct VarId(pub u16);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// Bidirectional mapping between variable names and [`VarId`]s.
///
/// Ids are dense and assigned in first-seen order, so evaluation state can be
/// a flat `Vec<Option<TermId>>` indexed by `VarId`.
#[derive(Debug, Default, Clone)]
pub struct VarRegistry {
    names: Vec<String>,
    ids: FxHashMap<String, VarId>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable name, returning its id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = VarId(u16::try_from(self.names.len()).expect("more than 2^16 query variables"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Creates a fresh variable with a generated, collision-free name.
    ///
    /// Used by the rewriting layer to add synthetic columns (e.g. the `k`
    /// key of an extended measure result) without clashing with user names.
    pub fn fresh(&mut self, hint: &str) -> VarId {
        let mut candidate = format!("__{hint}");
        let mut n = 0usize;
        while self.ids.contains_key(&candidate) {
            n += 1;
            candidate = format!("__{hint}{n}");
        }
        self.intern(&candidate)
    }

    /// Looks a name up without interning.
    pub fn id(&self, name: &str) -> Option<VarId> {
        self.ids.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// Panics if `id` is foreign to this registry.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variable is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = VarRegistry::new();
        let x = r.intern("x");
        assert_eq!(r.intern("x"), x);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn names_round_trip() {
        let mut r = VarRegistry::new();
        let d = r.intern("dage");
        assert_eq!(r.name(d), "dage");
        assert_eq!(r.id("dage"), Some(d));
        assert_eq!(r.id("nope"), None);
    }

    #[test]
    fn fresh_never_collides() {
        let mut r = VarRegistry::new();
        r.intern("__k");
        let k1 = r.fresh("k");
        let k2 = r.fresh("k");
        assert_ne!(k1, k2);
        assert_ne!(r.name(k1), "__k");
    }

    #[test]
    fn ids_are_dense() {
        let mut r = VarRegistry::new();
        assert_eq!(r.intern("a").0, 0);
        assert_eq!(r.intern("b").0, 1);
        assert_eq!(r.intern("c").0, 2);
    }
}
