//! Parser for the paper's query notation.
//!
//! The paper writes conjunctive queries datalog-style:
//!
//! ```text
//! c(x, dage, dcity) :- x rdf:type Blogger, x hasAge dage, x livesIn dcity
//! ```
//!
//! We adopt the same shape with one deviation: variables carry the SPARQL
//! `?` sigil (`?x`, `?dage`) because the paper distinguishes variables
//! typographically (italics), which plain text cannot. Everything else
//! matches: bare identifiers are IRIs (`Blogger`, `hasAge`), `prefix:local`
//! names expand against the default `rdf:`/`rdfs:`/`xsd:` prefixes,
//! `<...>` is an explicit IRI, quoted strings and bare numbers are literals,
//! and `a` abbreviates `rdf:type`.
//!
//! Both `:-` and `<-` are accepted as the body separator.

use crate::bgp::Bgp;
use crate::error::EngineError;
use crate::pattern::{PatternTerm, QueryPattern};
use rdfcube_rdf::{vocab, Dictionary, Literal, Term};

/// Parses a query in the paper's notation, interning constant terms into
/// `dict` (typically the dictionary of the graph the query will run on).
pub fn parse_query(text: &str, dict: &mut Dictionary) -> Result<Bgp, EngineError> {
    Parser {
        input: text,
        pos: 0,
        line: 1,
        col: 1,
    }
    .query(dict)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> EngineError {
        EngineError::parse(self.line, self.col, msg)
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, expected: char) -> Result<(), EngineError> {
        self.skip_ws();
        if self.peek() == Some(expected) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{expected}', found {}",
                self.peek()
                    .map_or("end of input".to_string(), |c| format!("'{c}'"))
            )))
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            s.push(self.bump().expect("peeked"));
        }
        s
    }

    fn query(mut self, dict: &mut Dictionary) -> Result<Bgp, EngineError> {
        self.skip_ws();
        let name = self.ident();
        if name.is_empty() {
            return Err(self.error("expected query name"));
        }
        let mut bgp = Bgp::new(name);

        self.eat('(')?;
        self.skip_ws();
        if self.peek() != Some(')') {
            loop {
                self.skip_ws();
                if self.peek() != Some('?') {
                    return Err(self.error("head terms must be variables (?name)"));
                }
                self.bump();
                let var_name = self.ident();
                if var_name.is_empty() {
                    return Err(self.error("expected variable name after '?'"));
                }
                let v = bgp.var(&var_name);
                bgp.push_head(v);
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.eat(')')?;

        // ':-' or '<-'
        self.skip_ws();
        match (self.bump(), self.bump()) {
            (Some(':'), Some('-')) | (Some('<'), Some('-')) => {}
            _ => return Err(self.error("expected ':-' or '<-' before query body")),
        }

        loop {
            let s = self.term(&mut bgp, dict, false)?;
            let p = self.term(&mut bgp, dict, true)?;
            let o = self.term(&mut bgp, dict, false)?;
            bgp.push_pattern(QueryPattern::new(s, p, o));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                None => break,
                Some('.') => {
                    // Allow an optional trailing period, datalog-style.
                    self.bump();
                    self.skip_ws();
                    if self.peek().is_none() {
                        break;
                    }
                    return Err(self.error("unexpected input after trailing '.'"));
                }
                Some(c) => {
                    return Err(self.error(format!("expected ',' between triples, found '{c}'")))
                }
            }
        }

        bgp.validate()?;
        Ok(bgp)
    }

    fn term(
        &mut self,
        bgp: &mut Bgp,
        dict: &mut Dictionary,
        is_predicate: bool,
    ) -> Result<PatternTerm, EngineError> {
        self.skip_ws();
        match self.peek() {
            Some('?') => {
                self.bump();
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.error("expected variable name after '?'"));
                }
                Ok(PatternTerm::Var(bgp.var(&name)))
            }
            Some('<') => {
                self.bump();
                let mut iri = String::new();
                loop {
                    match self.bump() {
                        Some('>') => break,
                        Some(c) => iri.push(c),
                        None => return Err(self.error("unterminated IRI")),
                    }
                }
                Ok(PatternTerm::Const(dict.encode_owned(Term::iri(iri))))
            }
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(c) => return Err(self.error(format!("bad escape '\\{c}'"))),
                            None => return Err(self.error("unterminated string")),
                        },
                        Some(c) => s.push(c),
                        None => return Err(self.error("unterminated string")),
                    }
                }
                // Optional ^^datatype suffix.
                if self.input[self.pos..].starts_with("^^") {
                    self.bump();
                    self.bump();
                    let dt = match self.term(bgp, dict, false)? {
                        PatternTerm::Const(id) => match dict.get(id).and_then(Term::as_iri) {
                            Some(iri) => iri.to_string(),
                            None => return Err(self.error("datatype must be an IRI")),
                        },
                        PatternTerm::Var(_) => {
                            return Err(self.error("datatype cannot be a variable"))
                        }
                    };
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::Literal(Literal::typed(s, dt))),
                    ));
                }
                Ok(PatternTerm::Const(
                    dict.encode_owned(Term::Literal(Literal::plain(s))),
                ))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut n = String::new();
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(c))
                {
                    n.push(self.bump().expect("peeked"));
                }
                let term = if n.contains(['.', 'e', 'E']) {
                    Term::Literal(Literal::typed(n, vocab::XSD_DECIMAL))
                } else {
                    Term::Literal(Literal::typed(n, vocab::XSD_INTEGER))
                };
                Ok(PatternTerm::Const(dict.encode_owned(term)))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.ident();
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.ident();
                    let iri = vocab::expand_default(&name, &local)
                        .ok_or_else(|| self.error(format!("unknown prefix '{name}:'")))?;
                    return Ok(PatternTerm::Const(dict.encode_owned(Term::iri(iri))));
                }
                // As in Turtle, `a` means rdf:type only in predicate position.
                if name == "a" && is_predicate {
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::iri(vocab::RDF_TYPE)),
                    ));
                }
                if name == "true" || name == "false" {
                    return Ok(PatternTerm::Const(
                        dict.encode_owned(Term::Literal(Literal::boolean(name == "true"))),
                    ));
                }
                Ok(PatternTerm::Const(dict.encode_owned(Term::iri(name))))
            }
            Some(c) => Err(self.error(format!("unexpected character '{c}' in term"))),
            None => Err(self.error("unexpected end of input in term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_1_classifier() {
        let mut dict = Dictionary::new();
        let c = parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            &mut dict,
        )
        .unwrap();
        assert_eq!(c.name(), "c");
        assert_eq!(c.head().len(), 3);
        assert_eq!(c.body().len(), 3);
        assert!(c.validate_rooted().is_ok());
        // rdf:type expanded against the default prefix.
        assert!(dict.iri_id(vocab::RDF_TYPE).is_some());
        assert!(dict.iri_id("Blogger").is_some());
    }

    #[test]
    fn parses_paper_example_1_measure() {
        let mut dict = Dictionary::new();
        let m = parse_query(
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            &mut dict,
        )
        .unwrap();
        assert_eq!(m.existential_vars().len(), 1);
    }

    #[test]
    fn a_keyword_and_arrow_separator() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(?x) <- ?x a Blogger", &mut dict).unwrap();
        assert_eq!(q.body().len(), 1);
        assert!(dict.iri_id(vocab::RDF_TYPE).is_some());
    }

    #[test]
    fn literals_numbers_strings_booleans() {
        let mut dict = Dictionary::new();
        let q = parse_query(
            "q(?x) :- ?x hasAge 28, ?x livesIn \"Madrid\", ?x active true, ?x score 3.5",
            &mut dict,
        )
        .unwrap();
        assert_eq!(q.body().len(), 4);
        assert!(dict.id(&Term::integer(28)).is_some());
        assert!(dict.id(&Term::literal("Madrid")).is_some());
        assert!(dict.id(&Term::Literal(Literal::boolean(true))).is_some());
        assert!(dict
            .id(&Term::Literal(Literal::typed("3.5", vocab::XSD_DECIMAL)))
            .is_some());
    }

    #[test]
    fn explicit_iri_and_typed_literal() {
        let mut dict = Dictionary::new();
        let q = parse_query("q(?x) :- ?x <http://e/p> \"28\"^^xsd:integer", &mut dict).unwrap();
        assert_eq!(q.body().len(), 1);
        assert!(dict.iri_id("http://e/p").is_some());
        assert!(dict.id(&Term::integer(28)).is_some());
    }

    #[test]
    fn trailing_period_is_accepted() {
        let mut dict = Dictionary::new();
        assert!(parse_query("q(?x) :- ?x p ?x .", &mut dict).is_ok());
    }

    #[test]
    fn error_cases() {
        let mut dict = Dictionary::new();
        assert!(parse_query("", &mut dict).is_err());
        assert!(parse_query("q(x) :- ?x p ?x", &mut dict).is_err()); // head without ?
        assert!(parse_query("q(?x)", &mut dict).is_err()); // no body
        assert!(parse_query("q(?x) :- ?x p", &mut dict).is_err()); // incomplete triple
        assert!(parse_query("q(?x) :- ?x nope:p ?y", &mut dict).is_err()); // unknown prefix
        assert!(parse_query("q(?z) :- ?x p ?y", &mut dict).is_err()); // head not in body
        assert!(parse_query("q(?x) :- ?x p ?y junk", &mut dict).is_err());
    }

    #[test]
    fn head_variable_order_is_preserved() {
        let mut dict = Dictionary::new();
        let q = parse_query(
            "c(?x, ?dcity, ?dage) :- ?x hasAge ?dage, ?x livesIn ?dcity",
            &mut dict,
        )
        .unwrap();
        let names: Vec<&str> = q.head().iter().map(|&v| q.vars().name(v)).collect();
        assert_eq!(names, vec!["x", "dcity", "dage"]);
    }
}
