//! Aggregation functions (the ⊕ of analytical queries) and grouped
//! aggregation (the γ operator).
//!
//! §3.2 of the paper distinguishes aggregation functions by their
//! *distributivity* — whether `⊕(a, ⊕(b, c)) = ⊕(⊕(a, b), c)` — because the
//! correctness argument for drill-out differs between distributive functions
//! (like `sum`) and non-distributive ones (like `avg`). Each [`AggFunc`]
//! therefore carries a [`Distributivity`] classification.
//!
//! Floating-point sums are folded over a **sorted** copy of the bag, so the
//! same multiset of values always aggregates to bit-identical results no
//! matter which evaluation strategy produced it — a requirement for testing
//! the paper's equivalence propositions exactly. Grouped aggregation
//! ([`group_aggregate`]) is sort-based: records are clustered by sorting a
//! flat `(key, value)` scratch buffer (1-/2-column keys packed into `u64`s)
//! and scanned run by run, so the deterministic input order to each fold —
//! and the canonical sorted output order — fall out of the sort itself.

use crate::error::EngineError;
use crate::relation::Relation;
use crate::var::VarId;
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{Dictionary, Term, TermId};
use std::fmt;

/// An aggregation function applicable to a bag of measure values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of values in the bag (duplicates count).
    Count,
    /// Number of distinct values in the bag.
    CountDistinct,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum (numeric when all values are numeric, else lexicographic).
    Min,
    /// Maximum (numeric when all values are numeric, else lexicographic).
    Max,
}

/// Distributivity classification, per the drill-out discussion in §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distributivity {
    /// `⊕` can merge partial aggregates: sum, count, min, max.
    Distributive,
    /// Computable from a bounded set of distributive aggregates: avg.
    Algebraic,
    /// Requires the full bag: count-distinct.
    Holistic,
}

impl AggFunc {
    /// The function's distributivity class.
    pub fn distributivity(&self) -> Distributivity {
        match self {
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                Distributivity::Distributive
            }
            AggFunc::Avg => Distributivity::Algebraic,
            AggFunc::CountDistinct => Distributivity::Holistic,
        }
    }

    /// The paper's name for the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "average",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Aggregates a non-empty bag of values.
    ///
    /// Per Definition 1, an empty bag means the fact does not contribute a
    /// cube cell at all, so calling this with an empty bag is a logic error
    /// reported as a validation failure rather than a panic.
    pub fn apply(&self, values: &[TermId], dict: &Dictionary) -> Result<AggValue, EngineError> {
        if values.is_empty() {
            return Err(EngineError::Validation(
                "aggregate applied to an empty measure bag (the fact should not contribute)".into(),
            ));
        }
        match self {
            AggFunc::Count => Ok(AggValue::Int(values.len() as i64)),
            AggFunc::CountDistinct => {
                let distinct: FxHashSet<TermId> = values.iter().copied().collect();
                Ok(AggValue::Int(distinct.len() as i64))
            }
            AggFunc::Sum => numeric_bag(values, dict, self.name()).map(|bag| bag.sum()),
            AggFunc::Avg => numeric_bag(values, dict, self.name()).map(|bag| bag.avg()),
            AggFunc::Min => Ok(AggValue::Term(extremum(values, dict, false))),
            AggFunc::Max => Ok(AggValue::Term(extremum(values, dict, true))),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of an aggregation — one cube-cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// Exact integer result (count, integer sum, …).
    Int(i64),
    /// Floating-point result (averages, mixed-type sums).
    Float(f64),
    /// A term from the input bag (min/max).
    Term(TermId),
}

impl AggValue {
    /// Numeric view (`Term` values resolve through `dict`).
    pub fn as_f64(&self, dict: &Dictionary) -> Option<f64> {
        match self {
            AggValue::Int(i) => Some(*i as f64),
            AggValue::Float(f) => Some(*f),
            AggValue::Term(id) => dict.get(*id).and_then(Term::as_f64),
        }
    }

    /// Renders the value for reports, decoding `Term` against `dict`.
    pub fn display(&self, dict: &Dictionary) -> String {
        match self {
            AggValue::Int(i) => i.to_string(),
            AggValue::Float(f) => format!("{f}"),
            AggValue::Term(id) => dict
                .get(*id)
                .map_or_else(|| id.to_string(), |t| t.display_compact()),
        }
    }

    /// Approximate equality: exact for `Int`/`Term`, ε-relative for floats.
    pub fn approx_eq(&self, other: &AggValue, eps: f64) -> bool {
        match (self, other) {
            (AggValue::Int(a), AggValue::Int(b)) => a == b,
            (AggValue::Term(a), AggValue::Term(b)) => a == b,
            (AggValue::Float(a), AggValue::Float(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= eps * scale
            }
            (AggValue::Int(a), AggValue::Float(b)) | (AggValue::Float(b), AggValue::Int(a)) => {
                (*a as f64 - b).abs() <= eps * (*a as f64).abs().max(b.abs()).max(1.0)
            }
            _ => false,
        }
    }
}

/// A bag of numeric values, kept as exact integers when possible.
enum NumericBag {
    Ints(Vec<i64>),
    Floats(Vec<f64>),
}

impl NumericBag {
    fn sum(self) -> AggValue {
        match self {
            NumericBag::Ints(ints) => {
                // Fall back to floats on overflow instead of wrapping.
                let mut acc: i64 = 0;
                for &i in &ints {
                    match acc.checked_add(i) {
                        Some(next) => acc = next,
                        None => return NumericBag::Floats(to_sorted_floats(&ints)).sum(),
                    }
                }
                AggValue::Int(acc)
            }
            NumericBag::Floats(mut floats) => {
                floats.sort_unstable_by(f64::total_cmp);
                AggValue::Float(floats.iter().sum())
            }
        }
    }

    fn avg(self) -> AggValue {
        let n = match &self {
            NumericBag::Ints(v) => v.len(),
            NumericBag::Floats(v) => v.len(),
        };
        match self.sum() {
            AggValue::Int(s) => AggValue::Float(s as f64 / n as f64),
            AggValue::Float(s) => AggValue::Float(s / n as f64),
            AggValue::Term(_) => unreachable!("sum never yields Term"),
        }
    }
}

fn to_sorted_floats(ints: &[i64]) -> Vec<f64> {
    let mut f: Vec<f64> = ints.iter().map(|&i| i as f64).collect();
    f.sort_unstable_by(f64::total_cmp);
    f
}

fn numeric_bag(
    values: &[TermId],
    dict: &Dictionary,
    func: &str,
) -> Result<NumericBag, EngineError> {
    let mut ints = Vec::with_capacity(values.len());
    for &id in values {
        let term = dict
            .get(id)
            .ok_or_else(|| EngineError::Schema(format!("unknown term id {id} in aggregate")))?;
        match term.as_i64() {
            Some(i) => ints.push(i),
            None => {
                // Mixed bag: re-read everything as floats.
                let mut floats = Vec::with_capacity(values.len());
                for &id2 in values {
                    let t2 = dict.get(id2).ok_or_else(|| {
                        EngineError::Schema(format!("unknown term id {id2} in aggregate"))
                    })?;
                    let f = t2.as_f64().filter(|f| !f.is_nan()).ok_or_else(|| {
                        EngineError::NonNumericAggregate(format!(
                            "{func} over non-numeric value {t2}"
                        ))
                    })?;
                    floats.push(f);
                }
                return Ok(NumericBag::Floats(floats));
            }
        }
    }
    Ok(NumericBag::Ints(ints))
}

/// Picks the minimal/maximal term of the bag: numerically when every value
/// is numeric, otherwise lexicographically on the rendered term. Ties break
/// on the rendered form then the id, so the result is deterministic across
/// evaluation strategies.
fn extremum(values: &[TermId], dict: &Dictionary, want_max: bool) -> TermId {
    let all_numeric = values
        .iter()
        .all(|&id| dict.get(id).and_then(Term::as_f64).is_some());
    let key = |id: TermId| -> (Option<f64>, String, u32) {
        let term = dict.get(id);
        let num = if all_numeric {
            term.and_then(Term::as_f64)
        } else {
            None
        };
        let text = term.map_or_else(|| id.to_string(), |t| t.to_string());
        (num, text, id.0)
    };
    let cmp = |a: &TermId, b: &TermId| {
        let (na, ta, ia) = key(*a);
        let (nb, tb, ib) = key(*b);
        match (na, nb) {
            (Some(x), Some(y)) => x.total_cmp(&y).then_with(|| ta.cmp(&tb)).then(ia.cmp(&ib)),
            _ => ta.cmp(&tb).then(ia.cmp(&ib)),
        }
    };
    let mut best = values[0];
    for &v in &values[1..] {
        let ord = cmp(&v, &best);
        if (want_max && ord == std::cmp::Ordering::Greater)
            || (!want_max && ord == std::cmp::Ordering::Less)
        {
            best = v;
        }
    }
    best
}

/// γ — grouped aggregation over a relation: groups rows by `group_cols`,
/// aggregates the `value_col` column of each group with `func`.
///
/// Returns `(group key, aggregate)` pairs sorted by key, a canonical order
/// that makes results directly comparable across strategies.
///
/// The implementation is **sort-based** over flat buffers rather than a
/// `HashMap<Vec<TermId>, Vec<TermId>>` of per-group bags: the `(key, value)`
/// records are projected into one flat scratch buffer, sorted by key (1- and
/// 2-column keys packed into `u64`s), and the runs scanned with a single
/// reusable bag buffer — no per-row heap allocation, and the output falls
/// out already in canonical key order.
pub fn group_aggregate(
    rel: &Relation,
    group_cols: &[VarId],
    value_col: VarId,
    func: AggFunc,
    dict: &Dictionary,
) -> Result<Vec<(Vec<TermId>, AggValue)>, EngineError> {
    let group_idx: Vec<usize> = group_cols
        .iter()
        .map(|&v| rel.col_required(v))
        .collect::<Result<_, _>>()?;
    let value_idx = rel.col_required(value_col)?;
    if rel.is_empty() {
        return Ok(Vec::new());
    }

    match group_idx.as_slice() {
        // Global aggregate: one group holding every value.
        [] => {
            let bag: Vec<TermId> = rel.rows().map(|row| row[value_idx]).collect();
            Ok(vec![(Vec::new(), func.apply(&bag, dict)?)])
        }
        // One dimension column: pack (key, value) into a u64 per record;
        // sorting the packed records clusters keys in ascending order.
        &[g] => {
            let mut records: Vec<u64> = rel
                .rows()
                .map(|row| crate::relation::pack2(row[g], row[value_idx]))
                .collect();
            records.sort_unstable();
            let mut out = Vec::new();
            let mut bag: Vec<TermId> = Vec::new();
            let mut start = 0;
            while start < records.len() {
                let key = records[start] >> 32;
                bag.clear();
                let mut end = start;
                while end < records.len() && records[end] >> 32 == key {
                    bag.push(TermId(records[end] as u32));
                    end += 1;
                }
                out.push((vec![TermId(key as u32)], func.apply(&bag, dict)?));
                start = end;
            }
            Ok(out)
        }
        // Two dimension columns: all three ids packed into one u128 record
        // (key in the high 64 bits), sorted with a single wide compare.
        &[g0, g1] => {
            let mut records: Vec<u128> = rel
                .rows()
                .map(|row| {
                    (u128::from(crate::relation::pack2(row[g0], row[g1])) << 32)
                        | u128::from(row[value_idx].0)
                })
                .collect();
            records.sort_unstable();
            let mut out = Vec::new();
            let mut bag: Vec<TermId> = Vec::new();
            let mut start = 0;
            while start < records.len() {
                let key = (records[start] >> 32) as u64;
                bag.clear();
                let mut end = start;
                while end < records.len() && (records[end] >> 32) as u64 == key {
                    bag.push(TermId(records[end] as u32));
                    end += 1;
                }
                out.push((
                    vec![TermId((key >> 32) as u32), TermId(key as u32)],
                    func.apply(&bag, dict)?,
                ));
                start = end;
            }
            Ok(out)
        }
        // General path: project the `(key…, value)` columns into a scratch
        // relation and order it with [`Relation::sort_by_cols`] over every
        // column (key first, then value — fully deterministic), then scan
        // the runs.
        _ => {
            let stride = group_idx.len() + 1;
            let mut schema: Vec<VarId> = group_cols.to_vec();
            schema.push(value_col);
            let mut records = Relation::with_capacity(schema, rel.len());
            for row in rel.rows() {
                records.push_row_from(
                    group_idx
                        .iter()
                        .map(|&i| row[i])
                        .chain(std::iter::once(row[value_idx])),
                );
            }
            let all_cols: Vec<usize> = (0..stride).collect();
            records.sort_by_cols(&all_cols);
            let mut out = Vec::new();
            let mut bag: Vec<TermId> = Vec::new();
            let mut start = 0;
            while start < records.len() {
                let key = &records.row(start)[..stride - 1];
                bag.clear();
                let mut end = start;
                while end < records.len() && &records.row(end)[..stride - 1] == key {
                    bag.push(records.row(end)[stride - 1]);
                    end += 1;
                }
                out.push((key.to_vec(), func.apply(&bag, dict)?));
                start = end;
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::Term;

    fn dict_with_ints(values: &[i64]) -> (Dictionary, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids = values
            .iter()
            .map(|&v| d.encode(&Term::integer(v)))
            .collect();
        (d, ids)
    }

    #[test]
    fn count_counts_duplicates() {
        // Example 2: bag {|s1, s1, s2|} counts to 3.
        let (d, ids) = dict_with_ints(&[1, 1, 2]);
        assert_eq!(AggFunc::Count.apply(&ids, &d).unwrap(), AggValue::Int(3));
        assert_eq!(
            AggFunc::CountDistinct.apply(&ids, &d).unwrap(),
            AggValue::Int(2)
        );
    }

    #[test]
    fn sum_and_avg_exact_integers() {
        // Example 4: average of {100, 120, 410} = 210.
        let (d, ids) = dict_with_ints(&[100, 120, 410]);
        assert_eq!(AggFunc::Sum.apply(&ids, &d).unwrap(), AggValue::Int(630));
        assert_eq!(
            AggFunc::Avg.apply(&ids, &d).unwrap(),
            AggValue::Float(210.0)
        );
    }

    #[test]
    fn sum_overflow_falls_back_to_float() {
        let (d, ids) = dict_with_ints(&[i64::MAX, i64::MAX]);
        match AggFunc::Sum.apply(&ids, &d).unwrap() {
            AggValue::Float(f) => assert!(f > 1e18),
            other => panic!("expected float fallback, got {other:?}"),
        }
    }

    #[test]
    fn mixed_numeric_bag_sums_as_float() {
        let mut d = Dictionary::new();
        let ids = vec![d.encode(&Term::integer(1)), d.encode(&Term::double(2.5))];
        assert_eq!(AggFunc::Sum.apply(&ids, &d).unwrap(), AggValue::Float(3.5));
    }

    #[test]
    fn non_numeric_sum_is_an_error() {
        let mut d = Dictionary::new();
        let ids = vec![d.encode(&Term::literal("Madrid"))];
        assert!(matches!(
            AggFunc::Sum.apply(&ids, &d),
            Err(EngineError::NonNumericAggregate(_))
        ));
    }

    #[test]
    fn empty_bag_is_rejected() {
        let d = Dictionary::new();
        assert!(AggFunc::Count.apply(&[], &d).is_err());
    }

    #[test]
    fn min_max_numeric() {
        let (d, ids) = dict_with_ints(&[35, 28, 40]);
        assert_eq!(
            AggFunc::Min.apply(&ids, &d).unwrap(),
            AggValue::Term(ids[1])
        );
        assert_eq!(
            AggFunc::Max.apply(&ids, &d).unwrap(),
            AggValue::Term(ids[2])
        );
    }

    #[test]
    fn min_max_lexicographic_for_strings() {
        let mut d = Dictionary::new();
        let ids = vec![
            d.encode(&Term::literal("Madrid")),
            d.encode(&Term::literal("Kyoto")),
            d.encode(&Term::literal("NY")),
        ];
        assert_eq!(
            AggFunc::Min.apply(&ids, &d).unwrap(),
            AggValue::Term(ids[1])
        );
        assert_eq!(
            AggFunc::Max.apply(&ids, &d).unwrap(),
            AggValue::Term(ids[2])
        );
    }

    #[test]
    fn float_sum_is_order_independent() {
        let mut d = Dictionary::new();
        let a: Vec<TermId> = [0.1, 0.2, 0.3, 1e10, -1e10]
            .iter()
            .map(|&f| d.encode(&Term::double(f)))
            .collect();
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            AggFunc::Sum.apply(&a, &d).unwrap(),
            AggFunc::Sum.apply(&b, &d).unwrap()
        );
    }

    #[test]
    fn distributivity_classification() {
        assert_eq!(AggFunc::Sum.distributivity(), Distributivity::Distributive);
        assert_eq!(
            AggFunc::Count.distributivity(),
            Distributivity::Distributive
        );
        assert_eq!(AggFunc::Avg.distributivity(), Distributivity::Algebraic);
        assert_eq!(
            AggFunc::CountDistinct.distributivity(),
            Distributivity::Holistic
        );
    }

    #[test]
    fn group_aggregate_groups_and_sorts() {
        use crate::var::VarId;
        let mut d = Dictionary::new();
        let madrid = d.encode(&Term::literal("Madrid"));
        let ny = d.encode(&Term::literal("NY"));
        let v100 = d.encode(&Term::integer(100));
        let v120 = d.encode(&Term::integer(120));
        let v570 = d.encode(&Term::integer(570));

        let mut rel = Relation::new(vec![VarId(0), VarId(1)]);
        rel.push_row(&[madrid, v100]);
        rel.push_row(&[madrid, v120]);
        rel.push_row(&[ny, v570]);

        let groups = group_aggregate(&rel, &[VarId(0)], VarId(1), AggFunc::Avg, &d).unwrap();
        assert_eq!(groups.len(), 2);
        let madrid_avg = groups.iter().find(|(k, _)| k[0] == madrid).unwrap();
        assert_eq!(madrid_avg.1, AggValue::Float(110.0));
    }

    #[test]
    fn group_aggregate_empty_group_cols_is_global() {
        let (d, ids) = dict_with_ints(&[1, 2, 3]);
        let mut rel = Relation::new(vec![VarId(0)]);
        for id in &ids {
            rel.push_row(&[*id]);
        }
        let groups = group_aggregate(&rel, &[], VarId(0), AggFunc::Sum, &d).unwrap();
        assert_eq!(groups, vec![(vec![], AggValue::Int(6))]);
    }

    #[test]
    fn agg_value_display_and_approx_eq() {
        let mut d = Dictionary::new();
        let id = d.encode(&Term::literal("NY"));
        assert_eq!(AggValue::Int(3).display(&d), "3");
        assert_eq!(AggValue::Term(id).display(&d), "NY");
        assert!(AggValue::Float(1.0).approx_eq(&AggValue::Float(1.0 + 1e-12), 1e-9));
        assert!(AggValue::Int(2).approx_eq(&AggValue::Float(2.0), 1e-9));
        assert!(!AggValue::Int(2).approx_eq(&AggValue::Int(3), 1e-9));
    }
}
