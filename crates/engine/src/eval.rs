//! BGP evaluation over an RDF graph.
//!
//! The evaluator uses *binding propagation* (index nested-loop joins): it
//! orders the body patterns greedily by estimated cardinality, then extends
//! partial solutions one pattern at a time through the store's SPO/POS/OSP
//! indexes. This is the textbook strategy for conjunctive queries over
//! triple stores and matches what the paper assumes of the underlying RDF
//! platform.
//!
//! Intermediate solutions live in a `BindingTable`: one flat `Vec<TermId>`
//! arena with a fixed stride (the query's variable count), double-buffered
//! between pattern steps. Because the join order is fixed before execution,
//! the set of bound variables at each step is known *statically* — each step
//! compiles to a tiny `StepPlan` saying which positions probe the index,
//! which write newly bound variables into the arena, and which must merely
//! be equal (repeated fresh variables like `?x p ?x`). The inner loop
//! therefore performs **zero per-row heap allocations**: extending a row is
//! one `extend_from_slice` into the arena plus at most three slot writes,
//! with no `Option` wrappers and no cloned `Vec`s.
//!
//! Two result semantics are offered, as the paper requires both:
//! [`Semantics::Set`] (classifiers, auxiliary queries — Definition 1 and 6)
//! and [`Semantics::Bag`] (measures — one row per homomorphism, so repeated
//! measure values of one fact stay distinct).
//!
//! The pipeline parallelizes by data: when [`set_eval_threads`] raises the
//! worker count and an intermediate table is large enough, each step fans
//! out across scoped worker threads against the read-only graph and step
//! plan. Over a sharded store ([`Graph::with_shards`]) the partitioning
//! follows the **storage shards** rather than the arena rows:
//!
//! * a step whose subject is an already-bound variable routes each row to
//!   its subject's shard — one worker per shard extends only its rows, and
//!   the merge stitches each input row's matches back in input-row order
//!   (pure cursor arithmetic, no comparisons);
//! * a step whose subject is free runs every row against each shard's local
//!   indexes in parallel, and the merge k-way-interleaves each row's
//!   per-shard matches by the index sort key — which cannot tie across
//!   shards, because every such key determines the subject and a subject
//!   lives in exactly one shard;
//! * shards whose [`Graph::count_matching_in_shard`] is zero for the step's
//!   constant shape are skipped entirely — constants pushed down by
//!   [`evaluate_filtered`]'s equality pre-binding (slice/dice Σ constraints)
//!   prune whole shards here before any probe runs.
//!
//! On a single-shard (flat) graph — or while unmerged delta triples are
//! pending — each step instead partitions the arena's rows into contiguous
//! chunks and concatenates the partial tables in chunk order. Either way
//! the merged table (and therefore every downstream aggregation) is
//! **bit-identical** to the serial evaluation.
//!
//! A deliberately naive full-scan nested-loop evaluator
//! ([`evaluate_nested_loop`]) is kept as an oracle for the property tests;
//! it still materializes one `Vec<Option<TermId>>` per row, on purpose — its
//! value is being obviously correct, not fast.

use crate::bgp::Bgp;
use crate::error::EngineError;
use crate::pattern::{PatternTerm, QueryPattern};
use crate::relation::Relation;
use crate::var::VarId;
use rdfcube_rdf::fx::{FxHashMap, FxHashSet};
use rdfcube_rdf::{Graph, TermId, Triple, TriplePattern};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads BGP evaluation may fan out to (process-wide; default 1 =
/// fully serial).
static EVAL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Intermediate tables smaller than this stay serial: below it, the cost
/// of spawning scoped workers outweighs the per-row probe work.
const PAR_MIN_ROWS: usize = 1024;

/// Sets the number of worker threads BGP evaluation may use (clamped to at
/// least 1; 1 disables fan-out). Process-wide: the evaluator is a shared
/// resource, like the thread pool this stands in for. Results are
/// identical at any setting — partitions merge in input order.
pub fn set_eval_threads(n: usize) {
    EVAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current worker-thread setting (see [`set_eval_threads`]).
pub fn eval_threads() -> usize {
    EVAL_THREADS.load(Ordering::Relaxed)
}

/// Result semantics of a BGP query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Duplicate head rows collapse (the paper's default for BGPs).
    Set,
    /// One head row per homomorphism (the paper's measure-query semantics).
    Bag,
}

/// A partial assignment of query variables to terms — used only by the
/// nested-loop oracle, which favors obviousness over speed.
type PartialRow = Vec<Option<TermId>>;

/// Flat arena of partial bindings: `stride` slots per row, one slot per
/// query variable. Slots for variables not yet bound at the current step
/// hold stale sentinels and are never read — the static [`StepPlan`]s
/// guarantee every read slot was written by an earlier step.
struct BindingTable {
    stride: usize,
    rows: usize,
    data: Vec<TermId>,
}

impl BindingTable {
    fn new(stride: usize) -> Self {
        BindingTable {
            stride,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Seeds the table with the single empty binding (all slots sentinel).
    fn seed(stride: usize) -> Self {
        BindingTable {
            stride,
            rows: 1,
            data: vec![TermId(0); stride],
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[TermId] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
    }

    fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// In-place σ: keeps the rows satisfying `keep`, compacting the arena.
    fn retain(&mut self, mut keep: impl FnMut(&[TermId]) -> bool) {
        let stride = self.stride;
        if stride == 0 {
            // Zero-variable rows are indistinguishable; one call decides all.
            if self.rows > 0 && !keep(&[]) {
                self.rows = 0;
            }
            return;
        }
        let mut write = 0usize;
        for read in 0..self.rows {
            let start = read * stride;
            if keep(&self.data[start..start + stride]) {
                if write != read {
                    self.data.copy_within(start..start + stride, write * stride);
                }
                write += 1;
            }
        }
        self.rows = write;
        self.data.truncate(write * stride);
    }
}

/// How one position of a pattern behaves at a given step, decided statically
/// from the set of variables bound by earlier steps.
#[derive(Debug, Clone, Copy)]
enum Probe {
    /// A constant: resolved into the index probe.
    Const(TermId),
    /// A variable bound by an earlier step: its current value joins the
    /// index probe (an index nested-loop join key).
    Bound(usize),
    /// A variable first bound here: left free in the probe.
    Free,
}

/// The compiled form of one evaluation step over one body pattern.
struct StepPlan {
    probe: [Probe; 3],
    /// `(triple position, arena slot)` for the first occurrence of each
    /// newly bound variable.
    writes: Vec<(usize, usize)>,
    /// `(earlier position, later position)` pairs that must match — a fresh
    /// variable repeated within the same pattern (`?x p ?x`).
    eq_checks: Vec<(usize, usize)>,
    /// Variables first bound at this step (drives filter activation).
    newly_bound: Vec<VarId>,
}

/// Compiles `order` into per-step plans, tracking the statically-known
/// bound-variable set across steps. Variables in `pre_bound` (Σ equality
/// constants) compile to [`Probe::Const`] rather than [`Probe::Bound`]:
/// semantically identical (the arena slot is seeded with the same value),
/// but a constant participates in the steps' constant shapes — so shard
/// skipping and base-count estimation see the pushed-down selection.
fn build_plans(bgp: &Bgp, order: &[usize], pre_bound: &FxHashMap<VarId, TermId>) -> Vec<StepPlan> {
    let mut bound: FxHashSet<VarId> = pre_bound.keys().copied().collect();
    let mut plans = Vec::with_capacity(order.len());
    for &pi in order {
        let pattern = bgp.body()[pi];
        let mut plan = StepPlan {
            probe: [Probe::Free; 3],
            writes: Vec::new(),
            eq_checks: Vec::new(),
            newly_bound: Vec::new(),
        };
        for (pos, term) in pattern.positions().into_iter().enumerate() {
            plan.probe[pos] = match term {
                PatternTerm::Const(c) => Probe::Const(c),
                PatternTerm::Var(v) if pre_bound.contains_key(&v) => Probe::Const(pre_bound[&v]),
                PatternTerm::Var(v) if bound.contains(&v) => Probe::Bound(v.index()),
                PatternTerm::Var(v) => {
                    match plan.writes.iter().find(|&&(_, slot)| slot == v.index()) {
                        // Fresh variable repeated within this pattern: the
                        // index cannot enforce the equality, check at bind.
                        Some(&(first_pos, _)) => plan.eq_checks.push((first_pos, pos)),
                        None => {
                            plan.writes.push((pos, v.index()));
                            plan.newly_bound.push(v);
                        }
                    }
                    Probe::Free
                }
            };
        }
        for &v in &plan.newly_bound {
            bound.insert(v);
        }
        plans.push(plan);
    }
    plans
}

/// Shard-level execution statistics one step reports back to the
/// coordinating thread: worker threads never touch the tracer's
/// thread-local state, so these counts travel by return value and the
/// coordinator attaches them to its own span / the global sink. Both
/// fields stay 0 on non-shard-partitioned paths (flat store, chunked
/// fallback, serial kernel).
#[derive(Debug, Clone, Copy, Default)]
struct StepExec {
    /// Shards whose indexes this step actually probed.
    shards_probed: u32,
    /// Shards skipped because the step's constant shape matches nothing
    /// there.
    shards_skipped: u32,
}

/// Runs one compiled step: probes the index under every current row and
/// appends the extended rows to `next` — fanning out across worker threads
/// when the table is large enough and [`set_eval_threads`] allows.
///
/// Parallel dispatch prefers shard-partitioned execution (one worker per
/// storage shard, shard-skipping via per-shard statistics) and falls back
/// to contiguous row chunks when the graph is flat, holds unmerged delta
/// triples, or the step's subject is a constant (which routes every probe
/// to one shard anyway). All paths produce bit-identical tables.
fn run_step(
    graph: &Graph,
    plan: &StepPlan,
    current: &BindingTable,
    next: &mut BindingTable,
) -> StepExec {
    next.clear();
    let threads = eval_threads();
    if threads > 1 && current.rows >= PAR_MIN_ROWS {
        if graph.shard_count() > 1 && !graph.has_pending_delta() {
            match plan.probe[0] {
                Probe::Bound(slot) => {
                    return run_step_sharded_bound(graph, plan, current, slot, next);
                }
                Probe::Free => {
                    return run_step_sharded_scan(graph, plan, current, next);
                }
                Probe::Const(_) => {}
            }
        }
        run_step_chunked(graph, plan, current, threads, next);
        return StepExec::default();
    }
    // Most steps keep or grow the row count; pre-sizing to the current
    // arena avoids repeated doubling in the match closure.
    next.data.reserve(current.data.len());
    run_step_range(graph, plan, current, 0, current.rows, next);
    StepExec::default()
}

/// The step's constant-only shape: probe positions holding query constants
/// (including Σ constants pre-bound by [`evaluate_filtered`]), with bound
/// variables wildcarded. Every per-row probe pattern specializes this
/// shape, so a shard where it matches nothing can be skipped outright.
fn const_shape(plan: &StepPlan) -> TriplePattern {
    let c = |p: Probe| match p {
        Probe::Const(c) => Some(c),
        Probe::Bound(_) | Probe::Free => None,
    };
    TriplePattern::new(c(plan.probe[0]), c(plan.probe[1]), c(plan.probe[2]))
}

/// Extends `row` with every match of `tp` inside one shard, appending to
/// `next`; returns how many rows were produced. The per-shard kernel of
/// both sharded parallel paths.
#[inline]
fn extend_matches_in_shard(
    graph: &Graph,
    shard: usize,
    plan: &StepPlan,
    row: &[TermId],
    tp: TriplePattern,
    next: &mut BindingTable,
) -> u32 {
    let stride = next.stride;
    let mut produced = 0u32;
    graph.for_each_match_in_shard(shard, tp, |t| {
        let vals = t.as_array();
        for &(a, b) in &plan.eq_checks {
            if vals[a] != vals[b] {
                return;
            }
        }
        next.data.extend_from_slice(row);
        let base = next.data.len() - stride;
        for &(pos, slot) in &plan.writes {
            next.data[base + slot] = vals[pos];
        }
        next.rows += 1;
        produced += 1;
    });
    produced
}

/// Sharded parallel path for steps whose subject is an already-bound
/// variable: every row's probe is served entirely by its subject's shard,
/// so rows are routed there, one worker per shard extends its rows in row
/// order (recording each row's match count), and the merge walks the input
/// rows pulling each row's run from its owner's partial table — cursor
/// arithmetic only, no value comparisons. Shards where the step's constant
/// shape matches nothing are skipped (their rows produce no matches).
fn run_step_sharded_bound(
    graph: &Graph,
    plan: &StepPlan,
    current: &BindingTable,
    slot: usize,
    next: &mut BindingTable,
) -> StepExec {
    let n = graph.shard_count();
    let shape = const_shape(plan);
    let active: Vec<bool> = (0..n)
        .map(|w| graph.count_matching_in_shard(w, shape) > 0)
        .collect();
    let exec = StepExec {
        shards_probed: active.iter().filter(|&&a| a).count() as u32,
        shards_skipped: active.iter().filter(|&&a| !a).count() as u32,
    };
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..current.rows {
        let w = graph.shard_of(current.row(i)[slot]);
        if active[w] {
            rows_of[w].push(i as u32);
        }
    }
    let mut results: Vec<Option<(Vec<u32>, BindingTable)>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(n);
        for (w, rows) in rows_of.iter().enumerate() {
            if rows.is_empty() {
                workers.push(None);
                continue;
            }
            workers.push(Some(scope.spawn(move || {
                let mut part = BindingTable::new(current.stride);
                let mut counts = Vec::with_capacity(rows.len());
                for &i in rows {
                    let row = current.row(i as usize);
                    let resolve = |p: Probe| -> Option<TermId> {
                        match p {
                            Probe::Const(c) => Some(c),
                            Probe::Bound(s) => Some(row[s]),
                            Probe::Free => None,
                        }
                    };
                    let tp = TriplePattern::new(
                        Some(row[slot]),
                        resolve(plan.probe[1]),
                        resolve(plan.probe[2]),
                    );
                    counts.push(extend_matches_in_shard(graph, w, plan, row, tp, &mut part));
                }
                (counts, part)
            })));
        }
        results = workers
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("BGP evaluation worker panicked")))
            .collect();
    });
    let stride = current.stride;
    next.data.reserve(
        results
            .iter()
            .flatten()
            .map(|(_, p)| p.data.len())
            .sum::<usize>(),
    );
    let mut count_cursor = vec![0usize; n];
    let mut data_cursor = vec![0usize; n];
    for i in 0..current.rows {
        let w = graph.shard_of(current.row(i)[slot]);
        let Some((counts, part)) = &results[w] else {
            continue; // inactive shard, or no rows routed: zero matches
        };
        let produced = counts[count_cursor[w]] as usize;
        count_cursor[w] += 1;
        if produced > 0 {
            let start = data_cursor[w];
            next.data
                .extend_from_slice(&part.data[start..start + produced * stride]);
            data_cursor[w] += produced * stride;
            next.rows += produced;
        }
    }
    exec
}

/// Sharded parallel path for steps whose subject is a fresh variable: the
/// probe cannot be routed, so every active shard's worker runs **all** rows
/// against its local indexes (recording per-row match counts), and the
/// merge interleaves each input row's per-shard runs by the index sort key
/// — reproducing the flat store's enumeration order exactly. The key always
/// determines the subject and a subject lives in one shard, so cross-shard
/// ties are impossible. Shards where the step's constant shape matches
/// nothing are never spawned.
fn run_step_sharded_scan(
    graph: &Graph,
    plan: &StepPlan,
    current: &BindingTable,
    next: &mut BindingTable,
) -> StepExec {
    let shape = const_shape(plan);
    let active: Vec<usize> = (0..graph.shard_count())
        .filter(|&w| graph.count_matching_in_shard(w, shape) > 0)
        .collect();
    let exec = StepExec {
        shards_probed: active.len() as u32,
        shards_skipped: (graph.shard_count() - active.len()) as u32,
    };
    if active.is_empty() {
        return exec;
    }
    let stride = current.stride;
    let mut results: Vec<(Vec<u32>, BindingTable)> = Vec::with_capacity(active.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = active
            .iter()
            .map(|&w| {
                scope.spawn(move || {
                    let mut part = BindingTable::new(stride);
                    let mut counts = Vec::with_capacity(current.rows);
                    for i in 0..current.rows {
                        let row = current.row(i);
                        let resolve = |p: Probe| -> Option<TermId> {
                            match p {
                                Probe::Const(c) => Some(c),
                                Probe::Bound(s) => Some(row[s]),
                                Probe::Free => None,
                            }
                        };
                        let tp = TriplePattern::new(
                            None,
                            resolve(plan.probe[1]),
                            resolve(plan.probe[2]),
                        );
                        counts.push(extend_matches_in_shard(graph, w, plan, row, tp, &mut part));
                    }
                    (counts, part)
                })
            })
            .collect();
        for worker in workers {
            results.push(worker.join().expect("BGP evaluation worker panicked"));
        }
    });
    next.data
        .reserve(results.iter().map(|(_, p)| p.data.len()).sum::<usize>());
    if results.len() == 1 {
        let (_, part) = results.pop().expect("one result");
        next.rows = part.rows;
        next.data = part.data;
        return exec;
    }
    // Arena slots holding each triple position's value in an extended row
    // (writes cover first occurrences; eq-check positions mirror them).
    let mut slot_of_pos: [usize; 3] = [usize::MAX; 3];
    for &(pos, s) in &plan.writes {
        slot_of_pos[pos] = s;
    }
    for &(a, b) in &plan.eq_checks {
        slot_of_pos[b] = slot_of_pos[a];
    }
    // The flat store enumerates a subject-free shape in the order of the
    // index serving it; the per-shard runs are sorted by the same key.
    let free = |p: Probe| matches!(p, Probe::Free);
    let key: Vec<usize> = match (free(plan.probe[1]), free(plan.probe[2])) {
        (false, false) => vec![slot_of_pos[0]], // POS pair: by s
        (false, true) => vec![slot_of_pos[2], slot_of_pos[0]], // POS group: by (o, s)
        (true, false) => vec![slot_of_pos[0], slot_of_pos[1]], // OSP group: by (s, p)
        (true, true) => vec![slot_of_pos[0], slot_of_pos[1], slot_of_pos[2]], // SPO scan
    };
    let less = |a: &[TermId], b: &[TermId]| -> bool {
        for &k in &key {
            match a[k].cmp(&b[k]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        false
    };
    // `(result index, next row, end row)` runs for the input row in flight.
    let mut runs: Vec<(usize, usize, usize)> = Vec::with_capacity(results.len());
    let mut row_cursor = vec![0usize; results.len()];
    for i in 0..current.rows {
        runs.clear();
        for (k, (counts, _)) in results.iter().enumerate() {
            let produced = counts[i] as usize;
            if produced > 0 {
                runs.push((k, row_cursor[k], row_cursor[k] + produced));
                row_cursor[k] += produced;
            }
        }
        if let [(k, lo, hi)] = runs[..] {
            let part = &results[k].1;
            next.data
                .extend_from_slice(&part.data[lo * stride..hi * stride]);
            next.rows += hi - lo;
            continue;
        }
        while !runs.is_empty() {
            let mut best = 0;
            for r in 1..runs.len() {
                let (rk, rrow, _) = runs[r];
                let (bk, brow, _) = runs[best];
                if less(results[rk].1.row(rrow), results[bk].1.row(brow)) {
                    best = r;
                }
            }
            let (k, row, end) = &mut runs[best];
            let part = &results[*k].1;
            next.data
                .extend_from_slice(&part.data[*row * stride..(*row + 1) * stride]);
            next.rows += 1;
            *row += 1;
            if *row == *end {
                runs.swap_remove(best);
            }
        }
    }
    exec
}

/// Extends the rows `lo..hi` of `current` through `plan`, appending to
/// `next` in input-row order. The serial kernel both the single-threaded
/// path and each parallel partition run.
fn run_step_range(
    graph: &Graph,
    plan: &StepPlan,
    current: &BindingTable,
    lo: usize,
    hi: usize,
    next: &mut BindingTable,
) {
    let stride = current.stride;
    for i in lo..hi {
        let row = current.row(i);
        let resolve = |p: Probe| -> Option<TermId> {
            match p {
                Probe::Const(c) => Some(c),
                Probe::Bound(slot) => Some(row[slot]),
                Probe::Free => None,
            }
        };
        let tp = TriplePattern::new(
            resolve(plan.probe[0]),
            resolve(plan.probe[1]),
            resolve(plan.probe[2]),
        );
        graph.for_each_match(tp, |t| {
            let vals = t.as_array();
            for &(a, b) in &plan.eq_checks {
                if vals[a] != vals[b] {
                    return;
                }
            }
            next.data.extend_from_slice(row);
            let base = next.data.len() - stride;
            for &(pos, slot) in &plan.writes {
                next.data[base + slot] = vals[pos];
            }
            next.rows += 1;
        });
    }
}

/// Row-chunked parallel fallback (flat graphs, pending deltas, or
/// constant-subject steps): partitions `current`'s rows into `threads`
/// contiguous chunks, runs [`run_step_range`] per chunk on a scoped worker,
/// and concatenates the partial tables in chunk order — the merged table is
/// identical to what the serial path would have produced, because
/// [`run_step_range`] appends in input-row order within each chunk too.
fn run_step_chunked(
    graph: &Graph,
    plan: &StepPlan,
    current: &BindingTable,
    threads: usize,
    next: &mut BindingTable,
) {
    let chunk = current.rows.div_ceil(threads);
    let mut parts: Vec<BindingTable> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(current.rows);
            if lo >= hi {
                break;
            }
            workers.push(scope.spawn(move || {
                let mut part = BindingTable::new(current.stride);
                part.data.reserve((hi - lo) * current.stride);
                run_step_range(graph, plan, current, lo, hi, &mut part);
                part
            }));
        }
        for worker in workers {
            parts.push(worker.join().expect("BGP evaluation worker panicked"));
        }
    });
    next.data
        .reserve(parts.iter().map(|p| p.data.len()).sum::<usize>());
    for part in parts {
        next.rows += part.rows;
        next.data.extend_from_slice(&part.data);
    }
}

/// Evaluates `bgp` over `graph` under the given semantics.
pub fn evaluate(graph: &Graph, bgp: &Bgp, semantics: Semantics) -> Result<Relation, EngineError> {
    evaluate_filtered(graph, bgp, &[], semantics)
}

/// Evaluates `bgp` with sideways filter push-down: each [`FilterExpr`] is
/// applied the moment its variable binds, pruning partial solutions before
/// they fan out through later patterns. Equivalent to evaluating and then
/// selecting, but cheaper for selective filters (ablation E7c).
///
/// Filters that pin a variable to one constant (`Eq`, singleton `OneOf` —
/// the shape slice/dice Σ constraints take) go further: the variable is
/// **pre-bound** before any pattern runs, so the constant participates in
/// index probes, join ordering, and — on a sharded store — shard skipping,
/// instead of post-filtering rows the indexes already produced. Filters on
/// a pre-bound variable are decided at compile time: a contradiction
/// returns the empty relation without touching the store.
///
/// [`FilterExpr`]: crate::filter::FilterExpr
pub fn evaluate_filtered(
    graph: &Graph,
    bgp: &Bgp,
    filters: &[crate::filter::FilterExpr],
    semantics: Semantics,
) -> Result<Relation, EngineError> {
    bgp.validate()?;
    // Filter variables must occur in the body (checked up front: evaluation
    // may short-circuit on an empty intermediate result before reaching the
    // pattern that would have bound them).
    let body_vars = bgp.body_var_set();
    for f in filters {
        if !body_vars.contains(&f.var()) {
            return Err(EngineError::Validation(format!(
                "filter variable ?{} does not occur in the query body",
                bgp.vars().name(f.var())
            )));
        }
    }
    let mut pre_bound: FxHashMap<VarId, TermId> = FxHashMap::default();
    for f in filters {
        if let Some(c) = f.as_eq_constant() {
            pre_bound.entry(f.var()).or_insert(c);
        }
    }
    let mut residual: Vec<crate::filter::FilterExpr> = Vec::new();
    for f in filters {
        match pre_bound.get(&f.var()) {
            // Every filter on a pre-bound variable is decidable now: the
            // variable can only ever hold the pre-bound constant.
            Some(&c) if f.admits(c, graph.dict()) => {}
            Some(_) => return Ok(Relation::with_capacity(bgp.head().to_vec(), 0)),
            None => residual.push(f.clone()),
        }
    }
    let order = order_patterns(graph, bgp, &pre_bound);
    evaluate_steps(graph, bgp, &order, &pre_bound, &residual, semantics)
}

/// Ablation evaluator: index-backed binding propagation like [`evaluate`],
/// but visiting patterns in declaration order instead of greedy
/// cheapest-first order. Used by the benchmarks to quantify what the join
/// ordering buys.
pub fn evaluate_in_order(
    graph: &Graph,
    bgp: &Bgp,
    semantics: Semantics,
) -> Result<Relation, EngineError> {
    bgp.validate()?;
    let order: Vec<usize> = (0..bgp.body().len()).collect();
    evaluate_steps(graph, bgp, &order, &FxHashMap::default(), &[], semantics)
}

/// Shared driver: compiles `order` to step plans and runs them over the
/// double-buffered arena. `pre_bound` variables hold their constant from
/// the seed row onward (their slots are written before the first step).
fn evaluate_steps(
    graph: &Graph,
    bgp: &Bgp,
    order: &[usize],
    pre_bound: &FxHashMap<VarId, TermId>,
    filters: &[crate::filter::FilterExpr],
    semantics: Semantics,
) -> Result<Relation, EngineError> {
    let stride = bgp.vars().len();
    let plans = build_plans(bgp, order, pre_bound);
    let dict = graph.dict();
    let mut current = BindingTable::seed(stride);
    for (&v, &c) in pre_bound {
        current.data[v.index()] = c;
    }
    let mut next = BindingTable::new(stride);
    let sink = rdfcube_obs::sink();
    for (step, plan) in plans.iter().enumerate() {
        let sp = rdfcube_obs::span("bgp_step");
        let rows_in = current.rows as u64;
        let exec = run_step(graph, plan, &current, &mut next);
        let rows_matched = next.rows as u64;
        // Filters whose variable binds at this step fire right after it.
        if !filters.is_empty() {
            let active: Vec<&crate::filter::FilterExpr> = filters
                .iter()
                .filter(|f| plan.newly_bound.contains(&f.var()))
                .collect();
            if !active.is_empty() {
                next.retain(|row| active.iter().all(|f| f.admits(row[f.var().index()], dict)));
            }
        }
        let rows_out = next.rows as u64;
        sink.bgp_steps.inc();
        sink.step_rows.add(rows_out);
        sink.shard_probes.add(exec.shards_probed as u64);
        sink.shards_skipped.add(exec.shards_skipped as u64);
        if sp.active() {
            sp.rows(rows_in, rows_out);
            sp.attr("rows_matched", rows_matched);
            sp.attr("shards_probed", exec.shards_probed as u64);
            sp.attr("shards_skipped", exec.shards_skipped as u64);
            sp.detail(|| format!("pattern #{}", order[step]));
        }
        drop(sp);
        std::mem::swap(&mut current, &mut next);
        if current.is_empty() {
            break;
        }
    }
    project_head(bgp, &current, semantics)
}

/// Oracle evaluator: declaration order, full scans, no indexes. Produces the
/// same homomorphism set as [`evaluate`]; exponentially slower on purpose.
pub fn evaluate_nested_loop(
    graph: &Graph,
    bgp: &Bgp,
    semantics: Semantics,
) -> Result<Relation, EngineError> {
    bgp.validate()?;
    let all: Vec<Triple> = graph.triples().collect();
    let mut current: Vec<PartialRow> = vec![vec![None; bgp.vars().len()]];
    for pattern in bgp.body() {
        let mut next = Vec::new();
        for row in &current {
            for t in &all {
                try_bind(pattern, row, *t, &mut next);
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    let head = bgp.head().to_vec();
    let mut rel = Relation::with_capacity(head.clone(), current.len());
    let mut out: Vec<TermId> = Vec::with_capacity(head.len());
    for row in &current {
        out.clear();
        for &v in &head {
            let Some(id) = row[v.index()] else {
                return Err(EngineError::Validation(format!(
                    "head variable ?{} left unbound by evaluation",
                    bgp.vars().name(v)
                )));
            };
            out.push(id);
        }
        rel.push_row(&out);
    }
    Ok(match semantics {
        Semantics::Set => rel.distinct(),
        Semantics::Bag => rel,
    })
}

/// Projects the arena's surviving rows onto the head. Every head variable is
/// statically bound once all steps ran ([`Bgp::validate`] pins head ⊆ body
/// variables), so slots are read unconditionally.
fn project_head(
    bgp: &Bgp,
    solutions: &BindingTable,
    semantics: Semantics,
) -> Result<Relation, EngineError> {
    let head = bgp.head().to_vec();
    let mut rel = Relation::with_capacity(head.clone(), solutions.rows);
    for i in 0..solutions.rows {
        let row = solutions.row(i);
        rel.push_row_from(head.iter().map(|&v| row[v.index()]));
    }
    Ok(match semantics {
        Semantics::Set => rel.distinct(),
        Semantics::Bag => rel,
    })
}

/// Attempts to unify `t` with `pattern` under `row`; pushes the extended row
/// on success. Handles repeated variables (`?x p ?x`) by sequential
/// assign-then-check over the three positions. Oracle-only.
fn try_bind(pattern: &QueryPattern, row: &PartialRow, t: Triple, out: &mut Vec<PartialRow>) {
    let mut extended = row.clone();
    for (pos, value) in pattern.positions().into_iter().zip(t.as_array()) {
        match pos {
            PatternTerm::Const(c) => {
                if c != value {
                    return;
                }
            }
            PatternTerm::Var(v) => match extended[v.index()] {
                None => extended[v.index()] = Some(value),
                Some(bound) if bound == value => {}
                Some(_) => return,
            },
        }
    }
    out.push(extended);
}

/// Greedy join ordering: repeatedly picks the cheapest pattern, preferring
/// patterns connected to the already-bound variables (avoiding cartesian
/// products when the query allows it).
///
/// The cost estimate is the store's exact count for the pattern's constant
/// shape, discounted for each position occupied by an already-bound variable
/// (a bound variable behaves like a constant at execution time; `/8` per
/// position is a crude but effective stand-in for per-value statistics).
/// The constant-shape count of each pattern does not depend on the bound
/// set, so it is probed **once** per pattern and memoized — the greedy loop
/// is then O(n²) hash-set work, not O(n²) index probes.
///
/// `pre_bound` variables (Σ equality constants) are resolved **into** the
/// constant shape, so their base counts are exact rather than discounted
/// guesses — and they count as bound for connectivity, steering the plan to
/// start from the sliced dimension. On a sharded store the counts are sums
/// of shard-local statistics ([`Graph::count_matching`]).
fn order_patterns(graph: &Graph, bgp: &Bgp, pre_bound: &FxHashMap<VarId, TermId>) -> Vec<usize> {
    let n = bgp.body().len();
    let base: Vec<usize> = bgp
        .body()
        .iter()
        .map(|&p| base_count_resolved(graph, p, pre_bound))
        .collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: FxHashSet<VarId> = pre_bound.keys().copied().collect();
    let mut order = Vec::with_capacity(n);

    while !remaining.is_empty() {
        // Minimize (disconnected?, cost): connected patterns always beat
        // disconnected ones; among equals, the cheaper estimate wins.
        let mut best: Option<(usize, (bool, f64))> = None;
        for (slot, &pi) in remaining.iter().enumerate() {
            let pattern = bgp.body()[pi];
            let connected = bound.is_empty() || pattern.vars().any(|v| bound.contains(&v));
            let score = (
                !connected,
                estimate_with_count(base[pi], pattern, &bound, pre_bound),
            );
            let better = match &best {
                None => true,
                Some((_, (b_disc, b_cost))) => {
                    (!score.0 && *b_disc) || (score.0 == *b_disc && score.1 < *b_cost)
                }
            };
            if better {
                best = Some((slot, score));
            }
        }
        let (slot, _) = best.expect("remaining is non-empty");
        let pi = remaining.swap_remove(slot);
        for v in bgp.body()[pi].vars() {
            bound.insert(v);
        }
        order.push(pi);
    }
    order
}

/// One step of an explained query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Index of the pattern in the query body (declaration order).
    pub pattern_index: usize,
    /// The pattern rendered in the paper's notation.
    pub pattern: String,
    /// The optimizer's cardinality estimate when this step was chosen.
    pub estimated_rows: f64,
    /// Whether the step shares a variable with the previously bound set
    /// (false means a cartesian product was unavoidable).
    pub connected: bool,
}

/// Explains the join order [`evaluate`] would choose for `bgp`, without
/// running it — for debugging analytical queries over large instances.
pub fn explain(graph: &Graph, bgp: &Bgp) -> Result<Vec<PlanStep>, EngineError> {
    bgp.validate()?;
    let order = order_patterns(graph, bgp, &FxHashMap::default());
    let mut bound: FxHashSet<VarId> = FxHashSet::default();
    let mut steps = Vec::with_capacity(order.len());
    for pi in order {
        let pattern = bgp.body()[pi];
        let connected = bound.is_empty() || pattern.vars().any(|v| bound.contains(&v));
        let estimated_rows = estimate(graph, pattern, &bound);
        for v in pattern.vars() {
            bound.insert(v);
        }
        steps.push(PlanStep {
            pattern_index: pi,
            pattern: render_pattern(bgp, pattern, graph),
            estimated_rows,
            connected,
        });
    }
    Ok(steps)
}

fn render_pattern(bgp: &Bgp, pattern: QueryPattern, graph: &Graph) -> String {
    let pos = |t: PatternTerm| match t {
        PatternTerm::Var(v) => format!("?{}", bgp.vars().name(v)),
        PatternTerm::Const(c) => graph
            .dict()
            .get(c)
            .map_or_else(|| c.to_string(), |term| term.display_compact()),
    };
    format!("{} {} {}", pos(pattern.s), pos(pattern.p), pos(pattern.o))
}

/// The store's exact count for the pattern's constant shape (variables
/// wildcarded) — the memoizable part of [`estimate`].
fn base_count(graph: &Graph, pattern: QueryPattern) -> usize {
    base_count_resolved(graph, pattern, &FxHashMap::default())
}

/// [`base_count`] with `pre_bound` variables resolved to their constants:
/// the shape the evaluator will actually probe, so the count is exact for
/// pushed-down Σ selections.
fn base_count_resolved(
    graph: &Graph,
    pattern: QueryPattern,
    pre_bound: &FxHashMap<VarId, TermId>,
) -> usize {
    let as_const = |pos: PatternTerm| match pos {
        PatternTerm::Const(c) => Some(c),
        PatternTerm::Var(v) => pre_bound.get(&v).copied(),
    };
    let shape = TriplePattern::new(
        as_const(pattern.s),
        as_const(pattern.p),
        as_const(pattern.o),
    );
    graph.count_matching(shape)
}

fn estimate(graph: &Graph, pattern: QueryPattern, bound: &FxHashSet<VarId>) -> f64 {
    estimate_with_count(
        base_count(graph, pattern),
        pattern,
        bound,
        &FxHashMap::default(),
    )
}

fn estimate_with_count(
    count: usize,
    pattern: QueryPattern,
    bound: &FxHashSet<VarId>,
    resolved: &FxHashMap<VarId, TermId>,
) -> f64 {
    let mut est = count as f64;
    // Discount once per *distinct* already-bound variable: a repeated
    // variable (`?x p ?x`) behaves like one constant at execution time, not
    // two, so discounting each occurrence would square the factor. Variables
    // already resolved into the base count (Σ constants) are exact there —
    // discounting them again would double-count the selection.
    let mut discounted: [Option<VarId>; 3] = [None; 3];
    let mut n_discounted = 0;
    for pos in pattern.positions() {
        if let PatternTerm::Var(v) = pos {
            if bound.contains(&v)
                && !resolved.contains_key(&v)
                && !discounted[..n_discounted].contains(&Some(v))
            {
                discounted[n_discounted] = Some(v);
                n_discounted += 1;
                est /= 8.0;
            }
        }
    }
    // A matchable pattern yields at least one candidate row per probe;
    // without the floor, stacked discounts underflow toward 0 and make
    // heavily-bound patterns look free, misordering joins. Truly empty
    // patterns (count == 0) keep their exact 0 so they are tried first and
    // short-circuit evaluation.
    if count > 0 {
        est = est.max(1.0)
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use rdfcube_rdf::parse_turtle;

    /// The paper's Example 1 instance fragment (Figure 1 data).
    fn blog_graph() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap()
    }

    #[test]
    fn classifier_query_set_semantics() {
        let mut g = blog_graph();
        let c = parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            g.dict_mut(),
        )
        .unwrap();
        let rel = evaluate(&g, &c, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn measure_query_bag_semantics_counts_embeddings() {
        // Example 2: user1's measure bag is {|s1, s1, s2|}.
        let mut g = blog_graph();
        let m = parse_query(
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            g.dict_mut(),
        )
        .unwrap();
        let bag = evaluate(&g, &m, Semantics::Bag).unwrap();
        let user1 = g.dict().iri_id("user1").unwrap();
        let s1 = g.dict().iri_id("s1").unwrap();
        let user1_rows: Vec<_> = bag.rows().filter(|r| r[0] == user1).collect();
        assert_eq!(user1_rows.len(), 3);
        assert_eq!(user1_rows.iter().filter(|r| r[1] == s1).count(), 2);

        // Set semantics collapses the duplicate s1.
        let set = evaluate(&g, &m, Semantics::Set).unwrap();
        assert_eq!(set.rows().filter(|r| r[0] == user1).count(), 2);
    }

    #[test]
    fn index_nested_loop_and_in_order_agree() {
        let mut g = blog_graph();
        for text in [
            "q(?x) :- ?x rdf:type Blogger",
            "q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s",
            "q(?x, ?a, ?c) :- ?x hasAge ?a, ?x livesIn ?c, ?x rdf:type Blogger",
            "q(?p) :- ?x wrotePost ?p, ?p postedOn <s1>",
        ] {
            let q = parse_query(text, g.dict_mut()).unwrap();
            for semantics in [Semantics::Set, Semantics::Bag] {
                let fast = evaluate(&g, &q, semantics).unwrap();
                let slow = evaluate_nested_loop(&g, &q, semantics).unwrap();
                let in_order = evaluate_in_order(&g, &q, semantics).unwrap();
                assert!(fast.same_bag(&slow), "nested-loop mismatch for {text}");
                assert!(fast.same_bag(&in_order), "in-order mismatch for {text}");
            }
        }
    }

    #[test]
    fn repeated_variable_requires_equality() {
        let mut g = parse_turtle("<a> <p> <a> . <a> <p> <b> .").unwrap();
        let q = parse_query("q(?x) :- ?x p ?x", g.dict_mut()).unwrap();
        let rel = evaluate(&g, &q, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 1);
        let a = g.dict().iri_id("a").unwrap();
        assert_eq!(rel.row(0), &[a]);
    }

    #[test]
    fn repeated_variable_already_bound_is_probed_not_checked() {
        // Once ?x is bound by the first pattern, the second pattern's two
        // occurrences both resolve into the index probe.
        let mut g = parse_turtle("<a> <q> <a> . <a> <p> <a> . <b> <q> <b> .").unwrap();
        let q = parse_query("q(?x) :- ?x q ?x, ?x p ?x", g.dict_mut()).unwrap();
        let rel = evaluate(&g, &q, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 1);
        let slow = evaluate_nested_loop(&g, &q, Semantics::Set).unwrap();
        assert!(rel.same_bag(&slow));
    }

    #[test]
    fn all_constant_body_counts_homomorphisms() {
        // A body with no variables: bag semantics yields one zero-column row
        // per (trivial) homomorphism, set semantics collapses to one.
        let mut g = parse_turtle("<a> <p> <b> .").unwrap();
        let q = parse_query("q() :- a p b", g.dict_mut()).unwrap();
        let bag = evaluate(&g, &q, Semantics::Bag).unwrap();
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.arity(), 0);
        let set = evaluate(&g, &q, Semantics::Set).unwrap();
        assert_eq!(set.len(), 1);
        let q2 = parse_query("q() :- a p nope", g.dict_mut()).unwrap();
        assert!(evaluate(&g, &q2, Semantics::Bag).unwrap().is_empty());
    }

    #[test]
    fn unsatisfiable_constant_short_circuits() {
        let mut g = blog_graph();
        let q = parse_query("q(?x) :- ?x rdf:type Nonexistent", g.dict_mut()).unwrap();
        assert!(evaluate(&g, &q, Semantics::Set).unwrap().is_empty());
    }

    #[test]
    fn cartesian_product_still_works() {
        let mut g = parse_turtle("<a> <p> <b> . <c> <q> <d> .").unwrap();
        let q = parse_query("q(?x, ?y) :- ?x p ?b, ?y q ?d", g.dict_mut()).unwrap();
        let rel = evaluate(&g, &q, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 1); // one binding each side
        let slow = evaluate_nested_loop(&g, &q, Semantics::Set).unwrap();
        assert!(rel.same_bag(&slow));
    }

    #[test]
    fn variable_predicate_is_supported() {
        let mut g = parse_turtle("<a> <p> <b> . <a> <q> <b> .").unwrap();
        let q = parse_query("q(?prop) :- a ?prop b", g.dict_mut()).unwrap();
        let rel = evaluate(&g, &q, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn empty_body_is_error() {
        let g = Graph::new();
        let bgp = Bgp::new("q");
        assert!(evaluate(&g, &bgp, Semantics::Set).is_err());
    }

    #[test]
    fn filtered_evaluation_equals_post_selection() {
        use crate::filter::{CompareOp, FilterExpr};
        let mut g = blog_graph();
        let q = parse_query(
            "q(?x, ?a, ?c) :- ?x rdf:type Blogger, ?x hasAge ?a, ?x livesIn ?c",
            g.dict_mut(),
        )
        .unwrap();
        let a = q.vars().id("a").unwrap();
        let age30 = g.dict_mut().encode(&rdfcube_rdf::Term::integer(30));

        let filters = vec![FilterExpr::Compare {
            var: a,
            op: CompareOp::Ge,
            value: age30,
        }];
        let pushed = evaluate_filtered(&g, &q, &filters, Semantics::Set).unwrap();

        let all = evaluate(&g, &q, Semantics::Set).unwrap();
        let a_col = all.col(a).unwrap();
        let dict = g.dict();
        let post = all.select(|row| {
            dict.get(row[a_col])
                .and_then(rdfcube_rdf::Term::as_f64)
                .is_some_and(|v| v >= 30.0)
        });
        assert!(pushed.same_bag(&post));
        assert_eq!(pushed.len(), 2); // user3 and user4, both 35
    }

    #[test]
    fn filter_between_prunes_early() {
        use crate::filter::FilterExpr;
        let mut g = blog_graph();
        let q = parse_query("q(?x, ?a) :- ?x hasAge ?a, ?x wrotePost ?p", g.dict_mut()).unwrap();
        let a = q.vars().id("a").unwrap();
        let filters = vec![FilterExpr::NumericBetween {
            var: a,
            lo: 20,
            hi: 30,
        }];
        let rel = evaluate_filtered(&g, &q, &filters, Semantics::Set).unwrap();
        assert_eq!(rel.len(), 1); // only user1 (28)
    }

    #[test]
    fn explain_orders_selective_patterns_first() {
        let mut g = blog_graph();
        let q = parse_query(
            "q(?x, ?c) :- ?x wrotePost ?p, ?x livesIn ?c, ?p postedOn s3",
            g.dict_mut(),
        )
        .unwrap();
        let plan = explain(&g, &q).unwrap();
        assert_eq!(plan.len(), 3);
        // The single-match constant pattern must come first. (Estimates are
        // not monotone across steps: bound-variable discounts apply later.)
        assert!(plan[0].pattern.contains("s3"), "plan: {plan:?}");
        assert!(plan[0].estimated_rows <= 1.0);
        assert!(
            plan.iter().all(|s| s.connected),
            "rooted query has no cartesian step"
        );
        // Every body pattern appears exactly once.
        let mut idx: Vec<usize> = plan.iter().map(|s| s.pattern_index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn explain_flags_cartesian_products() {
        let mut g = parse_turtle("<a> <p> <b> . <c> <q> <d> .").unwrap();
        let q = parse_query("q(?x, ?y) :- ?x p ?v, ?y q ?w", g.dict_mut()).unwrap();
        let plan = explain(&g, &q).unwrap();
        assert!(plan[0].connected, "first step is trivially connected");
        assert!(
            !plan[1].connected,
            "second step must be a cartesian product"
        );
    }

    #[test]
    fn estimate_discounts_repeated_bound_variables_once_and_floors() {
        // 32 triples under predicate p.
        let mut g = Graph::new();
        for i in 0..32 {
            g.insert_iri(
                &format!("n{i}"),
                "p",
                &rdfcube_rdf::Term::iri(format!("m{i}")),
            );
        }
        let q = parse_query("q(?x) :- ?x p ?x", g.dict_mut()).unwrap();
        let x = q.vars().id("x").unwrap();
        let mut bound = FxHashSet::default();
        bound.insert(x);
        // ?x occupies two positions but must be discounted once: 32/8 = 4
        // (the old per-position discount gave 32/64 = 0.5).
        assert_eq!(estimate(&g, q.body()[0], &bound), 4.0);

        // Stacked discounts bottom out at 1 row, not 0.
        let mut g2 = parse_turtle("<a> <p> <b> .").unwrap();
        let q2 = parse_query("q(?x, ?y) :- ?x p ?y", g2.dict_mut()).unwrap();
        let mut both = FxHashSet::default();
        both.insert(q2.vars().id("x").unwrap());
        both.insert(q2.vars().id("y").unwrap());
        assert_eq!(estimate(&g2, q2.body()[0], &both), 1.0);

        // Truly empty patterns keep their exact zero (tried first, so the
        // evaluator short-circuits).
        let q3 = parse_query("q(?x) :- ?x nosuch ?x", g2.dict_mut()).unwrap();
        let mut bound3 = FxHashSet::default();
        bound3.insert(q3.vars().id("x").unwrap());
        assert_eq!(estimate(&g2, q3.body()[0], &bound3), 0.0);
    }

    #[test]
    fn parallel_evaluation_is_identical_to_serial() {
        // A join whose intermediate table crosses PAR_MIN_ROWS: 1500 users
        // with 2 posts each → 3000 rows entering the postedOn step.
        let mut g = Graph::new();
        for u in 0..1500 {
            for p in 0..2 {
                let post = format!("post_{u}_{p}");
                g.insert_iri(
                    &format!("user{u}"),
                    "wrotePost",
                    &rdfcube_rdf::Term::iri(post.clone()),
                );
                g.insert_iri(
                    &post,
                    "postedOn",
                    &rdfcube_rdf::Term::iri(format!("site{}", u % 7)),
                );
            }
        }
        g.compact();
        let q = parse_query("q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s", g.dict_mut()).unwrap();

        let before = eval_threads();
        set_eval_threads(1);
        let serial = evaluate(&g, &q, Semantics::Bag).unwrap();
        set_eval_threads(4);
        let parallel = evaluate(&g, &q, Semantics::Bag).unwrap();
        set_eval_threads(before);

        assert_eq!(serial.len(), 3000);
        assert_eq!(parallel.len(), serial.len());
        // Not merely the same bag: the in-order merge reproduces the exact
        // row order of serial evaluation.
        assert!(serial.rows().zip(parallel.rows()).all(|(a, b)| a == b));
    }

    /// A fixture big enough that intermediate tables cross [`PAR_MIN_ROWS`]:
    /// 1500 users with ages, a `knows` ring, two posts each, plus a tiny
    /// disconnected badge relation for cartesian shapes.
    fn big_graph() -> Graph {
        let mut g = Graph::new();
        for u in 0..1500i64 {
            let user = format!("user{u}");
            g.insert_iri(&user, "hasAge", &rdfcube_rdf::Term::integer(u % 50));
            g.insert_iri(
                &user,
                "knows",
                &rdfcube_rdf::Term::iri(format!("user{}", (u + 1) % 1500)),
            );
            for p in 0..2 {
                let post = format!("post_{u}_{p}");
                g.insert_iri(&user, "wrotePost", &rdfcube_rdf::Term::iri(post.clone()));
                g.insert_iri(
                    &post,
                    "postedOn",
                    &rdfcube_rdf::Term::iri(format!("site{}", u % 7)),
                );
            }
        }
        for b in 0..3 {
            g.insert_iri(
                &format!("badge{b}"),
                "awardedFor",
                &rdfcube_rdf::Term::iri(format!("cat{b}")),
            );
        }
        g.compact();
        g
    }

    /// The same triples over the same dictionary, repartitioned into `n`
    /// subject-hash shards.
    fn sharded_copy(flat: &Graph, n: usize) -> Graph {
        Graph::from_triples_sharded(flat.dict().clone(), flat.triples().collect::<Vec<_>>(), n)
    }

    fn assert_identical(a: &crate::relation::Relation, b: &crate::relation::Relation, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: row count");
        assert!(
            a.rows().zip(b.rows()).all(|(x, y)| x == y),
            "{ctx}: row order diverged"
        );
    }

    #[test]
    fn sharded_bound_step_is_identical_to_flat_serial() {
        // Step 2 probes (Bound, Const, Free): rows route to their subject's
        // shard and the merge is pure cursor arithmetic.
        let mut flat = big_graph();
        let q = parse_query(
            "q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s",
            flat.dict_mut(),
        )
        .unwrap();
        let before = eval_threads();
        set_eval_threads(1);
        let serial = evaluate(&flat, &q, Semantics::Bag).unwrap();
        assert_eq!(serial.len(), 3000);
        for n in [2, 7] {
            let sharded = sharded_copy(&flat, n);
            set_eval_threads(4);
            let par = evaluate(&sharded, &q, Semantics::Bag).unwrap();
            assert_identical(&serial, &par, &format!("bound path, {n} shards"));
        }
        set_eval_threads(before);
    }

    #[test]
    fn sharded_scan_step_is_identical_to_flat_serial() {
        let mut flat = big_graph();
        // Step 2 probes (Free, Const, Bound): the merge key is the subject
        // slot alone.
        let q1 = parse_query(
            "q(?x, ?y, ?a) :- ?x hasAge ?a, ?y hasAge ?a",
            flat.dict_mut(),
        )
        .unwrap();
        // Step 2 probes (Free, Free, Bound): the merge key is (subject,
        // predicate).
        let q2 = parse_query(
            "q(?x, ?a, ?y, ?r) :- ?x hasAge ?a, ?y ?r ?x",
            flat.dict_mut(),
        )
        .unwrap();
        let before = eval_threads();
        for (q, label) in [(&q1, "key [s]"), (&q2, "key [s,p]")] {
            set_eval_threads(1);
            let serial = evaluate(&flat, q, Semantics::Bag).unwrap();
            for n in [2, 7] {
                let sharded = sharded_copy(&flat, n);
                set_eval_threads(4);
                let par = evaluate(&sharded, q, Semantics::Bag).unwrap();
                assert_identical(&serial, &par, &format!("{label}, {n} shards"));
            }
        }
        set_eval_threads(before);
    }

    #[test]
    fn sharded_cartesian_scan_is_identical_and_skips_shards() {
        // Step 2 probes (Free, Const, Free) against the 3-triple badge
        // relation — most shards hold no `awardedFor` triples and are
        // skipped by the constant-shape statistics. Declaration order is
        // forced so the big relation feeds the scan step.
        let mut flat = big_graph();
        let q = parse_query(
            "q(?x, ?a, ?y, ?b) :- ?x hasAge ?a, ?y awardedFor ?b",
            flat.dict_mut(),
        )
        .unwrap();
        let before = eval_threads();
        set_eval_threads(1);
        let serial = evaluate_in_order(&flat, &q, Semantics::Bag).unwrap();
        assert_eq!(serial.len(), 1500 * 3);
        for n in [7, 16] {
            let sharded = sharded_copy(&flat, n);
            set_eval_threads(4);
            let par = evaluate_in_order(&sharded, &q, Semantics::Bag).unwrap();
            assert_identical(&serial, &par, &format!("cartesian scan, {n} shards"));
        }
        set_eval_threads(before);
    }

    #[test]
    fn sharded_full_scan_step_is_identical_to_flat_serial() {
        // Step 3 probes (Free, Free, Free) — the SPO-order merge key
        // (s, p, o) — fed by a 1200-row cartesian intermediate over a small
        // store.
        let mut flat = Graph::new();
        for i in 0..40i64 {
            flat.insert_iri(&format!("a{i}"), "p1", &rdfcube_rdf::Term::integer(i));
        }
        for i in 0..30i64 {
            flat.insert_iri(&format!("b{i}"), "p2", &rdfcube_rdf::Term::integer(i));
        }
        flat.compact();
        let q = parse_query(
            "q(?y, ?r, ?z) :- ?u p1 ?v, ?w p2 ?x, ?y ?r ?z",
            flat.dict_mut(),
        )
        .unwrap();
        let before = eval_threads();
        set_eval_threads(1);
        let serial = evaluate_in_order(&flat, &q, Semantics::Bag).unwrap();
        assert_eq!(serial.len(), 40 * 30 * 70);
        let sharded = sharded_copy(&flat, 7);
        set_eval_threads(4);
        let par = evaluate_in_order(&sharded, &q, Semantics::Bag).unwrap();
        set_eval_threads(before);
        assert_identical(&serial, &par, "full scan, 7 shards");
    }

    #[test]
    fn sharded_eval_with_pending_delta_matches_flat() {
        // Unmerged delta triples force the row-chunked fallback; results
        // must still be identical.
        let mut flat = big_graph();
        let q = parse_query(
            "q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s",
            flat.dict_mut(),
        )
        .unwrap();
        let mut sharded = sharded_copy(&flat, 7);
        for g in [&mut flat, &mut sharded] {
            g.insert_iri(
                "user_extra",
                "wrotePost",
                &rdfcube_rdf::Term::iri("post_extra"),
            );
            g.insert_iri(
                "post_extra",
                "postedOn",
                &rdfcube_rdf::Term::iri("site_extra"),
            );
        }
        assert!(sharded.has_pending_delta());
        let before = eval_threads();
        set_eval_threads(1);
        let serial = evaluate(&flat, &q, Semantics::Bag).unwrap();
        set_eval_threads(4);
        let par = evaluate(&sharded, &q, Semantics::Bag).unwrap();
        set_eval_threads(before);
        assert_identical(&serial, &par, "delta fallback");
    }

    #[test]
    fn eq_filter_pre_binding_equals_post_selection() {
        use crate::filter::{CompareOp, FilterExpr};
        let mut g = blog_graph();
        let q = parse_query(
            "q(?x, ?a, ?c) :- ?x rdf:type Blogger, ?x hasAge ?a, ?x livesIn ?c",
            g.dict_mut(),
        )
        .unwrap();
        let c_var = q.vars().id("c").unwrap();
        let ny = g.dict_mut().encode(&rdfcube_rdf::Term::literal("NY"));
        let all = evaluate(&g, &q, Semantics::Set).unwrap();
        let col = all.col(c_var).unwrap();
        let post = all.select(|row| row[col] == ny);
        // Singleton OneOf — the shape Σ slice constants arrive in.
        let one_of = vec![FilterExpr::OneOf {
            var: c_var,
            set: [ny].into_iter().collect(),
        }];
        let pushed = evaluate_filtered(&g, &q, &one_of, Semantics::Set).unwrap();
        assert!(pushed.same_bag(&post));
        assert_eq!(pushed.len(), 2); // user3 and user4
                                     // An Eq comparison pre-binds identically.
        let eq = vec![FilterExpr::Compare {
            var: c_var,
            op: CompareOp::Eq,
            value: ny,
        }];
        let pushed_eq = evaluate_filtered(&g, &q, &eq, Semantics::Set).unwrap();
        assert!(pushed_eq.same_bag(&post));
    }

    #[test]
    fn filters_on_pre_bound_variables_are_decided_at_compile_time() {
        use crate::filter::{CompareOp, FilterExpr};
        let mut g = blog_graph();
        let q = parse_query("q(?x, ?a) :- ?x hasAge ?a", g.dict_mut()).unwrap();
        let a = q.vars().id("a").unwrap();
        let age35 = g.dict_mut().encode(&rdfcube_rdf::Term::integer(35));
        let age28 = g.dict_mut().encode(&rdfcube_rdf::Term::integer(28));
        let eq = |value| FilterExpr::Compare {
            var: a,
            op: CompareOp::Eq,
            value,
        };
        // Contradictory equalities: provably empty, no evaluation needed.
        let empty = evaluate_filtered(&g, &q, &[eq(age35), eq(age28)], Semantics::Set).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.arity(), 2);
        // A range filter excluded by the constant is a contradiction too…
        let between = FilterExpr::NumericBetween {
            var: a,
            lo: 20,
            hi: 30,
        };
        let empty2 =
            evaluate_filtered(&g, &q, &[eq(age35), between.clone()], Semantics::Set).unwrap();
        assert!(empty2.is_empty());
        // …while an admitted one is simply dropped as implied.
        let kept = evaluate_filtered(&g, &q, &[eq(age28), between], Semantics::Set).unwrap();
        assert_eq!(kept.len(), 1); // only user1 (28)
    }

    #[test]
    fn eval_threads_is_clamped_to_one() {
        let before = eval_threads();
        set_eval_threads(0);
        assert_eq!(eval_threads(), 1);
        set_eval_threads(before.max(1));
    }

    #[test]
    fn filter_on_unbound_variable_is_an_error() {
        use crate::filter::FilterExpr;
        let mut g = blog_graph();
        let q = parse_query("q(?x) :- ?x rdf:type Blogger", g.dict_mut()).unwrap();
        let mut q2 = q.clone();
        let ghost = q2.var("ghost");
        let filters = vec![FilterExpr::NumericBetween {
            var: ghost,
            lo: 0,
            hi: 1,
        }];
        assert!(evaluate_filtered(&g, &q2, &filters, Semantics::Set).is_err());
    }
}
