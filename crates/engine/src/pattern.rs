//! Triple patterns over variables and constants.

use crate::var::VarId;
use rdfcube_rdf::TermId;
use std::fmt;

/// One position of a triple pattern: a query variable or a constant term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A query variable.
    Var(VarId),
    /// A dictionary-encoded constant.
    Const(TermId),
}

impl PatternTerm {
    /// The variable, if this position is one.
    #[inline]
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            PatternTerm::Var(v) => Some(*v),
            PatternTerm::Const(_) => None,
        }
    }

    /// The constant, if this position is one.
    #[inline]
    pub fn as_const(&self) -> Option<TermId> {
        match self {
            PatternTerm::Const(c) => Some(*c),
            PatternTerm::Var(_) => None,
        }
    }

    /// True for variable positions.
    #[inline]
    pub fn is_var(&self) -> bool {
        matches!(self, PatternTerm::Var(_))
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Var(v) => write!(f, "{v}"),
            PatternTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A query-level triple pattern `s p o` mixing variables and constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryPattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl QueryPattern {
    /// Builds a pattern.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        QueryPattern { s, p, o }
    }

    /// The pattern's positions as an array `[s, p, o]`.
    #[inline]
    pub fn positions(&self) -> [PatternTerm; 3] {
        [self.s, self.p, self.o]
    }

    /// Iterates the variables of this pattern (with duplicates if repeated).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.positions().into_iter().filter_map(|p| p.as_var())
    }

    /// True if `v` occurs in this pattern.
    pub fn mentions(&self, v: VarId) -> bool {
        self.vars().any(|w| w == v)
    }
}

impl fmt::Display for QueryPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u16) -> PatternTerm {
        PatternTerm::Var(VarId(n))
    }

    fn c(n: u32) -> PatternTerm {
        PatternTerm::Const(TermId(n))
    }

    #[test]
    fn accessors() {
        assert_eq!(v(1).as_var(), Some(VarId(1)));
        assert_eq!(v(1).as_const(), None);
        assert_eq!(c(2).as_const(), Some(TermId(2)));
        assert!(v(0).is_var());
        assert!(!c(0).is_var());
    }

    #[test]
    fn vars_iteration_includes_duplicates() {
        let p = QueryPattern::new(v(0), c(9), v(0));
        let vars: Vec<VarId> = p.vars().collect();
        assert_eq!(vars, vec![VarId(0), VarId(0)]);
        assert!(p.mentions(VarId(0)));
        assert!(!p.mentions(VarId(1)));
    }
}
