//! Analytical schemas (AnS) — "lenses" over semantic graphs.
//!
//! §2 of the paper: an AnS is a labeled directed graph whose **nodes are
//! analysis classes** defined by unary BGP queries and whose **edges are
//! analysis properties** defined by binary BGP queries. Crucially, node and
//! edge queries are *completely independent*: a resource can belong to a
//! class instance with or without values for any analysis property, and may
//! have several values for the same property — the RDF heterogeneity that
//! motivates the paper's algorithms.
//!
//! Queries are stored as text (the paper's notation, see
//! [`rdfcube_engine::parse_query`]) and parsed against the base graph at
//! materialization time, so one schema value can be applied to any number of
//! base graphs.

use crate::error::CoreError;
use rdfcube_engine::{evaluate, parse_query, Semantics};
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{vocab, Graph, Term};

/// A node of the analytical schema: an analysis class and the unary query
/// defining its instances.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The class IRI this node introduces in the instance (e.g. `Blogger`).
    pub class: String,
    /// Unary query text selecting the class's instances from the base graph.
    pub query: String,
}

/// An edge of the analytical schema: an analysis property and the binary
/// query defining its extension.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// The property IRI this edge introduces (e.g. `hasAge`).
    pub property: String,
    /// Source analysis class.
    pub from: String,
    /// Target analysis class.
    pub to: String,
    /// Binary query text selecting `(subject, object)` pairs.
    pub query: String,
}

/// An analytical schema: the collection of analysis classes and properties
/// a data analyst deems interesting (Figure 1 of the paper).
#[derive(Debug, Clone, Default)]
pub struct AnalyticalSchema {
    name: String,
    nodes: Vec<NodeSpec>,
    edges: Vec<EdgeSpec>,
}

impl AnalyticalSchema {
    /// Creates an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        AnalyticalSchema {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an analysis class defined by `query` (unary, in the paper's
    /// notation, e.g. `"n(?x) :- ?x rdf:type Person, ?x wrotePost ?p"`).
    pub fn add_node(&mut self, class: impl Into<String>, query: impl Into<String>) -> &mut Self {
        self.nodes.push(NodeSpec {
            class: class.into(),
            query: query.into(),
        });
        self
    }

    /// Declares an analysis property `from --property--> to` defined by
    /// `query` (binary).
    pub fn add_edge(
        &mut self,
        property: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        query: impl Into<String>,
    ) -> &mut Self {
        self.edges.push(EdgeSpec {
            property: property.into(),
            from: from.into(),
            to: to.into(),
            query: query.into(),
        });
        self
    }

    /// The declared nodes.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The declared edges.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// Looks up a node by class name.
    pub fn node(&self, class: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.class == class)
    }

    /// Looks up an edge by property name.
    pub fn edge(&self, property: &str) -> Option<&EdgeSpec> {
        self.edges.iter().find(|e| e.property == property)
    }

    /// True if `property` is a declared analysis property.
    pub fn has_property(&self, property: &str) -> bool {
        self.edge(property).is_some()
    }

    /// True if `class` is a declared analysis class.
    pub fn has_class(&self, class: &str) -> bool {
        self.node(class).is_some()
    }

    /// Structural validation: unique class/property names, and every edge
    /// endpoint refers to a declared class.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut classes: FxHashSet<&str> = FxHashSet::default();
        for n in &self.nodes {
            if !classes.insert(&n.class) {
                return Err(CoreError::SchemaViolation(format!(
                    "class '{}' declared twice",
                    n.class
                )));
            }
        }
        let mut props: FxHashSet<&str> = FxHashSet::default();
        for e in &self.edges {
            if !props.insert(&e.property) {
                return Err(CoreError::SchemaViolation(format!(
                    "property '{}' declared twice",
                    e.property
                )));
            }
            for endpoint in [&e.from, &e.to] {
                if !classes.contains(endpoint.as_str()) {
                    return Err(CoreError::SchemaViolation(format!(
                        "edge '{}' references undeclared class '{}'",
                        e.property, endpoint
                    )));
                }
            }
        }
        Ok(())
    }

    /// Materializes the schema's instance over `base`: an RDF graph holding
    /// `u rdf:type C` for every node answer `u` of class `C`, and `s p o`
    /// for every edge answer `(s, o)` of property `p`.
    ///
    /// `base` is taken mutably only to intern query constants into its
    /// dictionary; its triples are never modified.
    pub fn materialize(&self, base: &mut Graph) -> Result<Graph, CoreError> {
        self.validate()?;
        let mut instance = Graph::new();
        let rdf_type = instance.encode(&Term::iri(vocab::RDF_TYPE));

        // Stage every node/edge answer as an encoded triple and hand the
        // whole instance to the bulk loader in one batch (set semantics is
        // restored by the loader's dedup).
        let mut staged: Vec<rdfcube_rdf::Triple> = Vec::new();
        for node in &self.nodes {
            let q = parse_query(&node.query, base.dict_mut())?;
            if q.head().len() != 1 {
                return Err(CoreError::SchemaViolation(format!(
                    "node query for class '{}' must be unary, has arity {}",
                    node.class,
                    q.head().len()
                )));
            }
            let rel = evaluate(base, &q, Semantics::Set)?;
            let class_id = instance.encode(&Term::iri(node.class.as_str()));
            for row in rel.rows() {
                let member = instance.encode(base.dict().term(row[0]));
                staged.push(rdfcube_rdf::Triple::new(member, rdf_type, class_id));
            }
        }

        for edge in &self.edges {
            let q = parse_query(&edge.query, base.dict_mut())?;
            if q.head().len() != 2 {
                return Err(CoreError::SchemaViolation(format!(
                    "edge query for property '{}' must be binary, has arity {}",
                    edge.property,
                    q.head().len()
                )));
            }
            let rel = evaluate(base, &q, Semantics::Set)?;
            let prop_id = instance.encode(&Term::iri(edge.property.as_str()));
            for row in rel.rows() {
                let s = instance.encode(base.dict().term(row[0]));
                let o = instance.encode(base.dict().term(row[1]));
                staged.push(rdfcube_rdf::Triple::new(s, prop_id, o));
            }
        }

        instance.bulk_insert_ids(staged);
        Ok(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::parse_turtle;

    /// A miniature version of the Figure 1 schema over heterogeneous data:
    /// user3 has no age, user2 has no city — both still classify as Bloggers.
    fn base() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Person> ; <age> 28 ; <city> \"Madrid\" .
             <user2> rdf:type <Person> ; <age> 40 .
             <user3> rdf:type <Person> ; <city> \"NY\" .
             <user1> <posted> <p1> . <user2> <posted> <p2> .",
        )
        .unwrap()
    }

    fn schema() -> AnalyticalSchema {
        let mut s = AnalyticalSchema::new("blog");
        s.add_node("Blogger", "n(?x) :- ?x rdf:type Person")
            .add_node("Age", "n(?a) :- ?x age ?a")
            .add_node("City", "n(?c) :- ?x city ?c")
            .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
            .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c");
        s
    }

    #[test]
    fn materializes_nodes_and_edges_independently() {
        let mut b = base();
        let inst = schema().materialize(&mut b).unwrap();
        // 3 Blogger typings + 2 Age typings + 2 City typings + 2 hasAge + 2 livesIn.
        assert_eq!(inst.len(), 11);
        // user3 is a Blogger even though it has no age (heterogeneity).
        assert!(inst.contains(
            &Term::iri("user3"),
            &Term::iri(vocab::RDF_TYPE),
            &Term::iri("Blogger")
        ));
        assert!(inst.contains(
            &Term::iri("user1"),
            &Term::iri("hasAge"),
            &Term::integer(28)
        ));
    }

    #[test]
    fn node_arity_is_checked() {
        let mut s = AnalyticalSchema::new("bad");
        s.add_node("C", "n(?x, ?y) :- ?x p ?y");
        let err = s.materialize(&mut base()).unwrap_err();
        assert!(matches!(err, CoreError::SchemaViolation(_)));
    }

    #[test]
    fn edge_arity_is_checked() {
        let mut s = AnalyticalSchema::new("bad");
        s.add_node("C", "n(?x) :- ?x rdf:type Person");
        s.add_edge("p", "C", "C", "e(?x) :- ?x p ?x");
        let err = s.materialize(&mut base()).unwrap_err();
        assert!(matches!(err, CoreError::SchemaViolation(_)));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut s = AnalyticalSchema::new("bad");
        s.add_node("C", "n(?x) :- ?x p ?x")
            .add_node("C", "n(?x) :- ?x q ?x");
        assert!(s.validate().is_err());
    }

    #[test]
    fn dangling_edge_endpoint_rejected() {
        let mut s = AnalyticalSchema::new("bad");
        s.add_node("C", "n(?x) :- ?x p ?x");
        s.add_edge("e", "C", "Ghost", "e(?x, ?y) :- ?x p ?y");
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("Ghost"));
    }

    #[test]
    fn lookup_helpers() {
        let s = schema();
        assert!(s.validate().is_ok());
        assert!(s.has_class("Blogger"));
        assert!(!s.has_class("Video"));
        assert!(s.has_property("hasAge"));
        assert_eq!(s.edge("livesIn").unwrap().to, "City");
        assert_eq!(s.nodes().len(), 3);
        assert_eq!(s.edges().len(), 2);
    }

    #[test]
    fn instance_is_deduplicated() {
        // Two query matches producing the same pair collapse to one triple.
        let mut b = parse_turtle("<u> rdf:type <Person> . <u> <city> \"NY\" . <u> <city> \"NY\" .")
            .unwrap();
        let inst = schema().materialize(&mut b).unwrap();
        assert!(inst.contains(&Term::iri("u"), &Term::iri("livesIn"), &Term::literal("NY")));
    }
}
