//! The cube catalog: signature-indexed materialized views under a memory
//! budget.
//!
//! The session layer's answer to the ROADMAP's "heavy traffic" goal. Three
//! responsibilities live here:
//!
//! 1. **Indexing** — every materialized cube is registered under its
//!    [`ViewKey`] (canonical body text, root, measure signature, ⊕), so a
//!    target query probes exactly one *derivation family* in O(1) instead
//!    of linearly rescanning — and re-canonicalizing — every cube. The
//!    [`ViewSignature`] and canonical dimension names are computed once at
//!    registration and stored on the entry.
//! 2. **Applicability** — [`CatalogEntry::classify`] decides whether (and
//!    how) an entry can soundly answer a target: the paper's Proposition 1
//!    (dice), Proposition 2 (drill-out with unrestricted removed
//!    dimensions), or Proposition 3 (drill-in of an existential variable),
//!    expressed as a [`Derivation`]. *Which* applicable derivation to run
//!    is not decided here — that is the cost model's job
//!    ([`crate::cost`]).
//! 3. **Budgeting** — an optional byte budget over the materialized
//!    payloads (`ans(Q)` + `pres(Q)`, measured by their `approx_bytes`).
//!    When the resident set outgrows the budget, cold entries are evicted
//!    by benefit-weighted LRU: the payload is dropped but the entry — its
//!    query, signature and statistics — stays, so every [`cube
//!    handle`](crate::CubeHandle) remains valid forever and an evicted
//!    cube is transparently recomputed on its next touch
//!    ([`CubeCatalog::ensure_resident`]).
//!
//! The statistics cached on each entry (`ans` cells, `pres` rows, byte
//! sizes, per-dimension distinct counts) are exactly what the cost model
//! consumes; they survive eviction, so evicted entries still participate
//! in planning (with a recompute surcharge).

use crate::answer::Cube;
use crate::cost::ExplainedStrategy;
use crate::error::CoreError;
use crate::extended::{ExtendedQuery, Sigma};
use crate::pres::PartialResult;
use crate::session::Strategy;
use crate::signature::{BodySignature, ViewKey, ViewSignature};
use rdfcube_engine::VarId;
use rdfcube_obs as obs;
use rdfcube_rdf::fx::FxHashMap;
use rdfcube_rdf::Graph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// How a target query can be soundly derived from a materialized source
/// cube (the applicability side of Propositions 1–3; costing is separate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// Same dimensions in the same order; the target Σ refines the
    /// source's → σ over `ans(Q)` (Proposition 1).
    Dice,
    /// Target dimensions are an order-preserving subset; the listed source
    /// dimension indices are dropped (their source Σ must be unrestricted)
    /// → Algorithm 1 (Proposition 2).
    DrillOut(Vec<usize>),
    /// Target has exactly one extra trailing dimension, existential in the
    /// source classifier → Algorithm 2 (Proposition 3). Holds the source
    /// classifier variable to promote.
    DrillIn(VarId),
}

/// Size statistics cached on a catalog entry at materialization time.
///
/// These outlive eviction: the cost model keeps estimating with them while
/// the payload itself is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeStats {
    /// Number of cells in `ans(Q)`.
    pub ans_cells: usize,
    /// Number of rows in `pres(Q)`.
    pub pres_rows: usize,
    /// `ans.approx_bytes() + pres.approx_bytes()` — what the entry charges
    /// against the budget while resident.
    pub bytes: usize,
    /// Distinct values per dimension column of `pres(Q)`, in head order.
    pub dim_distinct: Vec<usize>,
}

/// The materialized payload of an entry; the catalog's reference is
/// dropped on eviction (outstanding [`CubeSnapshot`]s keep theirs).
#[derive(Debug)]
struct CubePayload {
    ans: Cube,
    pres: PartialResult,
}

/// An owned, shareable view of one materialized cube: the extended query
/// plus the `ans(Q)`/`pres(Q)` payload, both behind `Arc`s.
///
/// Cloning a snapshot clones two pointers, not the data. A snapshot stays
/// readable after the catalog evicts or refreshes the entry it came from —
/// it is a *snapshot*: concurrent readers each see the consistent payload
/// they grabbed, never a torn or mutated one.
#[derive(Debug, Clone)]
pub struct CubeSnapshot {
    eq: Arc<ExtendedQuery>,
    payload: Arc<CubePayload>,
}

impl CubeSnapshot {
    /// The extended query that defines the cube.
    pub fn query(&self) -> &ExtendedQuery {
        &self.eq
    }

    /// The materialized answer `ans(Q)`.
    pub fn answer(&self) -> &Cube {
        &self.payload.ans
    }

    /// The materialized partial result `pres(Q)`.
    pub fn pres(&self) -> &PartialResult {
        &self.payload.pres
    }
}

/// One materialized (or evicted-but-recomputable) cube in the catalog.
///
/// Recency/benefit bookkeeping (`last_touch`, `hits`) is atomic so that
/// concurrent readers of a shared catalog can credit reuse without a
/// write lock; everything the answer depends on stays behind `&mut`.
#[derive(Debug)]
pub struct CatalogEntry {
    eq: Arc<ExtendedQuery>,
    sig: ViewSignature,
    stats: CubeStats,
    payload: Option<Arc<CubePayload>>,
    /// The instance's triple count when this payload was materialized —
    /// a moved watermark means the cells may no longer reflect the data.
    watermark: usize,
    /// Catalog clock value of the last touch (registration, reuse as a
    /// derivation source, or explicit [`CubeCatalog::touch`]).
    last_touch: AtomicU64,
    /// Times this entry served as the source of a derivation.
    hits: AtomicU64,
}

impl CatalogEntry {
    /// The extended query defining the cube.
    pub fn query(&self) -> &ExtendedQuery {
        &self.eq
    }

    /// The extended query behind its shared pointer (cheap to clone out
    /// of a locked catalog).
    pub fn query_arc(&self) -> Arc<ExtendedQuery> {
        Arc::clone(&self.eq)
    }

    /// The signature computed at registration.
    pub fn signature(&self) -> &ViewSignature {
        &self.sig
    }

    /// The cached size statistics.
    pub fn stats(&self) -> &CubeStats {
        &self.stats
    }

    /// True while `ans(Q)`/`pres(Q)` are materialized (not evicted).
    pub fn is_resident(&self) -> bool {
        self.payload.is_some()
    }

    /// The instance triple count at which this payload was materialized.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// True if the payload was materialized against the instance's
    /// current triple count — i.e. no triples were inserted since. A
    /// stale entry still plans (its statistics remain useful estimates)
    /// but must be recomputed before its cells are served
    /// ([`CubeCatalog::ensure_resident`] does both).
    pub fn is_fresh(&self, instance: &Graph) -> bool {
        self.watermark == instance.len()
    }

    /// Times this entry served as a derivation source.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The materialized answer and partial result, if resident.
    pub fn payload(&self) -> Option<(&Cube, &PartialResult)> {
        self.payload.as_deref().map(|p| (&p.ans, &p.pres))
    }

    /// Decides whether (and how) this entry can soundly answer a target
    /// query with signature `target_sig` and restriction `target_sigma`,
    /// assuming the family key already matched (same canonical body, root,
    /// measure and ⊕).
    pub fn classify(&self, target_sig: &ViewSignature, target_sigma: &Sigma) -> Option<Derivation> {
        classify_derivation(
            &self.sig.dims,
            self.eq.sigma(),
            &target_sig.dims,
            target_sigma,
            self.eq.query().classifier().head(),
            &self.sig.body,
        )
    }
}

/// Cumulative catalog counters, for observability and the E10 report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogCounters {
    /// Queries answered by reusing a materialized cube.
    pub hits: u64,
    /// Queries that fell back to from-scratch evaluation.
    pub misses: u64,
    /// Payloads dropped by the budget enforcer.
    pub evictions: u64,
    /// Evicted payloads recomputed on demand.
    pub rehydrations: u64,
    /// Resident-but-stale payloads recomputed after the instance grew
    /// past their watermark.
    pub refreshes: u64,
}

/// Registry-backed catalog metric handles. The same atomic cells serve
/// [`CubeCatalog::counters`] (so existing counter semantics are exactly
/// preserved) and the [`rdfcube_obs::Registry`] snapshot exporters — and
/// because the shared plane's stats are pass-throughs to its catalog,
/// `OlapSession` and `SharedSession` report identical metric names.
/// Hit/miss accounting happens on the concurrent read path of a shared
/// catalog, where only `&self` is held; every handle increment is one
/// lock-free atomic RMW.
#[derive(Debug)]
struct CatalogMetrics {
    /// Each catalog owns its registry, so two sessions in one process
    /// never mix their counters.
    registry: obs::Registry,
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    rehydrations: obs::Counter,
    refreshes: obs::Counter,
    resident_bytes: obs::Gauge,
    peak_resident_bytes: obs::Gauge,
    entries: obs::Gauge,
    query_nanos: obs::Histogram,
    advisor_runs: obs::Counter,
    advisor_selected: obs::Counter,
    advisor_materialized_bytes: obs::Gauge,
}

impl Default for CatalogMetrics {
    fn default() -> Self {
        let registry = obs::Registry::new();
        CatalogMetrics {
            hits: registry.counter("rdfcube_catalog_hits_total"),
            misses: registry.counter("rdfcube_catalog_misses_total"),
            evictions: registry.counter("rdfcube_catalog_evictions_total"),
            rehydrations: registry.counter("rdfcube_catalog_rehydrations_total"),
            refreshes: registry.counter("rdfcube_catalog_refreshes_total"),
            resident_bytes: registry.gauge("rdfcube_catalog_resident_bytes"),
            peak_resident_bytes: registry.gauge("rdfcube_catalog_peak_resident_bytes"),
            entries: registry.gauge("rdfcube_catalog_entries"),
            query_nanos: registry.histogram("rdfcube_query_nanos"),
            advisor_runs: registry.counter("rdfcube_advisor_runs_total"),
            advisor_selected: registry.counter("rdfcube_advisor_selected_total"),
            advisor_materialized_bytes: registry.gauge("rdfcube_advisor_materialized_bytes"),
            registry,
        }
    }
}

/// Per-[`ViewKey`] access counters. Unlike an entry's own `hits`/
/// `last_touch` (which the eviction sweep decays), these accumulate over
/// the catalog's whole lifetime and — like [`CubeStats`] — survive payload
/// eviction, so a hot family stays recognizably hot even while its cubes
/// are cold on disk. They are bumped on *every* probe of the family
/// (duplicate hits, derivation hits, and misses alike), not just at
/// registration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyStats {
    /// Queries that probed this family (hits and misses).
    pub accesses: u64,
    /// Catalog clock value of the most recent probe.
    pub last_touch: u64,
}

/// One distinct query shape recorded in the catalog's query log: the
/// extended query, its signature, and what the planner last did with it.
/// Shapes are deduplicated the way [`crate::session`]'s duplicate check
/// works — same family, same canonical dimensions, same Σ — so repeated
/// traffic bumps `count` instead of growing the log.
#[derive(Debug, Clone)]
pub struct LoggedQuery {
    eq: Arc<ExtendedQuery>,
    sig: ViewSignature,
    strategy: Strategy,
    estimated_cost: f64,
    scratch_cost: f64,
    measured_nanos: u64,
    count: u64,
    last_seen: u64,
}

impl LoggedQuery {
    /// The logged extended query (a representative of the shape).
    pub fn query(&self) -> &ExtendedQuery {
        &self.eq
    }

    /// The logged query behind its shared pointer.
    pub fn query_arc(&self) -> Arc<ExtendedQuery> {
        Arc::clone(&self.eq)
    }

    /// The shape's view signature (family key + canonical dimensions).
    pub fn signature(&self) -> &ViewSignature {
        &self.sig
    }

    /// The strategy the planner chose the last time this shape was asked.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The planner's cost estimate for that strategy (abstract row
    /// touches).
    pub fn estimated_cost(&self) -> f64 {
        self.estimated_cost
    }

    /// The from-scratch estimate the chosen strategy was compared against.
    pub fn scratch_cost(&self) -> f64 {
        self.scratch_cost
    }

    /// Wall-clock nanoseconds the last answer of this shape took,
    /// end to end (the cheap measured cost the advisor can sanity-check
    /// estimates against).
    pub fn measured_nanos(&self) -> u64 {
        self.measured_nanos
    }

    /// How many times this exact shape was asked.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Catalog clock value of the most recent ask.
    pub fn last_seen(&self) -> u64 {
        self.last_seen
    }
}

/// Distinct shapes the query log retains full queries for. Past the cap,
/// new shapes still count toward [`KeyStats`] (frequency feeds eviction)
/// but are not remembered individually — the advisor works from a bounded
/// sample of the head of the workload, which is exactly where Zipf-skewed
/// benefit lives.
const MAX_LOGGED_SHAPES: usize = 1024;

/// The query log: every `answer_query`/`transform` probe lands here.
/// Lives behind a `Mutex` inside the catalog so the shared plane's
/// read-locked serving paths can record through `&self`.
#[derive(Debug, Default)]
struct QueryLog {
    shapes: Vec<LoggedQuery>,
    index: FxHashMap<ViewKey, Vec<usize>>,
    key_stats: FxHashMap<ViewKey, KeyStats>,
    /// Total queries recorded (including shapes past the cap).
    total: u64,
    /// [`Self::total`] at the time of the last advisor run.
    advised_at: u64,
}

/// A point-in-time summary of the catalog's access statistics: the
/// cumulative counters plus the per-family frequency counters the query
/// log maintains.
#[derive(Debug, Clone)]
pub struct CatalogStats {
    /// Cumulative hit/miss/eviction/rehydration/refresh counters.
    pub counters: CatalogCounters,
    /// Total queries recorded in the log.
    pub logged_queries: u64,
    /// Distinct query shapes the log retains.
    pub distinct_shapes: usize,
    /// Per-family access counters, hottest first.
    pub key_stats: Vec<(ViewKey, KeyStats)>,
}

/// The signature-indexed, budget-aware store of materialized cubes.
#[derive(Debug)]
pub struct CubeCatalog {
    entries: Vec<CatalogEntry>,
    index: FxHashMap<ViewKey, Vec<usize>>,
    budget: Option<usize>,
    resident_bytes: usize,
    peak_resident_bytes: usize,
    clock: AtomicU64,
    metrics: CatalogMetrics,
    log: Mutex<QueryLog>,
}

impl Default for CubeCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl CubeCatalog {
    /// An unbounded catalog (no payload is ever evicted).
    pub fn new() -> Self {
        CubeCatalog {
            entries: Vec::new(),
            index: FxHashMap::default(),
            budget: None,
            resident_bytes: 0,
            peak_resident_bytes: 0,
            clock: AtomicU64::new(0),
            metrics: CatalogMetrics::default(),
            log: Mutex::new(QueryLog::default()),
        }
    }

    /// A catalog that keeps at most `bytes` of materialized payload
    /// resident (the most recently touched entry is always kept, even if
    /// it alone exceeds the budget — a result must be readable right after
    /// it is produced).
    pub fn with_budget(bytes: usize) -> Self {
        CubeCatalog {
            budget: Some(bytes),
            ..Self::new()
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Reconfigures the budget; tightening it evicts immediately.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
        let pin = self.most_recently_touched();
        self.enforce_budget(pin);
    }

    /// Number of entries (resident or evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the catalog holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of materialized payload currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of entries whose payload is currently resident.
    pub fn resident_len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_resident()).count()
    }

    /// High-water mark of [`Self::resident_bytes`]. Insertions and
    /// rehydrations make room *before* attaching their payload, so this
    /// gauge genuinely never exceeds the budget unless a single cube is
    /// itself larger than the budget (the newest result is always kept).
    /// The one cube currently being materialized is accounted only once
    /// attached.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident_bytes
    }

    /// Cumulative hit/miss/eviction/rehydration counters (the same cells
    /// the metrics registry exports — see [`Self::metrics_snapshot`]).
    pub fn counters(&self) -> CatalogCounters {
        CatalogCounters {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
            rehydrations: self.metrics.rehydrations.get(),
            refreshes: self.metrics.refreshes.get(),
        }
    }

    /// Lock-free snapshot of this catalog's metrics registry: the
    /// hit/miss/eviction/rehydration/refresh counters, resident-bytes
    /// gauges, the `rdfcube_query_nanos` latency histogram and the
    /// advisor gauges, ready for the Prometheus/JSON exporters.
    pub fn metrics_snapshot(&self) -> obs::Snapshot {
        self.metrics.registry.snapshot()
    }

    /// Records a completed advisor run in the registry (run counter,
    /// cumulative selections, materialized-bytes gauge).
    pub(crate) fn record_advisor_run(&self, selected: u64, materialized_bytes: u64) {
        self.metrics.advisor_runs.inc();
        self.metrics.advisor_selected.add(selected);
        self.metrics
            .advisor_materialized_bytes
            .set(materialized_bytes);
    }

    /// Records a reuse hit (the session calls this when a derivation ran).
    pub fn record_hit(&self) {
        self.metrics.hits.inc();
    }

    /// Records a fallback to from-scratch evaluation.
    pub fn record_miss(&self) {
        self.metrics.misses.inc();
    }

    fn lock_log(&self) -> std::sync::MutexGuard<'_, QueryLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one answered query in the log: bumps the family's
    /// [`KeyStats`] (every probe counts, hit or miss) and either bumps an
    /// existing shape's frequency or remembers the new shape. Takes
    /// `&self` so the shared plane's serving paths can record under their
    /// read lock; the log's own mutex is held only for the bookkeeping.
    pub fn record_query(
        &self,
        eq: &ExtendedQuery,
        sig: &ViewSignature,
        explained: &ExplainedStrategy,
        measured_nanos: u64,
    ) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.query_nanos.record(measured_nanos);
        let mut log = self.lock_log();
        log.total += 1;
        let ks = log.key_stats.entry(sig.key.clone()).or_default();
        ks.accesses += 1;
        ks.last_touch = now;
        let found = log
            .index
            .get(&sig.key)
            .into_iter()
            .flatten()
            .copied()
            .find(|&i| {
                let s = &log.shapes[i];
                s.sig.dims == sig.dims && s.eq.sigma() == eq.sigma()
            });
        match found {
            Some(i) => {
                let s = &mut log.shapes[i];
                s.count += 1;
                s.last_seen = now;
                s.strategy = explained.strategy;
                s.estimated_cost = explained.estimated_cost;
                s.scratch_cost = explained.scratch_cost;
                s.measured_nanos = measured_nanos;
            }
            None if log.shapes.len() < MAX_LOGGED_SHAPES => {
                let i = log.shapes.len();
                log.index.entry(sig.key.clone()).or_default().push(i);
                log.shapes.push(LoggedQuery {
                    eq: Arc::new(eq.clone()),
                    sig: sig.clone(),
                    strategy: explained.strategy,
                    estimated_cost: explained.estimated_cost,
                    scratch_cost: explained.scratch_cost,
                    measured_nanos,
                    count: 1,
                    last_seen: now,
                });
            }
            None => {}
        }
    }

    /// Total queries recorded in the log so far.
    pub fn log_total(&self) -> u64 {
        self.lock_log().total
    }

    /// [`Self::log_total`] as of the last [`Self::mark_advised`] — the
    /// staleness baseline for [`crate::SharedSession::advise_if_stale`].
    pub fn advised_log_total(&self) -> u64 {
        self.lock_log().advised_at
    }

    /// Marks the current log position as advised (called by the advisor
    /// after a selection run, successful or empty).
    pub fn mark_advised(&mut self) {
        let log = self.log.get_mut().unwrap_or_else(PoisonError::into_inner);
        log.advised_at = log.total;
    }

    /// A snapshot of the distinct query shapes in the log (the advisor's
    /// input). Cloning is cheap: queries travel behind `Arc`s.
    pub fn logged_shapes(&self) -> Vec<LoggedQuery> {
        self.lock_log().shapes.clone()
    }

    /// The access counters of one family (zero if never probed).
    pub fn key_stats(&self, key: &ViewKey) -> KeyStats {
        self.lock_log()
            .key_stats
            .get(key)
            .copied()
            .unwrap_or_default()
    }

    /// A point-in-time summary: cumulative counters plus per-family
    /// frequency counters, hottest families first.
    pub fn stats(&self) -> CatalogStats {
        let counters = self.counters();
        let log = self.lock_log();
        let mut key_stats: Vec<(ViewKey, KeyStats)> =
            log.key_stats.iter().map(|(k, &s)| (k.clone(), s)).collect();
        key_stats.sort_by_key(|(_, s)| std::cmp::Reverse(s.accesses));
        CatalogStats {
            counters,
            logged_queries: log.total,
            distinct_shapes: log.shapes.len(),
            key_stats,
        }
    }

    /// The entry at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range — use [`Self::get_entry`] for
    /// handles that may belong to a different session.
    pub fn entry(&self, idx: usize) -> &CatalogEntry {
        &self.entries[idx]
    }

    /// The entry at `idx`, or `None` if no such entry exists (a handle
    /// from another session, for instance).
    pub fn get_entry(&self, idx: usize) -> Option<&CatalogEntry> {
        self.entries.get(idx)
    }

    /// An owned snapshot of the entry's query + payload, if resident.
    /// The snapshot shares the materialized data (two `Arc` clones) and
    /// stays valid after later evictions or refreshes.
    pub fn snapshot(&self, idx: usize) -> Option<CubeSnapshot> {
        let e = self.entries.get(idx)?;
        Some(CubeSnapshot {
            eq: Arc::clone(&e.eq),
            payload: Arc::clone(e.payload.as_ref()?),
        })
    }

    /// The indices of the derivation family for `key` (empty if none).
    pub fn family(&self, key: &ViewKey) -> &[usize] {
        self.index.get(key).map_or(&[], Vec::as_slice)
    }

    /// Registers a materialized cube, computing its signature and
    /// statistics once, and enforces the budget (the new entry is pinned).
    /// `watermark` is the instance triple count the payload was computed
    /// against. Returns the entry index.
    pub fn insert(
        &mut self,
        eq: ExtendedQuery,
        ans: Cube,
        pres: PartialResult,
        watermark: usize,
    ) -> usize {
        let sig = ViewSignature::of(eq.query());
        self.insert_signed(eq, sig, ans, pres, watermark)
    }

    /// [`Self::insert`] with a pre-computed signature (the session already
    /// computed it to plan the query that produced this cube).
    pub fn insert_signed(
        &mut self,
        eq: ExtendedQuery,
        sig: ViewSignature,
        ans: Cube,
        pres: PartialResult,
        watermark: usize,
    ) -> usize {
        let stats = CubeStats {
            ans_cells: ans.len(),
            pres_rows: pres.len(),
            bytes: ans.approx_bytes() + pres.approx_bytes(),
            dim_distinct: pres.dim_distinct_counts(),
        };
        // Evict *before* attaching the new payload, so the accounted
        // resident set never overshoots the budget mid-insert.
        self.make_room(stats.bytes, None);
        let idx = self.entries.len();
        let clock = self.clock.get_mut();
        *clock += 1;
        let now = *clock;
        self.resident_bytes += stats.bytes;
        self.index.entry(sig.key.clone()).or_default().push(idx);
        self.entries.push(CatalogEntry {
            eq: Arc::new(eq),
            sig,
            stats,
            payload: Some(Arc::new(CubePayload { ans, pres })),
            watermark,
            last_touch: AtomicU64::new(now),
            hits: AtomicU64::new(0),
        });
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.sync_size_gauges();
        idx
    }

    /// Marks `idx` as used right now (LRU recency) and counts a benefit
    /// hit for the eviction policy. Takes `&self`: recency credit is the
    /// one piece of bookkeeping the concurrent read path performs, so it
    /// lives in atomics rather than behind the write lock.
    pub fn touch(&self, idx: usize) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let e = &self.entries[idx];
        e.last_touch.store(now, Ordering::Relaxed);
        e.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Recomputes the payload of an entry that is evicted **or stale**
    /// (the instance grew past the entry's watermark) from the current
    /// instance; `pres(Q, I)` is deterministic, so an evicted-and-fresh
    /// recompute answers identically, and a stale recompute answers with
    /// the new triples reflected. Returns `true` if a recompute happened.
    ///
    /// The recomputed entry is pinned while the budget is re-enforced, so
    /// it is resident (and fresh) when this returns.
    pub fn ensure_resident(&mut self, idx: usize, instance: &Graph) -> Result<bool, CoreError> {
        let e = self.entries.get(idx).ok_or(CoreError::UnknownHandle(idx))?;
        let was_resident = e.is_resident();
        if was_resident && e.is_fresh(instance) {
            return Ok(false);
        }
        let pres = PartialResult::compute(&self.entries[idx].eq, instance)?;
        let ans = pres.to_cube(instance.dict())?;
        let bytes = ans.approx_bytes() + pres.approx_bytes();
        // A stale payload is dropped (with its accounting) before making
        // room, so the budget never charges old and new copies at once.
        if was_resident {
            self.resident_bytes -= self.entries[idx].stats.bytes;
            self.entries[idx].payload = None;
        }
        // Make room before attaching, as in `insert_signed`.
        self.make_room(bytes, Some(idx));
        let watermark = instance.len();
        let e = &mut self.entries[idx];
        // Recomputed sizes can differ marginally from the derived
        // original's (row order aside, they are the same table, but stay
        // honest and re-measure).
        e.stats.ans_cells = ans.len();
        e.stats.pres_rows = pres.len();
        e.stats.bytes = bytes;
        e.stats.dim_distinct = pres.dim_distinct_counts();
        e.payload = Some(Arc::new(CubePayload { ans, pres }));
        e.watermark = watermark;
        if was_resident {
            self.metrics.refreshes.inc();
        } else {
            self.metrics.rehydrations.inc();
        }
        self.resident_bytes += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.sync_size_gauges();
        Ok(true)
    }

    /// Mirrors the resident-set bookkeeping into the registry gauges;
    /// called after every mutation that moves payload bytes.
    fn sync_size_gauges(&self) {
        self.metrics.resident_bytes.set(self.resident_bytes as u64);
        self.metrics
            .peak_resident_bytes
            .set(self.peak_resident_bytes as u64);
        self.metrics.entries.set(self.entries.len() as u64);
    }

    /// The resident entry touched most recently, if any.
    fn most_recently_touched(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_resident())
            .max_by_key(|(_, e)| e.last_touch.load(Ordering::Relaxed))
            .map(|(i, _)| i)
    }

    /// Evicts cold payloads until the current resident set fits the
    /// budget, then updates the peak gauge.
    fn enforce_budget(&mut self, pinned: Option<usize>) {
        self.make_room(0, pinned);
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    /// Evicts cold payloads until `incoming` more bytes would fit the
    /// budget (so callers can evict *before* attaching a new payload and
    /// the accounted resident set never transiently overshoots).
    ///
    /// Victim selection is benefit-weighted LRU: among resident, unpinned
    /// entries, evict the one with the smallest `(hits + 1) / (age + 1)` —
    /// the coldest entry that has earned the least reuse. Stops early when
    /// nothing evictable remains (e.g. `incoming` alone exceeds the
    /// budget — a result must still be storable).
    ///
    /// Every sweep that evicts something also halves all hit counters:
    /// benefit is exponentially decayed under memory pressure, so a
    /// historically hot cube the workload has moved away from cannot pin
    /// the budget indefinitely against the live working set. (Without
    /// decay, an entry with H accumulated hits stays unevictable for ~H
    /// clock ticks after its last use.)
    ///
    /// The per-entry score is additionally weighted by the entry's
    /// *family heat* — the query log's [`KeyStats`] access count for its
    /// [`ViewKey`], square-root damped so frequency informs rather than
    /// dominates recency. An entry of a family the workload keeps probing
    /// is evicted last (and so, symmetrically, a hot evicted payload is
    /// the first the budget re-admits when it is rehydrated on touch).
    fn make_room(&mut self, incoming: usize, pinned: Option<usize>) {
        let Some(budget) = self.budget else { return };
        let clock = self.clock.load(Ordering::Relaxed);
        let heat: Vec<f64> = {
            let log = self.log.get_mut().unwrap_or_else(PoisonError::into_inner);
            self.entries
                .iter()
                .map(|e| {
                    let accesses = log.key_stats.get(&e.sig.key).map_or(0, |k| k.accesses);
                    ((accesses + 1) as f64).sqrt()
                })
                .collect()
        };
        let mut evicted_any = false;
        while self.resident_bytes + incoming > budget {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|&(i, e)| e.is_resident() && Some(i) != pinned)
                .min_by(|&(ia, a), &(ib, b)| {
                    let score = |i: usize, e: &CatalogEntry| {
                        let hits = e.hits.load(Ordering::Relaxed);
                        let touched = e.last_touch.load(Ordering::Relaxed);
                        (hits + 1) as f64 / (clock - touched + 1) as f64 * heat[i]
                    };
                    score(ia, a)
                        .partial_cmp(&score(ib, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i);
            let Some(victim) = victim else { break };
            self.entries[victim].payload = None;
            self.resident_bytes -= self.entries[victim].stats.bytes;
            self.metrics.evictions.inc();
            evicted_any = true;
        }
        if evicted_any {
            for e in &mut self.entries {
                let hits = e.hits.get_mut();
                *hits /= 2;
            }
            self.sync_size_gauges();
        }
    }
}

/// Decides whether (and how) a cube with canonical dimensions `s_dims` and
/// restriction `s_sigma` can answer a query with `t_dims`/`t_sigma`, given
/// that classifier bodies, measures, aggregates and roots already match
/// (the caller probed the [`ViewKey`] index). `pub(crate)` so the advisor
/// can classify derivations from *hypothetical* (not yet materialized)
/// candidate views the same way the planner would.
pub(crate) fn classify_derivation(
    s_dims: &[String],
    s_sigma: &Sigma,
    t_dims: &[String],
    t_sigma: &Sigma,
    source_head: &[VarId],
    s_body: &BodySignature,
) -> Option<Derivation> {
    if s_dims == t_dims {
        return t_sigma.refines(s_sigma).then_some(Derivation::Dice);
    }

    // DrillOut: t_dims is a strict, order-preserving subset of s_dims.
    if t_dims.len() < s_dims.len() {
        let mut removed = Vec::new();
        let mut kept_sigma_ok = true;
        let mut ti = 0usize;
        for (si, s_dim) in s_dims.iter().enumerate() {
            if ti < t_dims.len() && &t_dims[ti] == s_dim {
                // Kept dimension: the target's restriction must refine the
                // source's (equal or narrower — a trailing dice fixes up
                // strict refinement).
                if !t_sigma.selector(ti).refines(s_sigma.selector(si)) {
                    kept_sigma_ok = false;
                    break;
                }
                ti += 1;
            } else {
                // Dropped dimension: Algorithm 1 needs it unrestricted.
                if !s_sigma.selector(si).is_all() {
                    kept_sigma_ok = false;
                    break;
                }
                removed.push(si);
            }
        }
        if kept_sigma_ok && ti == t_dims.len() && !removed.is_empty() {
            return Some(Derivation::DrillOut(removed));
        }
        return None;
    }

    // DrillIn: t_dims = s_dims + one extra at the end.
    if t_dims.len() == s_dims.len() + 1 && t_dims[..s_dims.len()] == *s_dims {
        for ti in 0..s_dims.len() {
            if !t_sigma.selector(ti).refines(s_sigma.selector(ti)) {
                return None;
            }
        }
        let extra = &t_dims[s_dims.len()];
        // Find the source classifier variable with that canonical name; it
        // must be existential there (not in the head).
        let var = s_body
            .var_names
            .iter()
            .find(|(_, name)| name.as_str() == extra)
            .map(|(&v, _)| v)?;
        if source_head.contains(&var) {
            return None;
        }
        return Some(Derivation::DrillIn(var));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anq::AnalyticalQuery;
    use rdfcube_engine::AggFunc;
    use rdfcube_rdf::parse_turtle;

    fn blog_world() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap()
    }

    fn example_1(g: &mut Graph) -> ExtendedQuery {
        ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
                AggFunc::Count,
                g.dict_mut(),
            )
            .unwrap(),
        )
    }

    fn materialize(eq: &ExtendedQuery, g: &Graph) -> (Cube, PartialResult) {
        let pres = PartialResult::compute(eq, g).unwrap();
        let ans = pres.to_cube(g.dict()).unwrap();
        (ans, pres)
    }

    #[test]
    fn insert_indexes_by_family_and_caches_stats() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let mut cat = CubeCatalog::new();
        let idx = cat.insert(eq.clone(), ans, pres, g.len());

        let sig = ViewSignature::of(eq.query());
        assert_eq!(cat.family(&sig.key), &[idx]);
        let stats = cat.entry(idx).stats();
        assert_eq!(stats.ans_cells, 2);
        assert_eq!(stats.pres_rows, 5);
        assert_eq!(stats.dim_distinct, vec![2, 2]);
        assert!(stats.bytes > 0);
        assert_eq!(cat.resident_bytes(), stats.bytes);

        // A different ⊕ lands in a different family.
        let mut other_key = sig.key.clone();
        other_key.agg = AggFunc::Sum;
        assert!(cat.family(&other_key).is_empty());
    }

    #[test]
    fn budget_evicts_cold_entries_but_keeps_them_addressable() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let one_cube = ans.approx_bytes() + pres.approx_bytes();

        // Room for roughly one cube: the second insert evicts the first.
        let mut cat = CubeCatalog::with_budget(one_cube + one_cube / 2);
        let first = cat.insert(eq.clone(), ans.clone(), pres.clone(), g.len());
        let second = cat.insert(eq.clone(), ans, pres, g.len());
        assert!(!cat.entry(first).is_resident(), "cold entry evicted");
        assert!(cat.entry(second).is_resident(), "pinned entry kept");
        assert!(cat.resident_bytes() <= cat.budget().unwrap());
        assert_eq!(cat.counters().evictions, 1);

        // The evicted entry still knows its query, signature and stats.
        assert_eq!(cat.entry(first).stats().pres_rows, 5);
        assert_eq!(cat.len(), 2);

        // Rehydration brings it back (and may evict the other).
        assert!(cat.ensure_resident(first, &g).unwrap());
        assert!(cat.entry(first).is_resident());
        assert_eq!(cat.counters().rehydrations, 1);
        // The recomputed payload answers identically.
        let (re_ans, _) = cat.entry(first).payload().unwrap();
        let scratch = cat.entry(first).query().answer(&g).unwrap();
        assert!(re_ans.same_cells(&scratch));
    }

    #[test]
    fn eviction_prefers_low_benefit_older_entries() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let one_cube = ans.approx_bytes() + pres.approx_bytes();

        let mut cat = CubeCatalog::new();
        let a = cat.insert(eq.clone(), ans.clone(), pres.clone(), g.len());
        let b = cat.insert(eq.clone(), ans.clone(), pres.clone(), g.len());
        let c = cat.insert(eq.clone(), ans, pres, g.len());
        // `a` is oldest but heavily reused; `b` is cold.
        cat.touch(a);
        cat.touch(a);
        cat.touch(a);
        cat.touch(c);
        cat.set_budget(Some(2 * one_cube));
        assert!(cat.entry(a).is_resident(), "hot entry survives");
        assert!(!cat.entry(b).is_resident(), "cold entry evicted first");
        assert!(cat.entry(c).is_resident());
    }

    #[test]
    fn zero_budget_keeps_only_the_pinned_entry() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let mut cat = CubeCatalog::with_budget(0);
        let a = cat.insert(eq.clone(), ans.clone(), pres.clone(), g.len());
        assert!(
            cat.entry(a).is_resident(),
            "a result must be readable right after production, budget or not"
        );
        let b = cat.insert(eq, ans, pres, g.len());
        assert!(!cat.entry(a).is_resident());
        assert!(cat.entry(b).is_resident());
        assert!(cat.peak_resident_bytes() > 0);
    }

    #[test]
    fn classify_matches_session_semantics() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let mut cat = CubeCatalog::new();
        let idx = cat.insert(eq.clone(), ans, pres, g.len());

        // Identical query → Dice (refinement is reflexive).
        let sig = ViewSignature::of(eq.query());
        assert_eq!(
            cat.entry(idx).classify(&sig, eq.sigma()),
            Some(Derivation::Dice)
        );

        // Drill-out shape: independently-written 1-D query, same body.
        let coarse = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?a, ?u livesIn ?town",
                "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
                AggFunc::Count,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let coarse_sig = ViewSignature::of(coarse.query());
        assert_eq!(coarse_sig.key, sig.key, "same family");
        assert_eq!(
            cat.entry(idx).classify(&coarse_sig, coarse.sigma()),
            Some(Derivation::DrillOut(vec![0]))
        );
    }

    #[test]
    fn query_log_dedups_shapes_and_counts_accesses() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let sig = ViewSignature::of(eq.query());
        let cat = CubeCatalog::new();
        let explained = ExplainedStrategy::scratch(10.0, 0);

        cat.record_query(&eq, &sig, &explained, 500);
        cat.record_query(&eq, &sig, &explained, 700);
        assert_eq!(cat.log_total(), 2);
        let shapes = cat.logged_shapes();
        assert_eq!(shapes.len(), 1, "identical shapes dedup");
        assert_eq!(shapes[0].count(), 2);
        assert_eq!(shapes[0].measured_nanos(), 700, "latest measurement kept");
        assert_eq!(shapes[0].strategy(), Strategy::FromScratch);

        // A differently-restricted shape of the same family is distinct,
        // but the family's KeyStats accumulate across both.
        let mut sigma = Sigma::all(2);
        sigma.set(
            0,
            crate::extended::ValueSelector::one(rdfcube_rdf::Term::integer(35)),
        );
        let diced = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        cat.record_query(&diced, &sig, &explained, 100);
        assert_eq!(cat.logged_shapes().len(), 2);
        let ks = cat.key_stats(&sig.key);
        assert_eq!(ks.accesses, 3);
        assert!(ks.last_touch > 0);

        let stats = cat.stats();
        assert_eq!(stats.logged_queries, 3);
        assert_eq!(stats.distinct_shapes, 2);
        assert_eq!(stats.key_stats.len(), 1);
        assert_eq!(stats.key_stats[0].1.accesses, 3);
    }

    #[test]
    fn family_heat_shields_hot_families_from_eviction() {
        let mut g = blog_world();
        let eq = example_1(&mut g);
        let (ans, pres) = materialize(&eq, &g);
        let one_cube = ans.approx_bytes() + pres.approx_bytes();
        let sig = ViewSignature::of(eq.query());

        // A second family: same body, different aggregate.
        let other = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
                AggFunc::CountDistinct,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let (o_ans, o_pres) = materialize(&other, &g);

        let mut cat = CubeCatalog::new();
        let hot = cat.insert(eq.clone(), ans.clone(), pres.clone(), g.len());
        let cold = cat.insert(other.clone(), o_ans, o_pres, g.len());
        // The newest entry is pinned by set_budget; heat decides between
        // `hot` and `cold`. Give `cold` the better recency AND an entry
        // hit, so plain benefit-weighted LRU would evict `hot` — only the
        // family-heat factor can save it.
        cat.touch(cold);
        let newest = cat.insert(eq.clone(), ans, pres, g.len());
        let explained = ExplainedStrategy::scratch(10.0, 0);
        for _ in 0..50 {
            cat.record_query(&eq, &sig, &explained, 100);
        }
        let total = cat.resident_bytes();
        assert!(total > one_cube);
        cat.set_budget(Some(total - 1));
        assert!(cat.entry(hot).is_resident(), "hot family survives");
        assert!(!cat.entry(cold).is_resident(), "cold family evicted");
        assert!(cat.entry(newest).is_resident(), "pinned entry kept");
    }
}
