//! The cost model behind the catalog's strategy picker.
//!
//! The paper's experiments show that no fixed preference order among
//! σ-over-`ans(Q)`, Algorithm 1, Algorithm 2 and from-scratch is right for
//! every query: the winner depends on the sizes of `ans(Q)`, `pres(Q)` and
//! the instance. This module replaces the session's old hardcoded ranking
//! with estimates built from exactly those sizes:
//!
//! * per-entry statistics cached at registration
//!   ([`CubeStats`](crate::catalog::CubeStats): `ans` cells, `pres` rows,
//!   per-dimension distinct counts) feed [`derivation_cost`];
//! * instance statistics (`count_matching` per pattern, the same numbers
//!   the engine's join planner orders patterns by) feed
//!   [`crate::rewrite::scratch_cost`] — on a sharded instance these are
//!   integer sums of shard-local CSR statistics, so they stay exact and
//!   allocation-free at any shard count;
//! * the per-strategy formulas themselves live next to the algorithms
//!   they estimate, in [`crate::rewrite`] (cost hooks).
//!
//! Costs are abstract "row touches" — only their relative order matters.
//! Soundness never depends on them: the planner only costs derivations
//! that [`classify`](crate::catalog::CatalogEntry::classify) already
//! proved applicable, so a mis-estimate can waste time, never change an
//! answer (property-tested in `rewriting_soundness_prop.rs`).
//!
//! The planner's decision is exposed to callers as an
//! [`ExplainedStrategy`]: the chosen [`Strategy`] plus its estimate, the
//! from-scratch estimate it beat (or lost to), how many applicable
//! candidates competed, and whether the source had to be rehydrated after
//! an eviction.

use crate::catalog::{CatalogEntry, CubeStats, Derivation};
use crate::extended::{ExtendedQuery, Sigma, ValueSelector};
use crate::rewrite;
use crate::session::{CubeHandle, Strategy};
use rdfcube_rdf::Graph;
use std::fmt;

/// A strategy choice with the planner's reasoning attached.
///
/// Compares equal to a bare [`Strategy`] (`explained == Strategy::…`), so
/// existing assertions keep working, and [`fmt::Display`]s as the strategy
/// followed by its cost evidence.
#[derive(Debug, Clone)]
pub struct ExplainedStrategy {
    /// The strategy the planner selected.
    pub strategy: Strategy,
    /// The catalog entry used as derivation source (`None` for
    /// from-scratch).
    pub source: Option<CubeHandle>,
    /// Estimated cost of the selected strategy, in abstract row touches.
    pub estimated_cost: f64,
    /// Estimated cost of from-scratch evaluation, for comparison.
    pub scratch_cost: f64,
    /// Number of applicable derivations that competed. Can be nonzero
    /// even on a miss: the cost model may reject every sound candidate as
    /// more expensive than from-scratch evaluation (0 means no sound
    /// source existed at all).
    pub candidates: usize,
    /// True if a materialized cube was reused (catalog hit).
    pub catalog_hit: bool,
    /// True if the source cube had been evicted and was recomputed on
    /// demand to serve this query.
    pub rehydrated: bool,
}

impl ExplainedStrategy {
    /// An explanation for a from-scratch evaluation that considered (and
    /// rejected) `candidates` applicable derivations.
    pub fn scratch(scratch_cost: f64, candidates: usize) -> Self {
        ExplainedStrategy {
            strategy: Strategy::FromScratch,
            source: None,
            estimated_cost: scratch_cost,
            scratch_cost,
            candidates,
            catalog_hit: false,
            rehydrated: false,
        }
    }
}

impl PartialEq<Strategy> for ExplainedStrategy {
    fn eq(&self, other: &Strategy) -> bool {
        self.strategy == *other
    }
}

impl PartialEq<ExplainedStrategy> for Strategy {
    fn eq(&self, other: &ExplainedStrategy) -> bool {
        *self == other.strategy
    }
}

impl fmt::Display for ExplainedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.strategy)?;
        if self.estimated_cost.is_finite() {
            write!(f, " [est {:.0}", self.estimated_cost)?;
            if self.strategy != Strategy::FromScratch && self.scratch_cost.is_finite() {
                write!(f, ", scratch est {:.0}", self.scratch_cost)?;
            }
            write!(f, ", {} candidate(s)", self.candidates)?;
            if self.rehydrated {
                write!(f, ", rehydrated")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Fraction of an evicted source's recompute cost charged to the query
/// that triggers its rehydration. Candidates in a probed family share the
/// target's canonical body and measure, so their from-scratch estimates
/// coincide with the target's — charging the full recompute would make
/// `derivation + recompute > scratch` always hold and evicted sources
/// could never be chosen. Rehydration is an amortized investment (the
/// source stays resident for future queries), so only half is billed here;
/// a derivation through an evicted source wins exactly when its own cost
/// is under half the from-scratch cost.
pub const REHYDRATION_CHARGE: f64 = 0.5;

/// The [`Strategy`] a derivation executes as.
pub fn strategy_of(d: &Derivation) -> Strategy {
    match d {
        Derivation::Dice => Strategy::SelectionOnAns,
        Derivation::DrillOut(_) => Strategy::Algorithm1,
        Derivation::DrillIn(_) => Strategy::Algorithm2,
    }
}

/// Estimated cost of executing derivation `d` from `source` to answer
/// `target`, combining the entry's cached statistics with the per-strategy
/// cost hooks in [`crate::rewrite`]. Does **not** include the rehydration
/// surcharge for evicted sources — the planner adds that separately.
pub fn derivation_cost(
    d: &Derivation,
    source: &CatalogEntry,
    target: &ExtendedQuery,
    instance: &Graph,
) -> f64 {
    derivation_cost_with_stats(d, source.stats(), source.query(), target, instance)
}

/// [`derivation_cost`] against explicit statistics instead of a catalog
/// entry. The advisor uses this to cost derivations from *hypothetical*
/// candidate views — ancestors it is considering materializing, whose
/// `CubeStats` are estimated from their already-materialized family
/// members rather than measured.
pub fn derivation_cost_with_stats(
    d: &Derivation,
    stats: &CubeStats,
    source_eq: &ExtendedQuery,
    target: &ExtendedQuery,
    instance: &Graph,
) -> f64 {
    match d {
        Derivation::Dice => {
            let output =
                stats.ans_cells as f64 * dice_selectivity(target.sigma(), &stats.dim_distinct);
            rewrite::dice_cost(stats.ans_cells) + output
        }
        Derivation::DrillOut(removed) => {
            let kept_cells: f64 = stats
                .dim_distinct
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, &n)| n.max(1) as f64)
                .product();
            let output = kept_cells.min(stats.pres_rows as f64);
            rewrite::drill_out_cost(stats.pres_rows) + output
        }
        Derivation::DrillIn(_) => {
            let aux = rewrite::aux_rows_bound(source_eq.query().classifier(), instance);
            rewrite::drill_in_cost(stats.pres_rows, aux)
        }
    }
}

/// Estimated fraction of cells a Σ restriction admits, from the source's
/// per-dimension distinct counts: a `OneOf(k)` selector on a dimension
/// with `n` distinct values keeps about `k/n` of them; `All` and ranges
/// (whose width against the value domain is unknown) are estimated at 1.
fn dice_selectivity(sigma: &Sigma, dim_distinct: &[usize]) -> f64 {
    sigma
        .selectors()
        .iter()
        .zip(dim_distinct)
        .map(|(sel, &distinct)| match sel {
            ValueSelector::OneOf(terms) => (terms.len() as f64 / distinct.max(1) as f64).min(1.0),
            ValueSelector::All | ValueSelector::IntRange { .. } => 1.0,
        })
        .product()
}

/// Calibration of the planner's abstract cost units against observed
/// wall time, one row per strategy seen in the query log.
///
/// `nanos_per_unit` is Σ measured nanoseconds / Σ predicted cost over
/// every logged shape the strategy served. If the cost model were
/// perfectly calibrated, all strategies would share one rate; `drift`
/// normalizes each rate against the [`Strategy::FromScratch`] baseline
/// (or, when no from-scratch query was logged, against the cheapest
/// rate), so a drift of 12 means the model over-charges that strategy's
/// unit by ~12× relative to evaluation from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelRow {
    /// The strategy this row calibrates.
    pub strategy: Strategy,
    /// Distinct logged shapes that strategy served.
    pub shapes: usize,
    /// Total asks across those shapes.
    pub queries: u64,
    /// Σ of the planner's estimated cost over the shapes (abstract units).
    pub predicted_cost: f64,
    /// Σ of the measured wall time over the shapes (nanoseconds).
    pub observed_nanos: u64,
    /// Observed nanoseconds per predicted cost unit.
    pub nanos_per_unit: f64,
    /// `nanos_per_unit` relative to the baseline strategy's rate.
    pub drift: f64,
}

/// Predicted-vs-observed cost comparison built from a catalog's query
/// log (see [`CubeCatalog::logged_shapes`](crate::catalog::CubeCatalog::logged_shapes)).
///
/// Shapes whose estimate is non-finite or zero (duplicate hits are
/// logged with cost 0) are skipped — they carry no calibration signal.
#[derive(Debug, Clone, Default)]
pub struct CostModelReport {
    rows: Vec<CostModelRow>,
}

impl CostModelReport {
    /// Builds the report from everything `catalog` has logged so far.
    pub fn from_catalog(catalog: &crate::catalog::CubeCatalog) -> Self {
        let mut by_strategy: Vec<(Strategy, usize, u64, f64, u64)> = Vec::new();
        for shape in catalog.logged_shapes() {
            let predicted = shape.estimated_cost();
            if !predicted.is_finite() || predicted <= 0.0 || shape.measured_nanos() == 0 {
                continue;
            }
            let entry = match by_strategy.iter_mut().find(|r| r.0 == shape.strategy()) {
                Some(entry) => entry,
                None => {
                    by_strategy.push((shape.strategy(), 0, 0, 0.0, 0));
                    by_strategy.last_mut().expect("just pushed")
                }
            };
            entry.1 += 1;
            entry.2 += shape.count();
            entry.3 += predicted;
            entry.4 += shape.measured_nanos();
        }
        let mut rows: Vec<CostModelRow> = by_strategy
            .into_iter()
            .map(
                |(strategy, shapes, queries, predicted_cost, observed_nanos)| CostModelRow {
                    strategy,
                    shapes,
                    queries,
                    predicted_cost,
                    observed_nanos,
                    nanos_per_unit: observed_nanos as f64 / predicted_cost,
                    drift: 1.0,
                },
            )
            .collect();
        let baseline = rows
            .iter()
            .find(|r| r.strategy == Strategy::FromScratch)
            .map(|r| r.nanos_per_unit)
            .or_else(|| {
                rows.iter()
                    .map(|r| r.nanos_per_unit)
                    .min_by(|a, b| a.total_cmp(b))
            });
        if let Some(base) = baseline.filter(|b| *b > 0.0) {
            for row in &mut rows {
                row.drift = row.nanos_per_unit / base;
            }
        }
        rows.sort_by(|a, b| b.drift.total_cmp(&a.drift));
        CostModelReport { rows }
    }

    /// The per-strategy calibration rows, worst drift first.
    pub fn rows(&self) -> &[CostModelRow] {
        &self.rows
    }

    /// True when the log held no shape with a usable (finite, positive)
    /// estimate.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Largest drift factor across strategies (1.0 when empty).
    pub fn max_drift(&self) -> f64 {
        self.rows.first().map_or(1.0, |r| r.drift)
    }
}

impl fmt::Display for CostModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "cost model: no calibratable queries logged");
        }
        writeln!(
            f,
            "{:<36} {:>7} {:>8} {:>14} {:>14} {:>12} {:>8}",
            "strategy", "shapes", "queries", "pred cost", "obs nanos", "ns/unit", "drift"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<36} {:>7} {:>8} {:>14.0} {:>14} {:>12.1} {:>7.1}x",
                row.strategy.to_string(),
                row.shapes,
                row.queries,
                row.predicted_cost,
                row.observed_nanos,
                row.nanos_per_unit,
                row.drift
            )?;
        }
        Ok(())
    }
}

/// Renders an `EXPLAIN ANALYZE` block: the planner's verdict (what
/// [`ExplainedStrategy`] displays) followed by the observed span tree of
/// the traced run — per-stage wall time, row counts and bytes.
///
/// Pair with [`OlapSession::answer_traced`](crate::session::OlapSession::answer_traced)
/// or [`SharedSession::answer_traced`](crate::shared::SharedSession::answer_traced):
///
/// ```text
/// EXPLAIN ANALYZE
/// plan: selection-on-ans [est 120, scratch est 4100, 2 candidate(s)]
/// answer_query 1.2ms
/// ├─ plan 80µs [candidates=2]
/// └─ derive 1.0ms rows 840→120
/// stage coverage: 96% of 1.2ms
/// ```
pub fn explain_analyze(explained: &ExplainedStrategy, trace: &rdfcube_obs::QueryTrace) -> String {
    let mut out = String::new();
    out.push_str("EXPLAIN ANALYZE\n");
    out.push_str(&format!("plan: {explained}\n"));
    if trace.spans().is_empty() {
        out.push_str("(no trace recorded)\n");
    } else {
        out.push_str(&trace.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::Term;

    #[test]
    fn explained_compares_with_bare_strategy() {
        let e = ExplainedStrategy::scratch(42.0, 3);
        assert_eq!(e, Strategy::FromScratch);
        assert_eq!(Strategy::FromScratch, e);
        assert!(e != Strategy::Algorithm1);
        let shown = format!("{e}");
        assert!(shown.contains("from-scratch"), "display: {shown}");
        assert!(shown.contains("3 candidate(s)"), "display: {shown}");
    }

    #[test]
    fn selectivity_shrinks_with_narrow_selectors() {
        let mut narrow = Sigma::all(2);
        narrow.set(0, ValueSelector::one(Term::integer(28)));
        let wide = Sigma::all(2);
        let distinct = vec![10usize, 4];
        assert!(dice_selectivity(&narrow, &distinct) < dice_selectivity(&wide, &distinct));
        assert_eq!(dice_selectivity(&wide, &distinct), 1.0);
        // Degenerate distinct counts never divide by zero.
        let mut s = Sigma::all(1);
        s.set(0, ValueSelector::one(Term::integer(1)));
        assert!(dice_selectivity(&s, &[0]).is_finite());
    }

    #[test]
    fn strategy_of_maps_each_derivation() {
        assert_eq!(strategy_of(&Derivation::Dice), Strategy::SelectionOnAns);
        assert_eq!(
            strategy_of(&Derivation::DrillOut(vec![0])),
            Strategy::Algorithm1
        );
        assert_eq!(
            strategy_of(&Derivation::DrillIn(rdfcube_engine::VarId(0))),
            Strategy::Algorithm2
        );
    }
}
