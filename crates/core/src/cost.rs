//! The cost model behind the catalog's strategy picker.
//!
//! The paper's experiments show that no fixed preference order among
//! σ-over-`ans(Q)`, Algorithm 1, Algorithm 2 and from-scratch is right for
//! every query: the winner depends on the sizes of `ans(Q)`, `pres(Q)` and
//! the instance. This module replaces the session's old hardcoded ranking
//! with estimates built from exactly those sizes:
//!
//! * per-entry statistics cached at registration
//!   ([`CubeStats`](crate::catalog::CubeStats): `ans` cells, `pres` rows,
//!   per-dimension distinct counts) feed [`derivation_cost`];
//! * instance statistics (`count_matching` per pattern, the same numbers
//!   the engine's join planner orders patterns by) feed
//!   [`crate::rewrite::scratch_cost`] — on a sharded instance these are
//!   integer sums of shard-local CSR statistics, so they stay exact and
//!   allocation-free at any shard count;
//! * the per-strategy formulas themselves live next to the algorithms
//!   they estimate, in [`crate::rewrite`] (cost hooks).
//!
//! Costs are abstract "row touches" — only their relative order matters.
//! Soundness never depends on them: the planner only costs derivations
//! that [`classify`](crate::catalog::CatalogEntry::classify) already
//! proved applicable, so a mis-estimate can waste time, never change an
//! answer (property-tested in `rewriting_soundness_prop.rs`).
//!
//! The planner's decision is exposed to callers as an
//! [`ExplainedStrategy`]: the chosen [`Strategy`] plus its estimate, the
//! from-scratch estimate it beat (or lost to), how many applicable
//! candidates competed, and whether the source had to be rehydrated after
//! an eviction.

use crate::catalog::{CatalogEntry, CubeStats, Derivation};
use crate::extended::{ExtendedQuery, Sigma, ValueSelector};
use crate::rewrite;
use crate::session::{CubeHandle, Strategy};
use rdfcube_rdf::Graph;
use std::fmt;

/// A strategy choice with the planner's reasoning attached.
///
/// Compares equal to a bare [`Strategy`] (`explained == Strategy::…`), so
/// existing assertions keep working, and [`fmt::Display`]s as the strategy
/// followed by its cost evidence.
#[derive(Debug, Clone)]
pub struct ExplainedStrategy {
    /// The strategy the planner selected.
    pub strategy: Strategy,
    /// The catalog entry used as derivation source (`None` for
    /// from-scratch).
    pub source: Option<CubeHandle>,
    /// Estimated cost of the selected strategy, in abstract row touches.
    pub estimated_cost: f64,
    /// Estimated cost of from-scratch evaluation, for comparison.
    pub scratch_cost: f64,
    /// Number of applicable derivations that competed. Can be nonzero
    /// even on a miss: the cost model may reject every sound candidate as
    /// more expensive than from-scratch evaluation (0 means no sound
    /// source existed at all).
    pub candidates: usize,
    /// True if a materialized cube was reused (catalog hit).
    pub catalog_hit: bool,
    /// True if the source cube had been evicted and was recomputed on
    /// demand to serve this query.
    pub rehydrated: bool,
}

impl ExplainedStrategy {
    /// An explanation for a from-scratch evaluation that considered (and
    /// rejected) `candidates` applicable derivations.
    pub fn scratch(scratch_cost: f64, candidates: usize) -> Self {
        ExplainedStrategy {
            strategy: Strategy::FromScratch,
            source: None,
            estimated_cost: scratch_cost,
            scratch_cost,
            candidates,
            catalog_hit: false,
            rehydrated: false,
        }
    }
}

impl PartialEq<Strategy> for ExplainedStrategy {
    fn eq(&self, other: &Strategy) -> bool {
        self.strategy == *other
    }
}

impl PartialEq<ExplainedStrategy> for Strategy {
    fn eq(&self, other: &ExplainedStrategy) -> bool {
        *self == other.strategy
    }
}

impl fmt::Display for ExplainedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.strategy)?;
        if self.estimated_cost.is_finite() {
            write!(f, " [est {:.0}", self.estimated_cost)?;
            if self.strategy != Strategy::FromScratch && self.scratch_cost.is_finite() {
                write!(f, ", scratch est {:.0}", self.scratch_cost)?;
            }
            write!(f, ", {} candidate(s)", self.candidates)?;
            if self.rehydrated {
                write!(f, ", rehydrated")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Fraction of an evicted source's recompute cost charged to the query
/// that triggers its rehydration. Candidates in a probed family share the
/// target's canonical body and measure, so their from-scratch estimates
/// coincide with the target's — charging the full recompute would make
/// `derivation + recompute > scratch` always hold and evicted sources
/// could never be chosen. Rehydration is an amortized investment (the
/// source stays resident for future queries), so only half is billed here;
/// a derivation through an evicted source wins exactly when its own cost
/// is under half the from-scratch cost.
pub const REHYDRATION_CHARGE: f64 = 0.5;

/// The [`Strategy`] a derivation executes as.
pub fn strategy_of(d: &Derivation) -> Strategy {
    match d {
        Derivation::Dice => Strategy::SelectionOnAns,
        Derivation::DrillOut(_) => Strategy::Algorithm1,
        Derivation::DrillIn(_) => Strategy::Algorithm2,
    }
}

/// Estimated cost of executing derivation `d` from `source` to answer
/// `target`, combining the entry's cached statistics with the per-strategy
/// cost hooks in [`crate::rewrite`]. Does **not** include the rehydration
/// surcharge for evicted sources — the planner adds that separately.
pub fn derivation_cost(
    d: &Derivation,
    source: &CatalogEntry,
    target: &ExtendedQuery,
    instance: &Graph,
) -> f64 {
    derivation_cost_with_stats(d, source.stats(), source.query(), target, instance)
}

/// [`derivation_cost`] against explicit statistics instead of a catalog
/// entry. The advisor uses this to cost derivations from *hypothetical*
/// candidate views — ancestors it is considering materializing, whose
/// `CubeStats` are estimated from their already-materialized family
/// members rather than measured.
pub fn derivation_cost_with_stats(
    d: &Derivation,
    stats: &CubeStats,
    source_eq: &ExtendedQuery,
    target: &ExtendedQuery,
    instance: &Graph,
) -> f64 {
    match d {
        Derivation::Dice => {
            let output =
                stats.ans_cells as f64 * dice_selectivity(target.sigma(), &stats.dim_distinct);
            rewrite::dice_cost(stats.ans_cells) + output
        }
        Derivation::DrillOut(removed) => {
            let kept_cells: f64 = stats
                .dim_distinct
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, &n)| n.max(1) as f64)
                .product();
            let output = kept_cells.min(stats.pres_rows as f64);
            rewrite::drill_out_cost(stats.pres_rows) + output
        }
        Derivation::DrillIn(_) => {
            let aux = rewrite::aux_rows_bound(source_eq.query().classifier(), instance);
            rewrite::drill_in_cost(stats.pres_rows, aux)
        }
    }
}

/// Estimated fraction of cells a Σ restriction admits, from the source's
/// per-dimension distinct counts: a `OneOf(k)` selector on a dimension
/// with `n` distinct values keeps about `k/n` of them; `All` and ranges
/// (whose width against the value domain is unknown) are estimated at 1.
fn dice_selectivity(sigma: &Sigma, dim_distinct: &[usize]) -> f64 {
    sigma
        .selectors()
        .iter()
        .zip(dim_distinct)
        .map(|(sel, &distinct)| match sel {
            ValueSelector::OneOf(terms) => (terms.len() as f64 / distinct.max(1) as f64).min(1.0),
            ValueSelector::All | ValueSelector::IntRange { .. } => 1.0,
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::Term;

    #[test]
    fn explained_compares_with_bare_strategy() {
        let e = ExplainedStrategy::scratch(42.0, 3);
        assert_eq!(e, Strategy::FromScratch);
        assert_eq!(Strategy::FromScratch, e);
        assert!(e != Strategy::Algorithm1);
        let shown = format!("{e}");
        assert!(shown.contains("from-scratch"), "display: {shown}");
        assert!(shown.contains("3 candidate(s)"), "display: {shown}");
    }

    #[test]
    fn selectivity_shrinks_with_narrow_selectors() {
        let mut narrow = Sigma::all(2);
        narrow.set(0, ValueSelector::one(Term::integer(28)));
        let wide = Sigma::all(2);
        let distinct = vec![10usize, 4];
        assert!(dice_selectivity(&narrow, &distinct) < dice_selectivity(&wide, &distinct));
        assert_eq!(dice_selectivity(&wide, &distinct), 1.0);
        // Degenerate distinct counts never divide by zero.
        let mut s = Sigma::all(1);
        s.set(0, ValueSelector::one(Term::integer(1)));
        assert!(dice_selectivity(&s, &[0]).is_finite());
    }

    #[test]
    fn strategy_of_maps_each_derivation() {
        assert_eq!(strategy_of(&Derivation::Dice), Strategy::SelectionOnAns);
        assert_eq!(
            strategy_of(&Derivation::DrillOut(vec![0])),
            Strategy::Algorithm1
        );
        assert_eq!(
            strategy_of(&Derivation::DrillIn(rdfcube_engine::VarId(0))),
            Strategy::Algorithm2
        );
    }
}
