//! Partial results (Definitions 3–4) — the materialized view the paper's
//! rewriting algorithms consume.
//!
//! For a query `Q = ⟨c, m, ⊕⟩`, the *extended measure result* `m^k(I)`
//! attaches a fresh key `newk()` to every tuple of the bag `m(I)`, so that
//! identical measure values of one fact stay distinguishable after
//! relational operations. The *partial result* is
//!
//! ```text
//! pres(Q, I) = c(I) ⋈ₓ m^k(I)      — a table ⟨root, d₁…dₙ, k, v⟩
//! ```
//!
//! `pres(Q)` is exactly the input of the final aggregation of `Q`
//! (Equation 1), so materializing it while answering `Q` costs almost
//! nothing extra, and Equation 3 recovers `ans(Q)` from it:
//! `ans(Q) = γ_{d₁…dₙ,⊕(v)}(π_{x,d₁…dₙ,v}(pres(Q)))`.
//!
//! Storage is columnar (`roots / dims / keys / values`), which keeps the
//! projection-heavy rewriting algorithms cache-friendly and makes the `k`
//! column a plain `u32` rather than a dictionary term.

use crate::answer::Cube;
use crate::error::CoreError;
use crate::extended::ExtendedQuery;
use rdfcube_engine::{evaluate, AggFunc, Semantics};
use rdfcube_rdf::fx::FxHashMap;
use rdfcube_rdf::{Dictionary, Graph, TermId};

/// One row of a partial result, viewed by reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresRow<'a> {
    /// The fact (the classifier's root binding).
    pub root: TermId,
    /// The dimension values `d₁…dₙ`.
    pub dims: &'a [TermId],
    /// The `newk()` key identifying one measure tuple.
    pub key: u32,
    /// The measure value `v`.
    pub value: TermId,
}

/// The materialized `pres(Q, I)` table.
#[derive(Debug, Clone)]
pub struct PartialResult {
    dim_names: Vec<String>,
    agg: AggFunc,
    n_dims: usize,
    roots: Vec<TermId>,
    /// Row-major, `n_dims` entries per row.
    dims: Vec<TermId>,
    keys: Vec<u32>,
    values: Vec<TermId>,
}

impl PartialResult {
    /// Computes `pres(Q, I)` for an extended query over `instance`.
    ///
    /// The classifier is evaluated under set semantics and filtered by Σ;
    /// the measure under bag semantics with keys assigned in enumeration
    /// order (the paper's illustrative `newk()` returning 1, 2, 3…).
    pub fn compute(eq: &ExtendedQuery, instance: &Graph) -> Result<Self, CoreError> {
        let q = eq.query();
        let c_rel = {
            let sp = rdfcube_obs::span("classifier");
            let rel = eq.classifier_relation(instance)?;
            sp.rows(instance.len() as u64, rel.len() as u64);
            rel
        };
        let m_rel = {
            let sp = rdfcube_obs::span("measure");
            let rel = evaluate(instance, q.measure(), Semantics::Bag)?;
            sp.rows(instance.len() as u64, rel.len() as u64);
            rel
        };

        let sp = rdfcube_obs::span("key_join");
        // m^k(I): key every measure tuple, grouped by fact for the join.
        let mut by_fact: FxHashMap<TermId, Vec<(u32, TermId)>> = FxHashMap::default();
        for (i, row) in m_rel.rows().enumerate() {
            let key = u32::try_from(i + 1).expect("more than 2^32 measure tuples");
            by_fact.entry(row[0]).or_default().push((key, row[1]));
        }

        let n_dims = q.n_dims();
        let mut pres = PartialResult {
            dim_names: q.dim_names().iter().map(|s| s.to_string()).collect(),
            agg: q.agg(),
            n_dims,
            roots: Vec::new(),
            dims: Vec::new(),
            keys: Vec::new(),
            values: Vec::new(),
        };
        for c_row in c_rel.rows() {
            let root = c_row[0];
            let Some(measures) = by_fact.get(&root) else {
                continue;
            };
            for &(key, value) in measures {
                pres.roots.push(root);
                pres.dims.extend_from_slice(&c_row[1..]);
                pres.keys.push(key);
                pres.values.push(value);
            }
        }
        if sp.active() {
            sp.rows((c_rel.len() + m_rel.len()) as u64, pres.len() as u64);
            sp.bytes(pres.approx_bytes() as u64);
        }
        Ok(pres)
    }

    /// Builds a partial result from raw rows (used by the rewriting
    /// algorithms to emit the transformed query's pres as a byproduct).
    pub fn from_rows(
        dim_names: Vec<String>,
        agg: AggFunc,
        rows: impl IntoIterator<Item = (TermId, Vec<TermId>, u32, TermId)>,
    ) -> Self {
        let n_dims = dim_names.len();
        let mut pres = PartialResult {
            dim_names,
            agg,
            n_dims,
            roots: Vec::new(),
            dims: Vec::new(),
            keys: Vec::new(),
            values: Vec::new(),
        };
        for (root, dims, key, value) in rows {
            debug_assert_eq!(dims.len(), n_dims);
            pres.roots.push(root);
            pres.dims.extend_from_slice(&dims);
            pres.keys.push(key);
            pres.values.push(value);
        }
        pres
    }

    /// The dimension names, in classifier-head order.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// The same table under different dimension names (see
    /// [`crate::Cube::with_dim_names`]).
    pub fn with_dim_names(mut self, dim_names: Vec<String>) -> Self {
        debug_assert_eq!(dim_names.len(), self.dim_names.len());
        self.dim_names = dim_names;
        self
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// The aggregation function of the query this pres belongs to.
    pub fn agg(&self) -> AggFunc {
        self.agg
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> PresRow<'_> {
        PresRow {
            root: self.roots[i],
            dims: &self.dims[i * self.n_dims..(i + 1) * self.n_dims],
            key: self.keys[i],
            value: self.values[i],
        }
    }

    /// Iterates all rows.
    pub fn rows(&self) -> impl Iterator<Item = PresRow<'_>> {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Approximate memory footprint in bytes (reported by the benchmarks
    /// comparing pres size against instance size).
    pub fn approx_bytes(&self) -> usize {
        self.roots.len() * std::mem::size_of::<TermId>()
            + self.dims.len() * std::mem::size_of::<TermId>()
            + self.keys.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<TermId>()
    }

    /// Number of distinct values per dimension column. The cube catalog
    /// caches these at registration time as the cardinality statistics its
    /// cost model uses to estimate output sizes (e.g. the cell count of a
    /// drill-out, or the selectivity of a dice).
    pub fn dim_distinct_counts(&self) -> Vec<usize> {
        let mut counts = Vec::with_capacity(self.n_dims);
        let mut column: Vec<TermId> = Vec::with_capacity(self.len());
        for d in 0..self.n_dims {
            column.clear();
            column.extend((0..self.len()).map(|i| self.dims[i * self.n_dims + d]));
            column.sort_unstable();
            column.dedup();
            counts.push(column.len());
        }
        counts
    }

    /// Equation 3: recovers `ans(Q)` from the partial result by grouping on
    /// the dimension columns (the projection keeps duplicates — bag
    /// semantics — so repeated measure values aggregate correctly).
    ///
    /// Sort-based: a row permutation is sorted by dimension vector and the
    /// runs scanned with one reusable bag buffer — no hash map of per-group
    /// value bags, and cells emerge already in canonical key order.
    pub fn to_cube(&self, dict: &Dictionary) -> Result<Cube, CoreError> {
        let n = self.n_dims;
        let rows = self.len();
        let sp = rdfcube_obs::span("group_aggregate");
        let mut cells = Vec::new();
        if rows > 0 {
            let dims_of = |i: usize| &self.dims[i * n..(i + 1) * n];
            let mut perm: Vec<u32> = (0..rows as u32).collect();
            perm.sort_unstable_by(|&a, &b| {
                dims_of(a as usize).cmp(dims_of(b as usize)).then(a.cmp(&b))
            });
            let mut bag: Vec<TermId> = Vec::new();
            let mut start = 0usize;
            while start < rows {
                let key = dims_of(perm[start] as usize);
                bag.clear();
                let mut end = start;
                while end < rows && dims_of(perm[end] as usize) == key {
                    bag.push(self.values[perm[end] as usize]);
                    end += 1;
                }
                cells.push((key.to_vec(), self.agg.apply(&bag, dict)?));
                start = end;
            }
        }
        sp.rows(rows as u64, cells.len() as u64);
        drop(sp);
        let sp = rdfcube_obs::span("cube_build");
        let cube = Cube::from_cells(self.dim_names.clone(), self.agg, cells);
        if sp.active() {
            sp.rows(cube.len() as u64, cube.len() as u64);
            sp.bytes(cube.approx_bytes() as u64);
        }
        Ok(cube)
    }

    /// Canonical sorted row list for test comparisons.
    pub fn sorted_rows(&self) -> Vec<(TermId, Vec<TermId>, u32, TermId)> {
        let mut rows: Vec<(TermId, Vec<TermId>, u32, TermId)> = self
            .rows()
            .map(|r| (r.root, r.dims.to_vec(), r.key, r.value))
            .collect();
        rows.sort_unstable();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anq::AnalyticalQuery;
    use crate::answer::answer;
    use rdfcube_engine::AggValue;
    use rdfcube_rdf::{parse_turtle, Term};

    fn example_2_setup() -> (Graph, ExtendedQuery) {
        let mut g = parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap();
        let q = AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
            g.dict_mut(),
        )
        .unwrap();
        (g, ExtendedQuery::from_query(q))
    }

    #[test]
    fn pres_has_one_row_per_classifier_measure_pair() {
        let (g, eq) = example_2_setup();
        let pres = PartialResult::compute(&eq, &g).unwrap();
        // user1: 1 classifier row × 3 measures; user3: ×1; user4: ×1.
        assert_eq!(pres.len(), 5);
        assert_eq!(pres.n_dims(), 2);
        assert_eq!(pres.dim_names(), &["dage".to_string(), "dcity".to_string()]);
    }

    #[test]
    fn keys_distinguish_identical_measure_values() {
        // user1's bag {|s1, s1, s2|}: the two s1 tuples carry distinct keys.
        let (g, eq) = example_2_setup();
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let user1 = g.dict().iri_id("user1").unwrap();
        let s1 = g.dict().iri_id("s1").unwrap();
        let s1_keys: Vec<u32> = pres
            .rows()
            .filter(|r| r.root == user1 && r.value == s1)
            .map(|r| r.key)
            .collect();
        assert_eq!(s1_keys.len(), 2);
        assert_ne!(s1_keys[0], s1_keys[1]);
    }

    #[test]
    fn equation_3_recovers_the_answer() {
        let (g, eq) = example_2_setup();
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let from_pres = pres.to_cube(g.dict()).unwrap();
        let direct = answer(eq.query(), &g).unwrap();
        assert!(from_pres.same_cells(&direct));
    }

    #[test]
    fn multivalued_dimension_repeats_rows_with_same_key() {
        // Example 5's shape: a fact multi-valued along one dimension keeps
        // the same key on both rows.
        let mut g = parse_turtle(
            "<x> rdf:type <C> ; <dim> <a>, <b> ; <val> 7 .
             <y> rdf:type <C> ; <dim> <b> ; <val> 9 .",
        )
        .unwrap();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
            g.dict_mut(),
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(q);
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert_eq!(pres.len(), 3);
        let x = g.dict().iri_id("x").unwrap();
        let x_keys: Vec<u32> = pres.rows().filter(|r| r.root == x).map(|r| r.key).collect();
        assert_eq!(x_keys.len(), 2);
        assert_eq!(x_keys[0], x_keys[1], "same measure tuple ⇒ same key");
        // Equation 3 still sums x's value once per cell.
        let cube = pres.to_cube(g.dict()).unwrap();
        let a = g.dict().iri_id("a").unwrap();
        let b = g.dict().iri_id("b").unwrap();
        assert_eq!(cube.get(&[a]), Some(&AggValue::Int(7)));
        assert_eq!(cube.get(&[b]), Some(&AggValue::Int(16)));
    }

    #[test]
    fn sigma_filters_pres_rows() {
        use crate::extended::{Sigma, ValueSelector};
        let (mut g, eq) = example_2_setup();
        let mut sigma = Sigma::all(2);
        sigma.set(1, ValueSelector::one(Term::literal("NY")));
        let _ = &mut g;
        let restricted = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        let pres = PartialResult::compute(&restricted, &g).unwrap();
        assert_eq!(pres.len(), 2); // only user3 and user4 rows survive
    }

    #[test]
    fn facts_without_measures_are_absent() {
        let mut g = parse_turtle(
            "<x> rdf:type <C> ; <dim> <a> .
             <y> rdf:type <C> ; <dim> <a> ; <val> 1 .",
        )
        .unwrap();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type C, ?x dim ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Count,
            g.dict_mut(),
        )
        .unwrap();
        let pres = PartialResult::compute(&ExtendedQuery::from_query(q), &g).unwrap();
        let x = g.dict().iri_id("x").unwrap();
        assert!(pres.rows().all(|r| r.root != x));
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        let (g, eq) = example_2_setup();
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert!(pres.approx_bytes() >= pres.len() * 16);
    }

    #[test]
    fn dim_distinct_counts_match_data() {
        let (g, eq) = example_2_setup();
        let pres = PartialResult::compute(&eq, &g).unwrap();
        // Ages {28, 35}; cities {Madrid, NY}.
        assert_eq!(pres.dim_distinct_counts(), vec![2, 2]);
        let empty = PartialResult::from_rows(vec!["d".into()], AggFunc::Count, vec![]);
        assert_eq!(empty.dim_distinct_counts(), vec![0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![
            (TermId(1), vec![TermId(10)], 1u32, TermId(20)),
            (TermId(2), vec![TermId(11)], 2u32, TermId(21)),
        ];
        let pres = PartialResult::from_rows(vec!["d".into()], AggFunc::Count, rows.clone());
        assert_eq!(pres.sorted_rows(), rows);
    }
}
