//! Canonical query signatures for materialized-view matching.
//!
//! The paper's problem statement — *answering an AnQ using the materialized
//! results of other AnQs* — needs a way to recognize that two analytical
//! queries share the same classifier body and measure even when they were
//! written independently (different variable names, different pattern
//! order). This module computes a **canonical form**: body patterns are
//! sorted, variables renamed by first occurrence in the sorted order, and
//! the result rendered to a string that is equal for structurally identical
//! queries.
//!
//! Canonicalization of conjunctive queries up to isomorphism is
//! GI-complete in general; this is a deterministic *sound heuristic*:
//! queries with equal signatures are guaranteed equivalent (the renaming is
//! a bijection), while rare symmetric queries may canonicalize differently
//! and merely miss a reuse opportunity — never produce a wrong answer.

use rdfcube_engine::{AggFunc, Bgp, PatternTerm, VarId};
use rdfcube_rdf::fx::FxHashMap;

/// The canonical form of a query body, plus the variable ↔ canonical-name
/// correspondence needed to relate dimensions across queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodySignature {
    /// Canonical rendering of the sorted, renamed body.
    pub text: String,
    /// Maps each body variable to its canonical name.
    pub var_names: FxHashMap<VarId, String>,
}

impl BodySignature {
    /// Computes the canonical body signature of `bgp` (head-independent:
    /// drill-out/drill-in change the head but not the signature).
    pub fn of(bgp: &Bgp) -> BodySignature {
        let mut names: FxHashMap<VarId, String> = FxHashMap::default();

        // Two rounds: first sort with anonymous variables to fix a pattern
        // order, assign names in first-occurrence order, then re-sort with
        // the assigned names for the final rendering.
        for _round in 0..2 {
            let mut rendered: Vec<(String, usize)> = bgp
                .body()
                .iter()
                .enumerate()
                .map(|(i, p)| (render_pattern(p, &names), i))
                .collect();
            rendered.sort();
            let mut next = names.len();
            for (_, i) in &rendered {
                for v in bgp.body()[*i].vars() {
                    names.entry(v).or_insert_with(|| {
                        let name = format!("v{next}");
                        next += 1;
                        name
                    });
                }
            }
        }

        let mut rendered: Vec<String> = bgp
            .body()
            .iter()
            .map(|p| render_pattern(p, &names))
            .collect();
        rendered.sort();
        rendered.dedup(); // identical patterns are redundant conjuncts
        BodySignature {
            text: rendered.join(" , "),
            var_names: names,
        }
    }

    /// The canonical name of `v`, if it occurs in the body.
    pub fn name_of(&self, v: VarId) -> Option<&str> {
        self.var_names.get(&v).map(String::as_str)
    }
}

fn render_pattern(p: &rdfcube_engine::QueryPattern, names: &FxHashMap<VarId, String>) -> String {
    let pos = |t: PatternTerm| match t {
        PatternTerm::Const(c) => format!("#{}", c.0),
        PatternTerm::Var(v) => names.get(&v).cloned().unwrap_or_else(|| "?".into()),
    };
    format!("{} {} {}", pos(p.s), pos(p.p), pos(p.o))
}

/// The hashable identity of a *derivation family*: every materialized cube
/// that could possibly answer a given target query shares this key — same
/// canonical classifier body, same canonical root name, same measure
/// signature, same ⊕. The cube catalog indexes its entries by `ViewKey`, so
/// `find_derivation` probes exactly one candidate family in O(1) instead of
/// rescanning (and re-canonicalizing) every materialized cube per query.
///
/// Dimension heads and Σ restrictions are deliberately *not* part of the
/// key: drill-out/drill-in change the head and dice changes Σ, and all of
/// them must land in the same family for reuse to trigger.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Canonical classifier body text ([`BodySignature::text`]).
    pub body: String,
    /// Canonical name of the fact (root) variable within that body.
    pub root: String,
    /// Full canonical measure signature ([`query_signature`]).
    pub measure: String,
    /// The aggregation function ⊕.
    pub agg: AggFunc,
}

/// Everything the catalog needs to know about a query's shape, computed
/// **once** (at registration for sources, once per probe for targets):
/// the family key, the body signature's variable↔name correspondence, and
/// the canonical names of the dimension variables in head order.
#[derive(Debug, Clone)]
pub struct ViewSignature {
    /// The derivation-family key.
    pub key: ViewKey,
    /// The classifier body signature (kept for drill-in variable lookup).
    pub body: BodySignature,
    /// Canonical names of the dimensions, in classifier-head order.
    pub dims: Vec<String>,
}

impl ViewSignature {
    /// Computes the signature of an analytical query. The classifier is
    /// canonicalized once; root and dimension variables are resolved to
    /// their canonical names through it.
    pub fn of(query: &crate::anq::AnalyticalQuery) -> ViewSignature {
        let body = BodySignature::of(query.classifier());
        let root = body
            .name_of(query.root())
            // Rooted-query validation guarantees the root occurs in the
            // body; the fallback merely keeps this total.
            .unwrap_or("?")
            .to_string();
        let dims = query
            .dim_vars()
            .iter()
            .map(|&v| body.name_of(v).unwrap_or("?").to_string())
            .collect();
        ViewSignature {
            key: ViewKey {
                body: body.text.clone(),
                root,
                measure: query_signature(query.measure()),
                agg: query.agg(),
            },
            body,
            dims,
        }
    }
}

/// Full signature of a query including its head (for measures, whose head
/// shape `(x, v)` is part of the semantics).
pub fn query_signature(bgp: &Bgp) -> String {
    let body = BodySignature::of(bgp);
    let head: Vec<String> = bgp
        .head()
        .iter()
        .map(|&v| body.name_of(v).unwrap_or("?").to_string())
        .collect();
    format!("({}) :- {}", head.join(", "), body.text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_engine::parse_query;
    use rdfcube_rdf::Dictionary;

    #[test]
    fn renaming_and_reordering_are_invisible() {
        let mut dict = Dictionary::new();
        let a = parse_query(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x wrotePost ?p",
            &mut dict,
        )
        .unwrap();
        let b = parse_query(
            "k(?person, ?a) :- ?person wrotePost ?post, ?person hasAge ?a, \
             ?person rdf:type Blogger",
            &mut dict,
        )
        .unwrap();
        assert_eq!(BodySignature::of(&a).text, BodySignature::of(&b).text);
        assert_eq!(query_signature(&a), query_signature(&b));
    }

    #[test]
    fn different_bodies_differ() {
        let mut dict = Dictionary::new();
        let a = parse_query("c(?x) :- ?x hasAge ?d", &mut dict).unwrap();
        let b = parse_query("c(?x) :- ?x livesIn ?d", &mut dict).unwrap();
        assert_ne!(BodySignature::of(&a).text, BodySignature::of(&b).text);
    }

    #[test]
    fn head_changes_do_not_affect_body_signature() {
        let mut dict = Dictionary::new();
        let full = parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            &mut dict,
        )
        .unwrap();
        let mut drilled = full.clone();
        let head = drilled.head()[..2].to_vec();
        drilled.set_head(head);
        assert_eq!(
            BodySignature::of(&full).text,
            BodySignature::of(&drilled).text
        );
        // But the full signatures (head included) differ.
        assert_ne!(query_signature(&full), query_signature(&drilled));
    }

    #[test]
    fn dims_correspond_across_renamings() {
        let mut dict = Dictionary::new();
        let a = parse_query(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
            &mut dict,
        )
        .unwrap();
        let b = parse_query(
            "c(?u, ?years) :- ?u rdf:type Blogger, ?u hasAge ?years",
            &mut dict,
        )
        .unwrap();
        let sig_a = BodySignature::of(&a);
        let sig_b = BodySignature::of(&b);
        let dage = a.vars().id("dage").unwrap();
        let years = b.vars().id("years").unwrap();
        assert_eq!(sig_a.name_of(dage), sig_b.name_of(years));
    }

    #[test]
    fn constants_distinguish() {
        let mut dict = Dictionary::new();
        let a = parse_query("c(?x) :- ?x hasAge 28", &mut dict).unwrap();
        let b = parse_query("c(?x) :- ?x hasAge 35", &mut dict).unwrap();
        assert_ne!(BodySignature::of(&a).text, BodySignature::of(&b).text);
    }

    #[test]
    fn view_keys_are_rename_invariant_and_agg_sensitive() {
        use crate::anq::AnalyticalQuery;
        use rdfcube_engine::AggFunc;
        let mut dict = Dictionary::new();
        let a = AnalyticalQuery::parse(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let b = AnalyticalQuery::parse(
            "k(?u, ?years) :- ?u hasAge ?years, ?u rdf:type Blogger",
            "w(?u, ?p) :- ?u wrotePost ?p",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let sa = ViewSignature::of(&a);
        let sb = ViewSignature::of(&b);
        assert_eq!(
            sa.key, sb.key,
            "renaming/reordering must not split families"
        );
        assert_eq!(sa.dims, sb.dims);

        let c = AnalyticalQuery::parse(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::CountDistinct,
            &mut dict,
        )
        .unwrap();
        assert_ne!(sa.key, ViewSignature::of(&c).key, "⊕ is part of the key");
    }

    #[test]
    fn view_key_ignores_head_but_not_measure() {
        use crate::anq::AnalyticalQuery;
        use rdfcube_engine::AggFunc;
        let mut dict = Dictionary::new();
        let full = AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let coarse = AnalyticalQuery::parse(
            "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?a, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        // Drill-out shape: same family (same body), different dims.
        assert_eq!(ViewSignature::of(&full).key, ViewSignature::of(&coarse).key);
        assert_ne!(
            ViewSignature::of(&full).dims,
            ViewSignature::of(&coarse).dims
        );

        let other_measure = AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        assert_ne!(
            ViewSignature::of(&full).key,
            ViewSignature::of(&other_measure).key
        );
    }

    #[test]
    fn duplicate_conjuncts_collapse() {
        let mut dict = Dictionary::new();
        let a = parse_query("c(?x) :- ?x p ?y, ?x p ?y", &mut dict).unwrap();
        let b = parse_query("c(?x) :- ?x p ?y", &mut dict).unwrap();
        assert_eq!(BodySignature::of(&a).text, BodySignature::of(&b).text);
    }
}
