//! Workload-driven view selection: mine the query log, pre-materialize
//! the best lattice ancestors per byte.
//!
//! The catalog (PR 4/6) is purely *reactive* — it caches whatever the
//! user happened to query, so a skewed workload of distinct-but-derivable
//! queries keeps paying from-scratch evaluation: a cube diced to one city
//! cannot serve next week's dice to another city, even though one
//! unrestricted ancestor would serve both (and every drill-out below it).
//! This module closes ROADMAP item 3 — the materialized-view-selection
//! problem SOFOS frames for knowledge graphs — with the classic greedy
//! algorithm over the cube lattice:
//!
//! 1. **Mine** — the catalog's query log ([`CubeCatalog::logged_shapes`])
//!    holds every distinct query shape answered so far, with per-shape
//!    frequency, the strategy the planner chose, and its estimated +
//!    measured cost.
//! 2. **Enumerate candidates** — per derivation family, the Σ-unrestricted
//!    generalization of each logged dimension list, closed under
//!    order-preserving merge ([`merge_dims`]): the drill-out ancestors in
//!    the dimension lattice, up to the family's apex. Candidates that are
//!    already materialized and fresh are skipped (the planner can use them
//!    today); evicted or stale twins become *rehydration* candidates with
//!    exactly known statistics.
//! 3. **Cost** — each candidate's statistics are estimated from its
//!    already-materialized family members (`pres` is head-dependent, so a
//!    superset-dimension ancestor has at least the rows of any logged
//!    subset; per-dimension distinct counts transfer by canonical name).
//!    Its *benefit* is Σ over logged shapes of
//!    `(current plan cost − plan cost via the candidate) × frequency`,
//!    where the current cost comes from re-running the planner
//!    ([`crate::session`]'s `plan_in`) against the catalog as it stands.
//! 4. **Select** — greedy benefit-per-byte under the session's existing
//!    memory budget: repeatedly take the candidate with the highest
//!    `benefit / bytes` that still fits, then re-credit the shapes it
//!    covers (later picks only earn what the earlier ones left).
//! 5. **Materialize** — the chosen set is computed with the same parallel
//!    sharded evaluator every query uses and registered through the
//!    budgeted insert path, so the byte budget holds by construction.
//!
//! Entry points: [`crate::OlapSession::advise`] (mutation plane) and
//! [`crate::SharedSession::advise_if_stale`] (periodic re-selection when
//! the log has grown). A run with no new logged queries since the last
//! run is a no-op, which makes `advise()` idempotent on an unchanged log.

use crate::catalog::{classify_derivation, CubeCatalog, CubeStats, LoggedQuery};
use crate::cost;
use crate::error::CoreError;
use crate::extended::{ExtendedQuery, Sigma};
use crate::pres::PartialResult;
use crate::session;
use crate::signature::{ViewKey, ViewSignature};
use rdfcube_rdf::fx::FxHashMap;
use rdfcube_rdf::Graph;
use std::sync::Arc;

/// Dimension-lattice ancestors enumerated per derivation family (the
/// closure under pairwise merge is capped here; logged dimension lists
/// come first, so the cap can only drop deep synthetic ancestors).
const MAX_CANDIDATES_PER_FAMILY: usize = 32;

/// Distinct-count estimate for a dimension no materialized family member
/// has ever carried (rare: candidates are merges of logged heads).
const DEFAULT_DIM_DISTINCT: usize = 16;

/// What a view-selection run considered, chose, and materialized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdvisorReport {
    /// Distinct logged query shapes the run mined.
    pub shapes: usize,
    /// Candidate ancestor views enumerated (after skipping ones already
    /// materialized and fresh).
    pub considered: usize,
    /// Candidates selected and materialized (or rehydrated).
    pub selected: usize,
    /// Actual bytes of payload the selected views occupy.
    pub materialized_bytes: usize,
    /// Total predicted benefit of the selection, in abstract row touches
    /// weighted by logged frequency.
    pub predicted_benefit: f64,
    /// Total logged queries at selection time.
    pub log_queries: u64,
}

/// One enumerated ancestor view: either a hypothetical cube to build or
/// an evicted/stale twin to rehydrate.
struct Candidate {
    eq: Arc<ExtendedQuery>,
    sig: ViewSignature,
    stats: CubeStats,
    /// Catalog index of an existing unrestricted twin (evicted or stale),
    /// if rehydrating it is the cheaper way to realize this candidate.
    existing: Option<usize>,
}

/// Runs one mine → enumerate → cost → select → materialize cycle against
/// the catalog. No-op (selecting nothing) when the log has not grown
/// since the previous run.
pub(crate) fn advise_catalog(
    catalog: &mut CubeCatalog,
    instance: &Graph,
) -> Result<AdvisorReport, CoreError> {
    let log_queries = catalog.log_total();
    if log_queries == catalog.advised_log_total() {
        return Ok(AdvisorReport {
            log_queries,
            ..AdvisorReport::default()
        });
    }
    let shapes = catalog.logged_shapes();

    // Group logged shapes by derivation family, in first-seen order so the
    // whole run is deterministic for a given log.
    let mut family_of: FxHashMap<ViewKey, usize> = FxHashMap::default();
    let mut families: Vec<(ViewKey, Vec<usize>)> = Vec::new();
    for (i, s) in shapes.iter().enumerate() {
        let key = &s.signature().key;
        match family_of.get(key) {
            Some(&f) => families[f].1.push(i),
            None => {
                family_of.insert(key.clone(), families.len());
                families.push((key.clone(), vec![i]));
            }
        }
    }

    // Current plan cost per logged shape, against the catalog as it
    // stands (includes rehydration surcharges for evicted sources — that
    // is precisely the pain the advisor can relieve).
    let mut cur_cost: Vec<f64> = shapes
        .iter()
        .map(|s| {
            session::plan_in(catalog, instance, s.query(), s.signature())
                .1
                .estimated_cost
        })
        .collect();

    // Enumerate candidates and their per-shape derivation costs.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut coverage: Vec<Vec<(usize, f64)>> = Vec::new();
    for (key, members) in &families {
        let rep = &shapes[members[0]];
        for dims in candidate_dimsets(&shapes, members) {
            let candidate = match unrestricted_twin(catalog, key, &dims) {
                Some(idx) => {
                    let e = catalog.entry(idx);
                    if e.is_resident() && e.is_fresh(instance) {
                        // Already materialized: the planner can (and does,
                        // see `cur_cost`) use it today — no benefit left.
                        continue;
                    }
                    Candidate {
                        eq: e.query_arc(),
                        sig: e.signature().clone(),
                        stats: e.stats().clone(),
                        existing: Some(idx),
                    }
                }
                None => {
                    let Some(eq) = build_candidate(rep, &dims) else {
                        continue;
                    };
                    let sig = ViewSignature::of(eq.query());
                    debug_assert_eq!(sig.dims, dims, "candidate head kept canonical names");
                    let stats = estimate_stats(catalog, key, &dims);
                    Candidate {
                        eq: Arc::new(eq),
                        sig,
                        stats,
                        existing: None,
                    }
                }
            };
            // How cheaply would each logged shape of the family derive
            // from this candidate, were it resident and fresh?
            let mut cov = Vec::new();
            for &si in members {
                let s = &shapes[si];
                let d = classify_derivation(
                    &candidate.sig.dims,
                    candidate.eq.sigma(),
                    &s.signature().dims,
                    s.query().sigma(),
                    candidate.eq.query().classifier().head(),
                    &candidate.sig.body,
                );
                if let Some(d) = d {
                    let via = cost::derivation_cost_with_stats(
                        &d,
                        &candidate.stats,
                        &candidate.eq,
                        s.query(),
                        instance,
                    );
                    cov.push((si, via));
                }
            }
            if !cov.is_empty() {
                candidates.push(candidate);
                coverage.push(cov);
            }
        }
    }

    // Greedy benefit-per-byte selection under the byte budget. After each
    // pick, the covered shapes' current costs drop to the via-cost, so
    // overlapping later candidates only earn the improvement they add.
    let mut remaining = catalog.budget().unwrap_or(usize::MAX);
    let mut picked = vec![false; candidates.len()];
    let mut order: Vec<usize> = Vec::new();
    let mut predicted_benefit = 0.0f64;
    loop {
        let mut best: Option<(usize, f64, f64)> = None;
        for (ci, c) in candidates.iter().enumerate() {
            // The first pick may exceed the byte budget on its own — the
            // catalog pins a single over-budget entry rather than serve
            // nothing (and density already penalizes size); later picks
            // must fit what the earlier ones left.
            if picked[ci] || (!order.is_empty() && c.stats.bytes > remaining) {
                continue;
            }
            let benefit: f64 = coverage[ci]
                .iter()
                .map(|&(si, via)| (cur_cost[si] - via).max(0.0) * shapes[si].count() as f64)
                .sum();
            if benefit <= 0.0 {
                continue;
            }
            let density = benefit / c.stats.bytes.max(1) as f64;
            if best.is_none_or(|(_, _, d)| density > d) {
                best = Some((ci, benefit, density));
            }
        }
        let Some((ci, benefit, _)) = best else { break };
        picked[ci] = true;
        order.push(ci);
        predicted_benefit += benefit;
        remaining = remaining.saturating_sub(candidates[ci].stats.bytes);
        for &(si, via) in &coverage[ci] {
            if via < cur_cost[si] {
                cur_cost[si] = via;
            }
        }
    }

    // Materialize in selection order (best density first), through the
    // budgeted insert/rehydrate paths. The greedy ran on *estimated*
    // sizes; here the actual bytes are re-checked against what the budget
    // has left, so an under-estimated later pick is dropped rather than
    // allowed to evict an earlier (denser) one. The first pick is exempt,
    // mirroring the catalog's single-entry pinning rule.
    let mut actual_remaining = catalog.budget().unwrap_or(usize::MAX);
    let mut materialized_bytes = 0usize;
    let mut selected = 0usize;
    for &ci in &order {
        let c = &candidates[ci];
        let idx = match c.existing {
            Some(idx) => {
                if selected > 0 && catalog.entry(idx).stats().bytes > actual_remaining {
                    continue;
                }
                catalog.ensure_resident(idx, instance)?;
                idx
            }
            None => {
                if let Some(idx) = session::find_duplicate(catalog, &c.sig, &c.eq) {
                    // A twin appeared between enumeration and now (e.g. an
                    // earlier pick materialized it): reuse, don't copy.
                    if selected > 0 && catalog.entry(idx).stats().bytes > actual_remaining {
                        continue;
                    }
                    catalog.ensure_resident(idx, instance)?;
                    idx
                } else {
                    let pres = PartialResult::compute(&c.eq, instance)?;
                    let ans = pres.to_cube(instance.dict())?;
                    if selected > 0 && ans.approx_bytes() + pres.approx_bytes() > actual_remaining {
                        continue;
                    }
                    catalog.insert_signed((*c.eq).clone(), c.sig.clone(), ans, pres, instance.len())
                }
            }
        };
        catalog.touch(idx);
        let actual = catalog.entry(idx).stats().bytes;
        actual_remaining = actual_remaining.saturating_sub(actual);
        materialized_bytes += actual;
        selected += 1;
    }

    catalog.record_advisor_run(selected as u64, materialized_bytes as u64);
    catalog.mark_advised();
    Ok(AdvisorReport {
        shapes: shapes.len(),
        considered: candidates.len(),
        selected,
        materialized_bytes,
        predicted_benefit,
        log_queries,
    })
}

/// The candidate dimension lists of one family: every logged dimension
/// list (its Σ-unrestricted generalization), closed under pairwise
/// order-preserving merge — the drill-out ancestors up to the apex the
/// logged heads span.
fn candidate_dimsets(shapes: &[LoggedQuery], members: &[usize]) -> Vec<Vec<String>> {
    let mut dimsets: Vec<Vec<String>> = Vec::new();
    for &si in members {
        let dims = shapes[si].signature().dims.clone();
        if !dimsets.contains(&dims) {
            dimsets.push(dims);
        }
    }
    let mut i = 1;
    'grow: while i < dimsets.len() {
        for j in 0..i {
            if dimsets.len() >= MAX_CANDIDATES_PER_FAMILY {
                break 'grow;
            }
            if let Some(merged) = merge_dims(&dimsets[i], &dimsets[j]) {
                if !dimsets.contains(&merged) {
                    dimsets.push(merged);
                }
            }
        }
        i += 1;
    }
    dimsets
}

/// Order-preserving merge of two dimension lists into their minimal
/// common ancestor head, or `None` when the shared dimensions appear in
/// conflicting orders (no single ancestor can drill out to both).
fn merge_dims(a: &[String], b: &[String]) -> Option<Vec<String>> {
    let in_a: std::collections::HashSet<&str> = a.iter().map(String::as_str).collect();
    let in_b: std::collections::HashSet<&str> = b.iter().map(String::as_str).collect();
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            out.push(a[i].clone());
            i += 1;
            j += 1;
        } else if !in_b.contains(a[i].as_str()) {
            out.push(a[i].clone());
            i += 1;
        } else if !in_a.contains(b[j].as_str()) {
            out.push(b[j].clone());
            j += 1;
        } else {
            // Both heads contain both dimensions, in opposite orders.
            return None;
        }
    }
    out.extend(a[i..].iter().cloned());
    out.extend(b[j..].iter().cloned());
    Some(out)
}

/// An existing catalog entry with exactly the candidate's dimensions and
/// an unrestricted Σ, if one was ever materialized.
fn unrestricted_twin(catalog: &CubeCatalog, key: &ViewKey, dims: &[String]) -> Option<usize> {
    catalog.family(key).iter().copied().find(|&idx| {
        let e = catalog.entry(idx);
        e.signature().dims == dims && e.query().sigma().is_unrestricted()
    })
}

/// Builds the candidate extended query: the representative shape's
/// classifier with its head set to `[root] + dims` (resolved through the
/// canonical body names) and an unrestricted Σ.
fn build_candidate(rep: &LoggedQuery, dims: &[String]) -> Option<ExtendedQuery> {
    let q = rep.query().query();
    let body = &rep.signature().body;
    let mut head = Vec::with_capacity(dims.len() + 1);
    head.push(q.root());
    for name in dims {
        let var = body
            .var_names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(&v, _)| v)?;
        head.push(var);
    }
    let mut classifier = q.classifier().clone();
    classifier.set_head(head);
    let new_q = q.with_classifier(classifier).ok()?;
    ExtendedQuery::with_sigma(new_q, Sigma::all(dims.len())).ok()
}

/// Accumulator for one (dimension list, restriction pattern) bucket of
/// family members inside [`estimate_stats`].
#[derive(Default)]
struct PatternEstimate<'a> {
    /// Σ `pres` rows across the bucket's entries.
    rows: usize,
    /// Σ over entries of Π restricted-selector widths — how many
    /// restricted-value combinations those rows cover in total.
    combos: usize,
    largest: usize,
    bytes_per_row: f64,
    /// Union of the finite values each restricted dimension was ever
    /// diced to (overlapping dices — e.g. a pair covering a logged
    /// single — are deduplicated here, not double-counted).
    union: FxHashMap<&'a str, std::collections::HashSet<&'a rdfcube_rdf::Term>>,
    /// Widest integer range seen per restricted dimension (ranges are
    /// not enumerated into `union`).
    range_extra: FxHashMap<&'a str, usize>,
}

fn selector_width(sel: &crate::extended::ValueSelector) -> usize {
    use crate::extended::ValueSelector;
    match sel {
        ValueSelector::All => 1,
        ValueSelector::OneOf(vs) => vs.len().max(1),
        ValueSelector::IntRange { lo, hi } => (hi - lo + 1).max(1) as usize,
    }
}

/// Estimates a hypothetical candidate's statistics from its materialized
/// family members: `pres(Q)` is head-dependent (set-semantics dedup on
/// the head), so members whose dimensions are a subset of the candidate's
/// lower-bound its row count. Members are bucketed by (dimension list,
/// which dimensions their Σ restricts); within a bucket, differently-
/// diced siblings select disjoint-by-value slices of the same ancestor,
/// so `rows-per-restricted-combination × |union of combinations seen|`
/// reconstructs the unrestricted ancestor along that bucket's axis — the
/// candidate estimate is the max over buckets (each one under-counts,
/// since logs only ever cover part of a domain).
fn estimate_stats(catalog: &CubeCatalog, key: &ViewKey, dims: &[String]) -> CubeStats {
    use crate::extended::ValueSelector;
    let mut per_dim: FxHashMap<&str, usize> = FxHashMap::default();
    let mut patterns: FxHashMap<(&[String], u64), PatternEstimate> = FxHashMap::default();
    for &idx in catalog.family(key) {
        let e = catalog.entry(idx);
        let stats = e.stats();
        for (name, &d) in e.signature().dims.iter().zip(&stats.dim_distinct) {
            let slot = per_dim.entry(name.as_str()).or_insert(0);
            *slot = (*slot).max(d);
        }
        let edims = e.signature().dims.as_slice();
        if !edims.iter().all(|d| dims.contains(d)) {
            continue;
        }
        let selectors = e.query().sigma().selectors();
        let mut mask = 0u64;
        let mut combos = 1usize;
        for pos in 0..edims.len().min(64) {
            match selectors.get(pos) {
                None | Some(ValueSelector::All) => {}
                Some(sel) => {
                    mask |= 1 << pos;
                    combos = combos.saturating_mul(selector_width(sel));
                }
            }
        }
        let p = patterns.entry((edims, mask)).or_default();
        p.rows += stats.pres_rows;
        p.combos += combos;
        if stats.pres_rows > p.largest {
            p.largest = stats.pres_rows;
            p.bytes_per_row = stats.bytes as f64 / stats.pres_rows.max(1) as f64;
        }
        for (pos, name) in edims.iter().enumerate().take(64) {
            match selectors.get(pos) {
                Some(ValueSelector::OneOf(vs)) => {
                    p.union.entry(name.as_str()).or_default().extend(vs.iter());
                }
                Some(ValueSelector::IntRange { lo, hi }) => {
                    let w = (hi - lo + 1).max(1) as usize;
                    let slot = p.range_extra.entry(name.as_str()).or_insert(0);
                    *slot = (*slot).max(w);
                }
                _ => {}
            }
        }
    }
    let mut pres_rows = 1usize;
    let mut bytes_per_row = 64.0f64;
    let mut union_dist: FxHashMap<&str, usize> = FxHashMap::default();
    for ((_, mask), p) in &patterns {
        let covered = |name: &str| {
            p.union.get(name).map_or(0, |s| s.len()) + p.range_extra.get(name).copied().unwrap_or(0)
        };
        let est = if *mask == 0 {
            // An unrestricted member directly lower-bounds the ancestor.
            p.largest
        } else {
            let per_combo = p.rows as f64 / p.combos.max(1) as f64;
            let mut combos_total = 1f64;
            for name in p.union.keys() {
                combos_total *= covered(name).max(1) as f64;
            }
            for name in p.range_extra.keys() {
                if !p.union.contains_key(name) {
                    combos_total *= covered(name).max(1) as f64;
                }
            }
            (per_combo * combos_total) as usize
        };
        if est > pres_rows {
            pres_rows = est;
            bytes_per_row = p.bytes_per_row.max(1.0);
        }
        for name in p.union.keys().chain(p.range_extra.keys()) {
            let slot = union_dist.entry(name).or_insert(0);
            *slot = (*slot).max(covered(name));
        }
    }
    let dim_distinct: Vec<usize> = dims
        .iter()
        .map(|d| {
            let known = union_dist
                .get(d.as_str())
                .copied()
                .unwrap_or(0)
                .max(per_dim.get(d.as_str()).copied().unwrap_or(0));
            if known == 0 {
                DEFAULT_DIM_DISTINCT
            } else {
                known.min(pres_rows.max(1))
            }
        })
        .collect();
    let cells: usize = dim_distinct
        .iter()
        .fold(1usize, |acc, &n| acc.saturating_mul(n.max(1)));
    CubeStats {
        ans_cells: cells.min(pres_rows),
        pres_rows,
        bytes: (pres_rows as f64 * bytes_per_row) as usize,
        dim_distinct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extended::ValueSelector;
    use crate::session::{OlapSession, Strategy};
    use rdfcube_engine::AggFunc;
    use rdfcube_rdf::{parse_turtle, Term};

    fn world() -> rdfcube_rdf::Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user2> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Lyon\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user2> <wrotePost> <p6> . <p6> <postedOn> <s3> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap()
    }

    fn sliced_example(s: &mut OlapSession, city: &str) -> ExtendedQuery {
        let eq = s
            .parse_query(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
                AggFunc::Count,
            )
            .unwrap();
        let mut sigma = Sigma::all(2);
        sigma.set(1, ValueSelector::one(Term::literal(city)));
        ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap()
    }

    /// Footprint of one materialized city-slice cube, for sizing byte
    /// budgets. The advisor only has work to do under budget pressure —
    /// an unbudgeted catalog keeps every answered shape resident, so
    /// every logged query is already served at its cheapest.
    fn one_slice_bytes() -> usize {
        let mut probe = OlapSession::new(world());
        let eq = sliced_example(&mut probe, "Madrid");
        let (h, _) = probe.answer_query(eq).unwrap();
        probe.cube(h).answer().approx_bytes() + probe.cube(h).pres().approx_bytes()
    }

    #[test]
    fn merge_dims_builds_the_common_ancestor() {
        let a = vec!["age".to_string(), "city".to_string()];
        let b = vec!["city".to_string(), "site".to_string()];
        assert_eq!(
            merge_dims(&a, &b),
            Some(vec![
                "age".to_string(),
                "city".to_string(),
                "site".to_string()
            ])
        );
        // Conflicting relative order has no single ancestor.
        let c = vec!["city".to_string(), "age".to_string()];
        assert_eq!(merge_dims(&a, &c), None);
        // Identical lists merge to themselves.
        assert_eq!(merge_dims(&a, &a), Some(a.clone()));
        // Disjoint lists interleave (a first).
        let d = vec!["site".to_string()];
        assert_eq!(
            merge_dims(&a, &d),
            Some(vec![
                "age".to_string(),
                "city".to_string(),
                "site".to_string()
            ])
        );
    }

    #[test]
    fn advise_materializes_the_unrestricted_ancestor() {
        // Budget for ~2.5 slice cubes: the 3-shape warmup must evict.
        let mut s = OlapSession::with_budget(world(), one_slice_bytes() * 5 / 2);
        // A workload of distinct city slices: none can serve another, so
        // the reactive catalog alone keeps paying from-scratch evaluation
        // (or rehydration) for every recurring shape that fell out.
        for city in ["Madrid", "NY", "Lyon", "Madrid", "NY", "Madrid"] {
            let eq = sliced_example(&mut s, city);
            s.answer_query(eq).unwrap();
        }
        let before = s.len();
        let report = s.advise().unwrap();
        assert_eq!(report.shapes, 3);
        assert!(report.considered >= 1);
        assert_eq!(report.selected, 1, "one apex ancestor suffices");
        assert!(report.predicted_benefit > 0.0);
        assert!(report.materialized_bytes > 0);
        assert_eq!(s.len(), before + 1);

        // A never-seen slice is now served by σ over the advised apex.
        let eq = sliced_example(&mut s, "Lyon");
        let mut sigma = Sigma::all(2);
        sigma.set(1, ValueSelector::one(Term::literal("Madrid")));
        let fresh = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        let mut sigma2 = Sigma::all(2);
        sigma2.set(0, ValueSelector::one(Term::integer(28)));
        let fresh2 = ExtendedQuery::with_sigma(eq.query().clone(), sigma2).unwrap();
        for f in [fresh, fresh2] {
            let (h, explained) = s.answer_query(f).unwrap();
            assert_eq!(explained.strategy, Strategy::SelectionOnAns);
            assert!(explained.catalog_hit);
            let scratch = s.cube(h).query().answer(s.instance()).unwrap();
            assert!(s.answer(h).same_cells(&scratch));
        }
    }

    #[test]
    fn advise_is_a_noop_without_new_queries() {
        // Budget for ~1.5 slice cubes: the second warmup shape evicts the
        // first, giving the advisor a positive benefit to act on.
        let mut s = OlapSession::with_budget(world(), one_slice_bytes() * 3 / 2);
        for city in ["Madrid", "NY"] {
            let eq = sliced_example(&mut s, city);
            s.answer_query(eq).unwrap();
        }
        let first = s.advise().unwrap();
        assert!(first.selected >= 1);
        let len = s.len();
        let second = s.advise().unwrap();
        assert_eq!(second.selected, 0, "unchanged log selects nothing");
        assert_eq!(second.considered, 0);
        assert_eq!(s.len(), len, "idempotent: no new materializations");
        // New traffic re-arms the advisor (even if there is nothing new
        // worth materializing, the run is no longer short-circuited).
        let eq = sliced_example(&mut s, "Lyon");
        s.answer_query(eq).unwrap();
        let third = s.advise().unwrap();
        assert_eq!(third.shapes, 3);
    }

    #[test]
    fn drill_out_variants_promote_the_merged_apex() {
        // Budget for ~1.5 of the (small, 1-D, sliced) warmup cubes so the
        // warmup itself evicts and leaves the advisor positive benefits.
        let mut s = OlapSession::with_budget(world(), one_slice_bytes() * 3 / 2);
        // Two 1-D drill-out shapes (age-only and city-only), each sliced:
        // the advisor's merge closure should also enumerate their common
        // (age, city) apex, never queried itself.
        let base = s
            .parse_query(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
                AggFunc::Count,
            )
            .unwrap();
        let age_only = crate::olap::apply(
            &base,
            &crate::olap::OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .unwrap();
        let city_only = crate::olap::apply(
            &base,
            &crate::olap::OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .unwrap();
        let mut sigma = Sigma::all(1);
        sigma.set(0, ValueSelector::one(Term::integer(35)));
        let age_sliced = ExtendedQuery::with_sigma(age_only.query().clone(), sigma).unwrap();
        let mut sigma = Sigma::all(1);
        sigma.set(0, ValueSelector::one(Term::literal("NY")));
        let city_sliced = ExtendedQuery::with_sigma(city_only.query().clone(), sigma).unwrap();
        s.answer_query(age_sliced).unwrap();
        s.answer_query(city_sliced).unwrap();

        let report = s.advise().unwrap();
        // Closure: the two logged 1-D dimension lists plus their merged
        // 2-D apex (none has a materialized unrestricted twin yet).
        assert!(report.considered >= 3, "considered {}", report.considered);
        assert!(report.selected >= 1);
        // Whatever subset the greedy picked, answers stay cell-identical
        // to from-scratch evaluation — for a fresh 2-D dice over the
        // never-queried apex shape too.
        let mut sigma = Sigma::all(2);
        sigma.set(0, ValueSelector::one(Term::integer(28)));
        let fresh = ExtendedQuery::with_sigma(base.query().clone(), sigma).unwrap();
        let (h, _) = s.answer_query(fresh).unwrap();
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }
}
