//! §3 — answering transformed cubes from materialized results.
//!
//! This module is the paper's contribution: given an OLAP transformation
//! `T(Q) = Q_T`, compute `ans(Q_T)` **without re-evaluating `Q_T` on the
//! instance**, using what was materialized for `Q`:
//!
//! | Operation   | Input                | Algorithm                              |
//! |-------------|----------------------|----------------------------------------|
//! | SLICE/DICE  | `ans(Q)`             | σ_dice row selection (Def. 5, Prop. 1) |
//! | DRILL-OUT   | `pres(Q)`            | Algorithm 1: π, δ, γ (Prop. 2)         |
//! | DRILL-IN    | `pres(Q)` + instance | Algorithm 2: q_aux ⋈ pres, γ (Prop. 3) |
//!
//! Each rewriting also returns the transformed query's own partial result as
//! a byproduct, so chains of OLAP operations never touch the instance again
//! (except for the drill-in auxiliary query, by necessity).
//!
//! [`drill_out_from_ans`] implements the *incorrect* shortcut the paper
//! warns against in Example 5 — re-aggregating already-aggregated cells —
//! kept (clearly labeled) so the benchmarks can quantify how wrong it gets
//! as multi-valuedness grows, and because it *is* sound for the idempotent
//! functions min/max.

use crate::anq::AnalyticalQuery;
use crate::answer::Cube;
use crate::aux_query::build_aux_query;
use crate::error::CoreError;
use crate::extended::{ExtendedQuery, Sigma};
use crate::pres::PartialResult;
use rdfcube_engine::{evaluate, AggFunc, AggValue, Semantics, VarId};
use rdfcube_rdf::fx::{FxHashMap, FxHashSet};
use rdfcube_rdf::{Dictionary, Graph, TermId};

/// Baseline: evaluates the transformed query from scratch on the instance
/// (what a system without the paper's rewritings must do).
pub fn from_scratch(eq: &ExtendedQuery, instance: &Graph) -> Result<Cube, CoreError> {
    eq.answer(instance)
}

/// Baseline that additionally materializes `pres(Q_T)` (used when a from-
/// scratch fallback must still populate the cache for later operations).
pub fn from_scratch_with_pres(
    eq: &ExtendedQuery,
    instance: &Graph,
) -> Result<(Cube, PartialResult), CoreError> {
    let pres = PartialResult::compute(eq, instance)?;
    let cube = pres.to_cube(instance.dict())?;
    Ok((cube, pres))
}

/// σ_dice (Definition 5): answers a SLICE/DICE from the materialized
/// `ans(Q)` by plain row selection — Proposition 1 guarantees
/// `σ_dice(ans(Q)) = ans(Q_DICE)` provided the new Σ refines the old.
pub fn dice_from_ans(ans: &Cube, new_sigma: &Sigma, dict: &Dictionary) -> Cube {
    let compiled = new_sigma.compile(dict);
    let cells = ans
        .cells()
        .iter()
        .filter(|(dims, _)| compiled.admits(dims, dict))
        .cloned()
        .collect();
    Cube::from_cells(ans.dim_names().to_vec(), ans.agg(), cells)
}

/// The SLICE/DICE counterpart on partial results: `pres(Q_DICE)` is the
/// Σ-selected subset of `pres(Q)` (same keys), letting a session keep the
/// pres cache warm across slice/dice chains.
pub fn dice_pres(pres: &PartialResult, new_sigma: &Sigma, dict: &Dictionary) -> PartialResult {
    let compiled = new_sigma.compile(dict);
    PartialResult::from_rows(
        pres.dim_names().to_vec(),
        pres.agg(),
        pres.rows()
            .filter(|r| compiled.admits(r.dims, dict))
            .map(|r| (r.root, r.dims.to_vec(), r.key, r.value)),
    )
}

/// Algorithm 1 (generalized to a set of removed dimensions): answers a
/// DRILL-OUT from `pres(Q)`.
///
/// 1. π — project out the removed dimension columns (keeping `root, k, v`);
/// 2. δ — deduplicate: a fact multi-valued along a removed dimension
///    contributed several rows *with the same key*, which must collapse so
///    its measures are not double-counted (the paper's Example 5 trap);
/// 3. γ — group by the surviving dimensions and re-aggregate.
///
/// Returns `(ans(Q_DRILL-OUT), pres(Q_DRILL-OUT))` — the deduplicated table
/// *is* the new partial result.
pub fn drill_out_from_pres(
    pres: &PartialResult,
    removed: &[usize],
    dict: &Dictionary,
) -> Result<(Cube, PartialResult), CoreError> {
    let n = pres.n_dims();
    for &i in removed {
        if i >= n {
            return Err(CoreError::InvalidOperation(format!(
                "dimension index {i} out of range for a {n}-dimensional pres"
            )));
        }
    }
    let kept: Vec<usize> = (0..n).filter(|i| !removed.contains(i)).collect();
    let dim_names: Vec<String> = kept.iter().map(|&i| pres.dim_names()[i].clone()).collect();

    // π + δ sort-based: order a row permutation by (root, kept dims, k) so
    // duplicates become adjacent, then keep each run's first row — no hash
    // set of freshly allocated (root, dims, k) tuples per input row. The
    // measure value is functionally determined by (root, k), so it need not
    // join the key.
    let mut perm: Vec<u32> = (0..pres.len() as u32).collect();
    perm.sort_unstable_by(|&a, &b| {
        let ra = pres.row(a as usize);
        let rb = pres.row(b as usize);
        ra.root
            .cmp(&rb.root)
            .then_with(|| {
                kept.iter()
                    .map(|&i| ra.dims[i])
                    .cmp(kept.iter().map(|&i| rb.dims[i]))
            })
            .then(ra.key.cmp(&rb.key))
            .then(a.cmp(&b))
    });
    let mut rows: Vec<(TermId, Vec<TermId>, u32, TermId)> = Vec::new();
    for (idx, &pi) in perm.iter().enumerate() {
        let r = pres.row(pi as usize);
        let duplicate = idx > 0 && {
            let p = pres.row(perm[idx - 1] as usize);
            p.root == r.root && p.key == r.key && kept.iter().all(|&i| p.dims[i] == r.dims[i])
        };
        if !duplicate {
            rows.push((
                r.root,
                kept.iter().map(|&i| r.dims[i]).collect(),
                r.key,
                r.value,
            ));
        }
    }
    let new_pres = PartialResult::from_rows(dim_names, pres.agg(), rows);
    let cube = new_pres.to_cube(dict)?;
    Ok((cube, new_pres))
}

/// The **incorrect** ans-based drill-out of Example 5: re-aggregates the
/// already-aggregated cell values of `ans(Q)`.
///
/// * For `min`/`max` this is actually sound (idempotent ⊕) — and the session
///   exploits that.
/// * For `count`/`sum` it double-counts facts that are multi-valued along a
///   removed dimension; benchmark E4 measures exactly how wrong.
/// * For non-distributive functions (`avg`, `count_distinct`) it is not even
///   computable and yields an error (the paper's case 2 in §3.2).
pub fn drill_out_from_ans(
    ans: &Cube,
    removed: &[usize],
    dict: &Dictionary,
) -> Result<Cube, CoreError> {
    let n = ans.n_dims();
    let kept: Vec<usize> = (0..n).filter(|i| !removed.contains(i)).collect();
    let dim_names: Vec<String> = kept.iter().map(|&i| ans.dim_names()[i].clone()).collect();

    let mut groups: FxHashMap<Vec<TermId>, Vec<AggValue>> = FxHashMap::default();
    for (dims, value) in ans.cells() {
        let key: Vec<TermId> = kept.iter().map(|&i| dims[i]).collect();
        groups.entry(key).or_default().push(*value);
    }

    let mut cells = Vec::with_capacity(groups.len());
    for (key, values) in groups {
        let merged = merge_aggregates(ans.agg(), &values, dict)?;
        cells.push((key, merged));
    }
    Ok(Cube::from_cells(dim_names, ans.agg(), cells))
}

/// Merges already-aggregated values under a distributive ⊕.
fn merge_aggregates(
    agg: AggFunc,
    values: &[AggValue],
    dict: &Dictionary,
) -> Result<AggValue, CoreError> {
    match agg {
        AggFunc::Count | AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut float_sum = 0.0f64;
            let mut any_float = false;
            for v in values {
                match v {
                    AggValue::Int(i) => int_sum = int_sum.saturating_add(*i),
                    AggValue::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    AggValue::Term(_) => {
                        return Err(CoreError::InvalidOperation(
                            "cannot merge term-valued aggregates with sum".into(),
                        ))
                    }
                }
            }
            Ok(if any_float {
                AggValue::Float(float_sum + int_sum as f64)
            } else {
                AggValue::Int(int_sum)
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let ids: Vec<TermId> = values
                .iter()
                .map(|v| match v {
                    AggValue::Term(id) => Ok(*id),
                    _ => Err(CoreError::InvalidOperation(
                        "min/max cells must hold term values".into(),
                    )),
                })
                .collect::<Result<_, _>>()?;
            Ok(agg.apply(&ids, dict)?)
        }
        AggFunc::Avg | AggFunc::CountDistinct => Err(CoreError::InvalidOperation(format!(
            "{agg} is not distributive; the answer of a drill-out cannot be \
             derived from ans(Q) at all (paper §3.2 case 2)"
        ))),
    }
}

/// Algorithm 2: answers a DRILL-IN from `pres(Q)` plus the AnS instance.
///
/// 1. build `q_aux(dvars, d_new)` per Definition 6;
/// 2. evaluate it on the instance (set semantics);
/// 3. join with `pres(Q)` on the shared distinguished variables;
/// 4. γ — group by `d₁…dₙ, d_new` and re-aggregate.
///
/// `original` is the *pre-transformation* query (whose classifier the
/// auxiliary query is carved from); `new_var` names the promoted variable in
/// that classifier. Returns `(ans(Q_DRILL-IN), pres(Q_DRILL-IN))`.
pub fn drill_in_from_pres(
    original: &AnalyticalQuery,
    pres: &PartialResult,
    new_var: VarId,
    instance: &Graph,
) -> Result<(Cube, PartialResult), CoreError> {
    let c = original.classifier();
    let aux = build_aux_query(c, new_var)?;
    let aux_rel = evaluate(instance, &aux, Semantics::Set)?;

    // The join columns are q_aux's head minus the trailing new dimension.
    // Map each to its pres column: position 0 of the classifier head is the
    // root, position i>0 is dimension i-1.
    let shared = &aux.head()[..aux.head().len() - 1];
    let mut pres_cols: Vec<usize> = Vec::with_capacity(shared.len()); // 0 = root, i+1 = dim i
    for v in shared {
        let pos = c
            .head()
            .iter()
            .position(|h| h == v)
            .expect("aux head vars are classifier-distinguished by construction");
        pres_cols.push(pos);
    }

    let mut dim_names: Vec<String> = pres.dim_names().to_vec();
    dim_names.push(c.vars().name(new_var).to_string());

    // One output row per (pres row, matching new-dimension value).
    fn emit(
        r: &crate::pres::PresRow<'_>,
        new_values: &[TermId],
        rows: &mut Vec<(TermId, Vec<TermId>, u32, TermId)>,
    ) {
        for &nv in new_values {
            let mut dims = Vec::with_capacity(r.dims.len() + 1);
            dims.extend_from_slice(r.dims);
            dims.push(nv);
            rows.push((r.root, dims, r.key, r.value));
        }
    }

    // Build the hash side from the (small) auxiliary answer: key = shared
    // var values, payload = new-dimension values. The overwhelmingly common
    // join key is a single column (the root, or one dimension), which probes
    // a plain `TermId`-keyed map with no per-row key buffer at all.
    let mut rows: Vec<(TermId, Vec<TermId>, u32, TermId)> = Vec::new();
    if let [pos] = pres_cols.as_slice() {
        let pos = *pos;
        let mut table: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for row in aux_rel.rows() {
            table.entry(row[0]).or_default().push(row[1]);
        }
        for r in pres.rows() {
            let k = if pos == 0 { r.root } else { r.dims[pos - 1] };
            if let Some(new_values) = table.get(&k) {
                emit(&r, new_values, &mut rows);
            }
        }
    } else {
        let mut table: FxHashMap<Vec<TermId>, Vec<TermId>> = FxHashMap::default();
        for row in aux_rel.rows() {
            let key: Vec<TermId> = row[..shared.len()].to_vec();
            table.entry(key).or_default().push(row[shared.len()]);
        }
        let mut key: Vec<TermId> = Vec::with_capacity(pres_cols.len());
        for r in pres.rows() {
            key.clear();
            for &pos in &pres_cols {
                key.push(if pos == 0 { r.root } else { r.dims[pos - 1] });
            }
            if let Some(new_values) = table.get(&key) {
                emit(&r, new_values, &mut rows);
            }
        }
    }
    let new_pres = PartialResult::from_rows(dim_names, pres.agg(), rows);
    let cube = new_pres.to_cube(instance.dict())?;
    Ok((cube, new_pres))
}

/// **Extension** — ROLL-UP from `pres(Q)`: coarsens dimension `dim_idx` by
/// following the `via` property in the instance. A composition of the
/// paper's two algorithms: an Algorithm-2-style join brings in the coarse
/// values (the "auxiliary query" is the single mapping triple), then
/// Algorithm 1's δ collapses facts whose distinct fine values map to the
/// same coarse value, and γ re-aggregates.
///
/// Returns `(ans(Q_ROLL-UP), pres(Q_ROLL-UP))`.
pub fn roll_up_from_pres(
    pres: &PartialResult,
    dim_idx: usize,
    via: TermId,
    coarse_dim_name: &str,
    instance: &Graph,
) -> Result<(Cube, PartialResult), CoreError> {
    let n = pres.n_dims();
    if dim_idx >= n {
        return Err(CoreError::InvalidOperation(format!(
            "dimension index {dim_idx} out of range for a {n}-dimensional pres"
        )));
    }
    let mut dim_names = pres.dim_names().to_vec();
    dim_names[dim_idx] = coarse_dim_name.to_string();

    // Join each row's fine value with its coarse parents, then δ on
    // (root, dims, k): two fine values with the same parent must not make
    // the fact count twice in the coarse cell.
    let mut seen: FxHashSet<(TermId, Vec<TermId>, u32)> = FxHashSet::default();
    let mut rows: Vec<(TermId, Vec<TermId>, u32, TermId)> = Vec::new();
    for r in pres.rows() {
        for coarse in instance.objects(r.dims[dim_idx], via) {
            let mut dims = r.dims.to_vec();
            dims[dim_idx] = coarse;
            if seen.insert((r.root, dims.clone(), r.key)) {
                rows.push((r.root, dims, r.key, r.value));
            }
        }
    }
    let new_pres = PartialResult::from_rows(dim_names, pres.agg(), rows);
    let cube = new_pres.to_cube(instance.dict())?;
    Ok((cube, new_pres))
}

// ---------------------------------------------------------------------------
// Cost hooks — one per strategy, next to the algorithm they estimate.
//
// The catalog's planner ([`crate::cost`]) compares these to pick the
// cheapest sound evaluation route, replacing the old fixed preference order
// (dice < drill-out < drill-in < scratch). Estimates are in abstract "row
// touches": what matters is their *relative* order, which the E10 benchmark
// and the soundness property suite exercise. Each mirrors the dominant term
// of its algorithm:
//
// * σ_dice scans `ans(Q)` cells once;
// * Algorithm 1 sorts `pres(Q)` twice (δ, then γ);
// * Algorithm 2 evaluates q_aux on the instance, then joins + sorts;
// * from-scratch evaluates both BGPs on the instance, joins, and sorts.

/// `n log n` with floors, the unit cost of sorting/grouping `n` rows.
fn sort_cost(n: usize) -> f64 {
    let n = n as f64 + 1.0;
    n * n.log2().max(1.0)
}

/// Estimated cost of answering a dice via σ over `ans(Q)` (Proposition 1):
/// one pass over the materialized cells.
pub fn dice_cost(ans_cells: usize) -> f64 {
    1.0 + ans_cells as f64
}

/// Estimated cost of Algorithm 1 over a `pres(Q)` of `pres_rows` rows:
/// π is linear, δ and γ are sort-based.
pub fn drill_out_cost(pres_rows: usize) -> f64 {
    2.0 * sort_cost(pres_rows)
}

/// Estimated cost of Algorithm 2: evaluate the auxiliary query (bounded by
/// `aux_rows` instance rows), hash-join it with `pres(Q)`, and γ the result.
pub fn drill_in_cost(pres_rows: usize, aux_rows: f64) -> f64 {
    aux_rows + pres_rows as f64 + 2.0 * sort_cost(pres_rows)
}

/// Estimated cost of the roll-up composition: one mapping probe per pres
/// row, δ, then γ.
pub fn roll_up_cost(pres_rows: usize) -> f64 {
    pres_rows as f64 + 2.0 * sort_cost(pres_rows)
}

/// Upper bound on the instance rows the drill-in auxiliary query touches:
/// the classifier body's total pattern cardinality (q_aux is carved from a
/// subset of those patterns). Cheap enough to recompute per candidate — it
/// is one CSR offset probe per pattern.
pub fn aux_rows_bound(classifier: &rdfcube_engine::Bgp, instance: &Graph) -> f64 {
    bgp_pattern_rows(classifier, instance)
}

/// Estimated cost of from-scratch evaluation of `eq` on the instance: both
/// BGPs' pattern cardinalities (the rows binding propagation touches), the
/// classifier ⋈ measure join, and the final sort-based γ. The `3×` factor
/// reflects that every matched row flows through binding arenas, the join,
/// and materialization — it keeps the estimate honest against the
/// single-pass rewritings without attempting per-join selectivity modeling.
pub fn scratch_cost(eq: &ExtendedQuery, instance: &Graph) -> f64 {
    let rows = bgp_pattern_rows(eq.query().classifier(), instance)
        + bgp_pattern_rows(eq.query().measure(), instance);
    3.0 * sort_cost(rows.round() as usize)
}

/// Sum of the store's exact per-pattern cardinalities for a BGP — the same
/// `count_matching` statistic the engine's join planner orders patterns by.
fn bgp_pattern_rows(bgp: &rdfcube_engine::Bgp, instance: &Graph) -> f64 {
    bgp.body()
        .iter()
        .map(|p| {
            let shape =
                rdfcube_rdf::TriplePattern::new(p.s.as_const(), p.p.as_const(), p.o.as_const());
            instance.count_matching(shape) as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extended::ValueSelector;
    use crate::olap::{apply, OlapOp};
    use rdfcube_rdf::{parse_turtle, Term};

    fn blog_instance() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user1> <wrotePost> <p1>, <p2> .
             <p1> <hasWordCount> 100 . <p2> <hasWordCount> 120 .
             <user3> <wrotePost> <p3> . <p3> <hasWordCount> 570 .
             <user4> <wrotePost> <p4> . <p4> <hasWordCount> 410 .",
        )
        .unwrap()
    }

    fn avg_words_query(g: &mut Graph) -> ExtendedQuery {
        ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?vwords) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p hasWordCount ?vwords",
                AggFunc::Avg,
                g.dict_mut(),
            )
            .unwrap(),
        )
    }

    /// Example 4 end-to-end: σ_dice over ans(Q) equals ans(Q_DICE).
    #[test]
    fn example_4_dice_rewriting_equals_from_scratch() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let ans_q = eq.answer(&g).unwrap();

        let diced = apply(
            &eq,
            &OlapOp::Dice {
                constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 30 })],
            },
        )
        .unwrap();

        let rewritten = dice_from_ans(&ans_q, diced.sigma(), g.dict());
        let scratch = from_scratch(&diced, &g).unwrap();
        assert!(rewritten.same_cells(&scratch));

        // Paper's value: {⟨28, Madrid, 210⟩}.
        assert_eq!(rewritten.len(), 1);
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        assert_eq!(
            rewritten.get(&[age28, madrid]),
            Some(&AggValue::Float(210.0))
        );
    }

    #[test]
    fn slice_rewriting_equals_from_scratch() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let ans_q = eq.answer(&g).unwrap();
        let sliced = apply(
            &eq,
            &OlapOp::Slice {
                dim: "dcity".into(),
                value: Term::literal("NY"),
            },
        )
        .unwrap();
        let rewritten = dice_from_ans(&ans_q, sliced.sigma(), g.dict());
        assert!(rewritten.same_cells(&from_scratch(&sliced, &g).unwrap()));
        assert_eq!(rewritten.len(), 1);
    }

    #[test]
    fn dice_pres_matches_recomputed_pres() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let diced = apply(
            &eq,
            &OlapOp::Slice {
                dim: "dcity".into(),
                value: Term::literal("Madrid"),
            },
        )
        .unwrap();
        let filtered = dice_pres(&pres, diced.sigma(), g.dict());
        // Same rows as computing pres(Q_DICE) from the instance (keys are
        // assigned identically because the measure is untouched).
        let recomputed = PartialResult::compute(&diced, &g).unwrap();
        assert_eq!(filtered.sorted_rows(), recomputed.sorted_rows());
    }

    /// Example 5's scenario, concrete: x is multi-valued along the removed
    /// dimension. Algorithm 1 agrees with from-scratch; the naive ans-based
    /// method double-counts.
    #[test]
    fn example_5_drill_out_correct_vs_naive() {
        let mut g = parse_turtle(
            "<x> rdf:type <C> ; <d1> <a1> ; <dn> <an>, <bn> ; <val> 5 .
             <y> rdf:type <C> ; <d1> <a1> ; <dn> <bn> ; <val> 7 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?d1, ?dn) :- ?x rdf:type C, ?x d1 ?d1, ?x dn ?dn",
                "m(?x, ?v) :- ?x val ?v",
                AggFunc::Sum,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert_eq!(pres.len(), 3);

        let drilled = apply(
            &eq,
            &OlapOp::DrillOut {
                dims: vec!["dn".into()],
            },
        )
        .unwrap();
        let scratch = from_scratch(&drilled, &g).unwrap();

        // Algorithm 1: ⊕({5, 7}) = 12 in the single remaining cell.
        let (alg1, new_pres) = drill_out_from_pres(&pres, &[1], g.dict()).unwrap();
        assert!(alg1.same_cells(&scratch));
        let a1 = g.dict().iri_id("a1").unwrap();
        assert_eq!(alg1.get(&[a1]), Some(&AggValue::Int(12)));
        assert_eq!(new_pres.len(), 2, "δ collapsed x's duplicated key");

        // Naive ans-based method: ⊕({5, 5+7}) = 17 — x counted twice.
        let ans_q = eq.answer(&g).unwrap();
        let naive = drill_out_from_ans(&ans_q, &[1], g.dict()).unwrap();
        assert_eq!(naive.get(&[a1]), Some(&AggValue::Int(17)));
        assert!(!naive.same_cells(&scratch));
    }

    #[test]
    fn drill_out_without_multivaluedness_naive_happens_to_agree() {
        let mut g = blog_instance(); // single-valued dimensions
        let mut eq = avg_words_query(&mut g);
        // switch to a distributive function for the naive path
        eq = ExtendedQuery::from_query(
            eq.query()
                .with_classifier(eq.query().classifier().clone())
                .unwrap(),
        );
        let count_q = ExtendedQuery::from_query(
            AnalyticalQuery::new(
                eq.query().classifier().clone(),
                eq.query().measure().clone(),
                AggFunc::Count,
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&count_q, &g).unwrap();
        let drilled = apply(
            &count_q,
            &OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .unwrap();
        let scratch = from_scratch(&drilled, &g).unwrap();
        let (alg1, _) = drill_out_from_pres(&pres, &[0], g.dict()).unwrap();
        let naive = drill_out_from_ans(&count_q.answer(&g).unwrap(), &[0], g.dict()).unwrap();
        assert!(alg1.same_cells(&scratch));
        assert!(
            naive.same_cells(&scratch),
            "no multi-valued dims ⇒ naive is lucky"
        );
    }

    #[test]
    fn naive_drill_out_is_sound_for_min_max_even_with_multivalues() {
        let mut g = parse_turtle(
            "<x> rdf:type <C> ; <d1> <a1> ; <dn> <an>, <bn> ; <val> 5 .
             <y> rdf:type <C> ; <d1> <a1> ; <dn> <bn> ; <val> 7 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?d1, ?dn) :- ?x rdf:type C, ?x d1 ?d1, ?x dn ?dn",
                "m(?x, ?v) :- ?x val ?v",
                AggFunc::Max,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let drilled = apply(
            &eq,
            &OlapOp::DrillOut {
                dims: vec!["dn".into()],
            },
        )
        .unwrap();
        let scratch = from_scratch(&drilled, &g).unwrap();
        let naive = drill_out_from_ans(&eq.answer(&g).unwrap(), &[1], g.dict()).unwrap();
        assert!(naive.same_cells(&scratch));
    }

    #[test]
    fn naive_drill_out_refuses_non_distributive_functions() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g); // avg
        let ans_q = eq.answer(&g).unwrap();
        assert!(matches!(
            drill_out_from_ans(&ans_q, &[0], g.dict()),
            Err(CoreError::InvalidOperation(_))
        ));
    }

    /// Example 6 / Figure 3 end-to-end.
    #[test]
    fn example_6_drill_in() {
        let mut g = parse_turtle(
            "<website1> <hasUrl> <URL1> ; <supportsBrowser> <firefox> .
             <website2> <hasUrl> <URL2> ; <supportsBrowser> <chrome> .
             <video1> <postedOn> <website1>, <website2> .
             <video1> rdf:type <Video> ; <viewNum> 7 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?d2) :- ?x rdf:type Video, ?x postedOn ?d1, ?d1 hasUrl ?d2, \
                 ?d1 supportsBrowser ?d3",
                "m(?x, ?v) :- ?x rdf:type Video, ?x viewNum ?v",
                AggFunc::Sum,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert_eq!(pres.len(), 2, "pres(Q) per Figure 3");

        let new_var = eq.query().classifier().vars().id("d3").unwrap();
        let (cube, new_pres) = drill_in_from_pres(eq.query(), &pres, new_var, &g).unwrap();

        // Figure 3: ans(Q_DRILL-IN) = {(URL1, firefox, 7), (URL2, chrome, 7)}.
        let url1 = g.dict().iri_id("URL1").unwrap();
        let url2 = g.dict().iri_id("URL2").unwrap();
        let firefox = g.dict().iri_id("firefox").unwrap();
        let chrome = g.dict().iri_id("chrome").unwrap();
        assert_eq!(cube.len(), 2);
        assert_eq!(cube.get(&[url1, firefox]), Some(&AggValue::Int(7)));
        assert_eq!(cube.get(&[url2, chrome]), Some(&AggValue::Int(7)));
        assert_eq!(new_pres.n_dims(), 2);

        // Equals the from-scratch answer of the transformed query.
        let drilled = apply(&eq, &OlapOp::DrillIn { var: "d3".into() }).unwrap();
        let scratch = from_scratch(&drilled, &g).unwrap();
        assert!(cube.same_cells(&scratch));
    }

    #[test]
    fn drill_in_when_aux_is_disconnected_from_dims() {
        // The new dimension connects through ?x only; the join key is just
        // the root.
        let mut g = parse_turtle(
            "<u1> rdf:type <C> ; <d> <d1> ; <tag> <t1>, <t2> ; <val> 3 .
             <u2> rdf:type <C> ; <d> <d1> ; <tag> <t1> ; <val> 4 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?d) :- ?x rdf:type C, ?x d ?d, ?x tag ?t",
                "m(?x, ?v) :- ?x val ?v",
                AggFunc::Sum,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let t = eq.query().classifier().vars().id("t").unwrap();
        let (cube, _) = drill_in_from_pres(eq.query(), &pres, t, &g).unwrap();
        let drilled = apply(&eq, &OlapOp::DrillIn { var: "t".into() }).unwrap();
        assert!(cube.same_cells(&from_scratch(&drilled, &g).unwrap()));
        // t1 cell sums both users; t2 only u1.
        let d1 = g.dict().iri_id("d1").unwrap();
        let t1 = g.dict().iri_id("t1").unwrap();
        let t2 = g.dict().iri_id("t2").unwrap();
        assert_eq!(cube.get(&[d1, t1]), Some(&AggValue::Int(7)));
        assert_eq!(cube.get(&[d1, t2]), Some(&AggValue::Int(3)));
    }

    /// Roll-up: cities coarsen to countries; x's two cities are in the same
    /// country, so its measure must count once there, not twice; y's city
    /// has no country and drops out.
    #[test]
    fn roll_up_cities_to_countries() {
        use crate::olap::apply_roll_up_encoded;
        let mut g = parse_turtle(
            "<madrid> <locatedIn> <spain> . <barcelona> <locatedIn> <spain> .
             <ny> <locatedIn> <usa> .
             <x> rdf:type <C> ; <city> <madrid>, <barcelona> ; <val> 5 .
             <y> rdf:type <C> ; <city> <atlantis> ; <val> 100 .
             <z> rdf:type <C> ; <city> <ny> ; <val> 7 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?dcity) :- ?x rdf:type C, ?x city ?dcity",
                "m(?x, ?v) :- ?x val ?v",
                AggFunc::Sum,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let via = g.dict().iri_id("locatedIn").unwrap();
        let (cube, new_pres) = roll_up_from_pres(&pres, 0, via, "dcountry", &g).unwrap();

        let spain = g.dict().iri_id("spain").unwrap();
        let usa = g.dict().iri_id("usa").unwrap();
        assert_eq!(cube.len(), 2);
        assert_eq!(
            cube.get(&[spain]),
            Some(&AggValue::Int(5)),
            "x counted once in Spain"
        );
        assert_eq!(cube.get(&[usa]), Some(&AggValue::Int(7)));
        assert_eq!(cube.dim_names(), &["dcountry".to_string()]);

        // Matches the from-scratch evaluation of Q_ROLL-UP.
        let rolled = apply_roll_up_encoded(&eq, "dcity", via).unwrap();
        let scratch = from_scratch(&rolled, &g).unwrap();
        // Dim names differ (generated vs given); compare cells only.
        assert_eq!(cube.cells(), scratch.cells());
        assert_eq!(new_pres.len(), 2);
    }

    #[test]
    fn roll_up_with_multi_parent_mapping_fans_out() {
        use crate::olap::apply_roll_up_encoded;
        // One city in two regions: the fact lands in both coarse cells.
        let mut g = parse_turtle(
            "<basel> <inRegion> <ch> . <basel> <inRegion> <eu> .
             <x> rdf:type <C> ; <city> <basel> ; <val> 3 .",
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?d) :- ?x rdf:type C, ?x city ?d",
                "m(?x, ?v) :- ?x val ?v",
                AggFunc::Sum,
                g.dict_mut(),
            )
            .unwrap(),
        );
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let via = g.dict().iri_id("inRegion").unwrap();
        let (cube, _) = roll_up_from_pres(&pres, 0, via, "dregion", &g).unwrap();
        assert_eq!(cube.len(), 2);
        let rolled = apply_roll_up_encoded(&eq, "d", via).unwrap();
        assert_eq!(cube.cells(), from_scratch(&rolled, &g).unwrap().cells());
    }

    #[test]
    fn roll_up_rejects_restricted_dimension() {
        use crate::olap::apply_roll_up_encoded;
        let mut g = parse_turtle("<x> rdf:type <C> ; <city> <a> ; <val> 1 .").unwrap();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type C, ?x city ?d",
            "m(?x, ?v) :- ?x val ?v",
            AggFunc::Sum,
            g.dict_mut(),
        )
        .unwrap();
        let mut sigma = crate::extended::Sigma::all(1);
        sigma.set(0, ValueSelector::one(Term::iri("a")));
        let eq = ExtendedQuery::with_sigma(q, sigma).unwrap();
        let via = g.dict_mut().encode_iri("locatedIn");
        assert!(matches!(
            apply_roll_up_encoded(&eq, "d", via),
            Err(CoreError::InvalidOperation(_))
        ));
    }

    #[test]
    fn drill_out_index_out_of_range() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert!(drill_out_from_pres(&pres, &[7], g.dict()).is_err());
    }

    #[test]
    fn cost_hooks_are_monotone_and_order_sanely() {
        // More input rows never gets cheaper.
        assert!(dice_cost(100) > dice_cost(10));
        assert!(drill_out_cost(100) > drill_out_cost(10));
        assert!(drill_in_cost(100, 50.0) > drill_in_cost(10, 50.0));
        assert!(roll_up_cost(100) > roll_up_cost(10));
        // σ over ans is the cheapest route for equal sizes; drill-in pays
        // for its auxiliary query on top of Algorithm 1's sorts.
        assert!(dice_cost(1000) < drill_out_cost(1000));
        assert!(drill_out_cost(1000) < drill_in_cost(1000, 500.0));

        // On a real instance, every rewriting must be estimated cheaper
        // than re-evaluating from scratch when the materialization is no
        // bigger than the data it came from.
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let pres = PartialResult::compute(&eq, &g).unwrap();
        let scratch = scratch_cost(&eq, &g);
        assert!(dice_cost(pres.len()) < scratch);
        assert!(drill_out_cost(pres.len()) < scratch);
        let aux = aux_rows_bound(eq.query().classifier(), &g);
        assert!(drill_in_cost(pres.len(), aux) < scratch);
    }

    #[test]
    fn from_scratch_with_pres_is_consistent() {
        let mut g = blog_instance();
        let eq = avg_words_query(&mut g);
        let (cube, pres) = from_scratch_with_pres(&eq, &g).unwrap();
        assert!(cube.same_cells(&eq.answer(&g).unwrap()));
        assert!(cube.same_cells(&pres.to_cube(g.dict()).unwrap()));
    }
}
