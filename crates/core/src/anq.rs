//! Analytical queries (AnQ) — the RDF counterpart of relational cubes.
//!
//! §2, Example 1: an AnQ is a triple `⟨c(x, d₁…dₙ), m(x, v), ⊕⟩` of
//! * a **classifier** query — a rooted BGP whose head is the fact variable
//!   `x` followed by the aggregation dimensions `d₁…dₙ` (set semantics),
//! * a **measure** query — a rooted BGP `m(x, v)` returning the values to
//!   aggregate (bag semantics, so repeated values stay distinct), and
//! * an **aggregation function** ⊕.
//!
//! Both queries must be rooted in the same variable position (their first
//! head variable) and, when checked against an analytical schema, must be
//! homomorphic to it (only analysis classes and properties appear).

use crate::error::CoreError;
use crate::schema::AnalyticalSchema;
use rdfcube_engine::{parse_query, AggFunc, Bgp, PatternTerm, VarId};
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{vocab, Dictionary, Term};

/// An analytical query `⟨c, m, ⊕⟩` over an analytical-schema instance.
#[derive(Debug, Clone)]
pub struct AnalyticalQuery {
    classifier: Bgp,
    measure: Bgp,
    agg: AggFunc,
}

impl AnalyticalQuery {
    /// Builds an AnQ from already-constructed classifier and measure
    /// queries, validating the structural requirements of Definition 1.
    pub fn new(classifier: Bgp, measure: Bgp, agg: AggFunc) -> Result<Self, CoreError> {
        classifier.validate_rooted()?;
        measure.validate_rooted()?;
        if classifier.head().is_empty() {
            return Err(CoreError::SchemaViolation(
                "classifier head must at least contain the fact variable".into(),
            ));
        }
        if measure.head().len() != 2 {
            return Err(CoreError::SchemaViolation(format!(
                "measure query must have head (x, v), found arity {}",
                measure.head().len()
            )));
        }
        // Dimensions must be distinct variables: a repeated head variable
        // would make dimension names ambiguous in every OLAP operation.
        let mut seen = FxHashSet::default();
        for &h in classifier.head() {
            if !seen.insert(h) {
                return Err(CoreError::DuplicateDimension(
                    classifier.vars().name(h).to_string(),
                ));
            }
        }
        Ok(AnalyticalQuery {
            classifier,
            measure,
            agg,
        })
    }

    /// Parses an AnQ from the paper's notation, interning constants into
    /// `dict` (the dictionary of the instance it will run on).
    ///
    /// ```
    /// use rdfcube_core::AnalyticalQuery;
    /// use rdfcube_engine::AggFunc;
    /// use rdfcube_rdf::Dictionary;
    ///
    /// let mut dict = Dictionary::new();
    /// let q = AnalyticalQuery::parse(
    ///     "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
    ///     "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
    ///     AggFunc::Count,
    ///     &mut dict,
    /// ).unwrap();
    /// assert_eq!(q.dim_names(), vec!["dage", "dcity"]);
    /// ```
    pub fn parse(
        classifier: &str,
        measure: &str,
        agg: AggFunc,
        dict: &mut Dictionary,
    ) -> Result<Self, CoreError> {
        let c = parse_query(classifier, dict)?;
        let m = parse_query(measure, dict)?;
        Self::new(c, m, agg)
    }

    /// The classifier query.
    pub fn classifier(&self) -> &Bgp {
        &self.classifier
    }

    /// The measure query.
    pub fn measure(&self) -> &Bgp {
        &self.measure
    }

    /// The aggregation function ⊕.
    pub fn agg(&self) -> AggFunc {
        self.agg
    }

    /// The fact (root) variable — first head variable of the classifier.
    pub fn root(&self) -> VarId {
        self.classifier.head()[0]
    }

    /// The dimension variables `d₁…dₙ` (classifier head minus the root).
    pub fn dim_vars(&self) -> &[VarId] {
        &self.classifier.head()[1..]
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.classifier.head().len() - 1
    }

    /// The dimension names, in head order.
    pub fn dim_names(&self) -> Vec<&str> {
        self.dim_vars()
            .iter()
            .map(|&v| self.classifier.vars().name(v))
            .collect()
    }

    /// Index of the dimension named `name`.
    pub fn dim_index(&self, name: &str) -> Result<usize, CoreError> {
        self.dim_names()
            .iter()
            .position(|&n| n == name)
            .ok_or_else(|| CoreError::UnknownDimension(name.to_string()))
    }

    /// Replaces the classifier (used by the OLAP rewritings; revalidates).
    pub fn with_classifier(&self, classifier: Bgp) -> Result<Self, CoreError> {
        Self::new(classifier, self.measure.clone(), self.agg)
    }

    /// Checks the query is homomorphic to `schema`: every body predicate is
    /// a declared analysis property (or `rdf:type` of a declared class), and
    /// classifier and measure are rooted in the same analysis class when
    /// both declare one.
    pub fn validate_against(
        &self,
        schema: &AnalyticalSchema,
        dict: &Dictionary,
    ) -> Result<(), CoreError> {
        let c_class = check_homomorphic(&self.classifier, self.root(), schema, dict)?;
        let m_root = self.measure.head()[0];
        let m_class = check_homomorphic(&self.measure, m_root, schema, dict)?;
        if let (Some(c), Some(m)) = (&c_class, &m_class) {
            if c != m {
                return Err(CoreError::SchemaViolation(format!(
                    "classifier is rooted in class '{c}' but measure in '{m}'"
                )));
            }
        }
        Ok(())
    }
}

/// Verifies every predicate of `bgp` against the schema; returns the
/// analysis class constraining `root`, if any.
fn check_homomorphic(
    bgp: &Bgp,
    root: VarId,
    schema: &AnalyticalSchema,
    dict: &Dictionary,
) -> Result<Option<String>, CoreError> {
    let mut root_class = None;
    for pattern in bgp.body() {
        let PatternTerm::Const(pred) = pattern.p else {
            return Err(CoreError::SchemaViolation(format!(
                "query '{}' uses a variable predicate; analytical queries must \
                 use analysis properties",
                bgp.name()
            )));
        };
        let pred_term = dict.get(pred).ok_or_else(|| {
            CoreError::SchemaViolation("predicate term missing from dictionary".into())
        })?;
        let Some(pred_iri) = pred_term.as_iri() else {
            return Err(CoreError::SchemaViolation(format!(
                "predicate {pred_term} is not an IRI"
            )));
        };
        if pred_iri == vocab::RDF_TYPE {
            let PatternTerm::Const(class) = pattern.o else {
                return Err(CoreError::SchemaViolation(format!(
                    "query '{}' types a variable with a non-constant class",
                    bgp.name()
                )));
            };
            let class_term = dict.get(class).cloned().unwrap_or_else(|| Term::iri("?"));
            let Some(class_iri) = class_term.as_iri() else {
                return Err(CoreError::SchemaViolation(format!(
                    "class {class_term} is not an IRI"
                )));
            };
            if !schema.has_class(class_iri) {
                return Err(CoreError::SchemaViolation(format!(
                    "'{class_iri}' is not an analysis class of schema '{}'",
                    schema.name()
                )));
            }
            if pattern.s == PatternTerm::Var(root) {
                root_class = Some(class_iri.to_string());
            }
        } else if !schema.has_property(pred_iri) {
            return Err(CoreError::SchemaViolation(format!(
                "'{pred_iri}' is not an analysis property of schema '{}'",
                schema.name()
            )));
        }
    }
    Ok(root_class)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_query(dict: &mut Dictionary) -> AnalyticalQuery {
        AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
            dict,
        )
        .unwrap()
    }

    fn blog_schema() -> AnalyticalSchema {
        let mut s = AnalyticalSchema::new("blog");
        s.add_node("Blogger", "n(?x) :- ?x rdf:type Person")
            .add_node("Age", "n(?a) :- ?x age ?a")
            .add_node("City", "n(?c) :- ?x city ?c")
            .add_node("BlogPost", "n(?p) :- ?x posted ?p")
            .add_node("Site", "n(?s) :- ?p on ?s")
            .add_edge("hasAge", "Blogger", "Age", "e(?x, ?a) :- ?x age ?a")
            .add_edge("livesIn", "Blogger", "City", "e(?x, ?c) :- ?x city ?c")
            .add_edge(
                "wrotePost",
                "Blogger",
                "BlogPost",
                "e(?x, ?p) :- ?x posted ?p",
            )
            .add_edge("postedOn", "BlogPost", "Site", "e(?p, ?s) :- ?p on ?s");
        s
    }

    #[test]
    fn example_1_parses_with_two_dimensions() {
        let mut dict = Dictionary::new();
        let q = paper_query(&mut dict);
        assert_eq!(q.n_dims(), 2);
        assert_eq!(q.dim_names(), vec!["dage", "dcity"]);
        assert_eq!(q.dim_index("dcity").unwrap(), 1);
        assert!(q.dim_index("nope").is_err());
        assert_eq!(q.agg(), AggFunc::Count);
    }

    #[test]
    fn measure_arity_must_be_two() {
        let mut dict = Dictionary::new();
        let err = AnalyticalQuery::parse(
            "c(?x) :- ?x rdf:type Blogger",
            "m(?x, ?v, ?w) :- ?x p ?v, ?x q ?w",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn non_rooted_classifier_rejected() {
        let mut dict = Dictionary::new();
        let err = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type Blogger, ?y hasAge ?d",
            "m(?x, ?v) :- ?x score ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not rooted"));
    }

    #[test]
    fn duplicate_dimension_rejected() {
        let mut dict = Dictionary::new();
        let err = AnalyticalQuery::parse(
            "c(?x, ?d, ?d) :- ?x hasAge ?d",
            "m(?x, ?v) :- ?x score ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateDimension(_)));
    }

    #[test]
    fn homomorphism_check_accepts_paper_query() {
        let mut dict = Dictionary::new();
        let q = paper_query(&mut dict);
        q.validate_against(&blog_schema(), &dict).unwrap();
    }

    #[test]
    fn homomorphism_check_rejects_foreign_property() {
        let mut dict = Dictionary::new();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type Blogger, ?x shoeSize ?d",
            "m(?x, ?v) :- ?x hasAge ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let err = q.validate_against(&blog_schema(), &dict).unwrap_err();
        assert!(err.to_string().contains("shoeSize"));
    }

    #[test]
    fn homomorphism_check_rejects_foreign_class() {
        let mut dict = Dictionary::new();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type Martian, ?x hasAge ?d",
            "m(?x, ?v) :- ?x hasAge ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        assert!(q.validate_against(&blog_schema(), &dict).is_err());
    }

    #[test]
    fn mismatched_root_classes_rejected() {
        let mut dict = Dictionary::new();
        let q = AnalyticalQuery::parse(
            "c(?x, ?d) :- ?x rdf:type Blogger, ?x hasAge ?d",
            "m(?p, ?v) :- ?p rdf:type BlogPost, ?p postedOn ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let err = q.validate_against(&blog_schema(), &dict).unwrap_err();
        assert!(err.to_string().contains("rooted in class"));
    }

    #[test]
    fn with_classifier_revalidates() {
        let mut dict = Dictionary::new();
        let q = paper_query(&mut dict);
        let mut c2 = q.classifier().clone();
        let dage = c2.vars().id("dage").unwrap();
        let x = c2.vars().id("x").unwrap();
        c2.set_head(vec![x, dage]);
        let q2 = q.with_classifier(c2).unwrap();
        assert_eq!(q2.dim_names(), vec!["dage"]);
    }
}
