//! Error type for the analytics layer.

use rdfcube_engine::EngineError;
use std::fmt;

/// Errors raised while defining schemas, posing analytical queries, or
/// applying OLAP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying query-engine error (parse, validation, aggregation…).
    Engine(EngineError),
    /// A dimension name does not exist on the cube being transformed.
    UnknownDimension(String),
    /// A variable name does not exist in the classifier being transformed.
    UnknownVariable(String),
    /// A dimension would appear twice in a classifier head.
    DuplicateDimension(String),
    /// The requested OLAP operation is not applicable
    /// (e.g. drilling in on a distinguished variable).
    InvalidOperation(String),
    /// An analytical query is not homomorphic to the analytical schema, or
    /// the schema itself is ill-formed.
    SchemaViolation(String),
    /// A cube handle does not name an entry of this session's catalog
    /// (e.g. a handle from a different session).
    UnknownHandle(usize),
    /// A cube's payload is not materialized right now (evicted under the
    /// session budget, or stale after inserts) and the caller asked for
    /// it without allowing a recompute.
    CubeNotResident(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::UnknownDimension(d) => write!(f, "unknown dimension '{d}'"),
            CoreError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            CoreError::DuplicateDimension(d) => write!(f, "duplicate dimension '{d}'"),
            CoreError::InvalidOperation(m) => write!(f, "invalid OLAP operation: {m}"),
            CoreError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            CoreError::UnknownHandle(h) => {
                write!(f, "cube handle #{h} does not belong to this session")
            }
            CoreError::CubeNotResident(h) => write!(
                f,
                "cube #{h} has no resident payload (evicted or stale); touch it to recompute"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(EngineError::Validation("boom".into()));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        assert!(CoreError::UnknownDimension("dage".into())
            .source()
            .is_none());
        assert!(CoreError::UnknownDimension("dage".into())
            .to_string()
            .contains("dage"));
    }
}
