//! Auxiliary DRILL-IN queries (Definition 6).
//!
//! Drilling in adds a dimension whose values are *not* present in the
//! materialized results of the original query, so Algorithm 2 must fetch the
//! missing column from the AnS instance — but only the part of the
//! classifier that actually constrains the new dimension needs re-evaluating.
//! Definition 6 carves that part out: `body_aux` is the connected closure of
//! the classifier triples containing the new dimension, where connectivity
//! is *via non-distinguished (existential) variables only* — any triple
//! linked through a distinguished variable can be reached from `pres(Q)` by
//! the join instead.

use crate::error::CoreError;
use rdfcube_engine::{Bgp, VarId};
use rdfcube_rdf::fx::FxHashSet;

/// Builds `q_aux(dvars, d_{n+1})` for classifier `c` and the new dimension
/// variable `new_dim` (which must be existential in `c`).
///
/// The head is the classifier-distinguished variables that occur in
/// `body_aux` (in classifier-head order), followed by `new_dim`.
pub fn build_aux_query(c: &Bgp, new_dim: VarId) -> Result<Bgp, CoreError> {
    let head_vars: FxHashSet<VarId> = c.head().iter().copied().collect();
    if head_vars.contains(&new_dim) {
        return Err(CoreError::InvalidOperation(format!(
            "?{} is distinguished in the classifier; DRILL-IN needs an existential variable",
            c.vars().name(new_dim)
        )));
    }
    if !c.body().iter().any(|p| p.mentions(new_dim)) {
        return Err(CoreError::UnknownVariable(format!(
            "?{} does not occur in the classifier body",
            c.vars().name(new_dim)
        )));
    }

    // Fixpoint: start from the triples containing new_dim; repeatedly add
    // classifier triples sharing an existential variable with the current
    // body_aux.
    let n = c.body().len();
    let mut in_aux = vec![false; n];
    let mut frontier_vars: FxHashSet<VarId> = FxHashSet::default();
    frontier_vars.insert(new_dim);
    let mut changed = true;
    while changed {
        changed = false;
        for (i, pattern) in c.body().iter().enumerate() {
            if in_aux[i] {
                continue;
            }
            if pattern.vars().any(|v| frontier_vars.contains(&v)) {
                in_aux[i] = true;
                changed = true;
                for v in pattern.vars() {
                    if !head_vars.contains(&v) {
                        frontier_vars.insert(v);
                    }
                }
            }
        }
    }

    // Head: distinguished variables of c present in body_aux, then new_dim.
    let mut aux_body_vars: FxHashSet<VarId> = FxHashSet::default();
    for (i, pattern) in c.body().iter().enumerate() {
        if in_aux[i] {
            for v in pattern.vars() {
                aux_body_vars.insert(v);
            }
        }
    }
    let mut head: Vec<VarId> = c
        .head()
        .iter()
        .copied()
        .filter(|v| aux_body_vars.contains(v))
        .collect();
    head.push(new_dim);

    let mut aux = c.clone();
    aux.set_name(format!("{}_aux", c.name()));
    aux.set_head(head);
    aux.retain_body(|i, _| in_aux[i]);
    aux.validate()?;
    Ok(aux)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_engine::parse_query;
    use rdfcube_rdf::Dictionary;

    /// Example 6's classifier (with the paper's `uploadedOn` typo normalized
    /// to `postedOn`, matching its own instance and q_aux).
    fn example_6_classifier(dict: &mut Dictionary) -> Bgp {
        parse_query(
            "c(?x, ?d2) :- ?x rdf:type Video, ?x postedOn ?d1, ?d1 hasUrl ?d2, \
             ?d1 supportsBrowser ?d3",
            dict,
        )
        .unwrap()
    }

    #[test]
    fn example_6_aux_query_matches_paper() {
        let mut dict = Dictionary::new();
        let c = example_6_classifier(&mut dict);
        let d3 = c.vars().id("d3").unwrap();
        let aux = build_aux_query(&c, d3).unwrap();

        // Paper: q_aux(x, d2, d3) :- x postedOn d1, d1 hasUrl d2,
        //                            d1 supportsBrowser d3.
        let head_names: Vec<&str> = aux.head().iter().map(|&v| aux.vars().name(v)).collect();
        assert_eq!(head_names, vec!["x", "d2", "d3"]);
        assert_eq!(aux.body().len(), 3, "rdf:type Video must NOT be included");
        let text = aux.to_text(&dict);
        assert!(!text.contains("type"), "got: {text}");
        assert!(text.contains("postedOn"));
        assert!(text.contains("hasUrl"));
        assert!(text.contains("supportsBrowser"));
    }

    #[test]
    fn closure_stops_at_distinguished_variables() {
        // d_new connects to the rest of the query only through the
        // distinguished ?x, so q_aux contains exactly one triple.
        let mut dict = Dictionary::new();
        let c = parse_query(
            "c(?x, ?d1) :- ?x rdf:type Blogger, ?x hasAge ?d1, ?x livesIn ?dnew",
            &mut dict,
        )
        .unwrap();
        let dnew = c.vars().id("dnew").unwrap();
        let aux = build_aux_query(&c, dnew).unwrap();
        assert_eq!(aux.body().len(), 1);
        let head_names: Vec<&str> = aux.head().iter().map(|&v| aux.vars().name(v)).collect();
        assert_eq!(head_names, vec!["x", "dnew"]);
    }

    #[test]
    fn closure_chases_chains_of_existentials() {
        // dnew ← e2 ← e1 ← x: all three chain triples belong to body_aux.
        let mut dict = Dictionary::new();
        let c = parse_query(
            "c(?x, ?d1) :- ?x hasAge ?d1, ?x p ?e1, ?e1 q ?e2, ?e2 r ?dnew",
            &mut dict,
        )
        .unwrap();
        let dnew = c.vars().id("dnew").unwrap();
        let aux = build_aux_query(&c, dnew).unwrap();
        assert_eq!(aux.body().len(), 3);
        // hasAge connects via distinguished x/d1 only → excluded.
        assert!(!aux.to_text(&dict).contains("hasAge"));
    }

    #[test]
    fn distinguished_variable_is_rejected() {
        let mut dict = Dictionary::new();
        let c = example_6_classifier(&mut dict);
        let d2 = c.vars().id("d2").unwrap();
        assert!(matches!(
            build_aux_query(&c, d2),
            Err(CoreError::InvalidOperation(_))
        ));
    }

    #[test]
    fn absent_variable_is_rejected() {
        let mut dict = Dictionary::new();
        let mut c = example_6_classifier(&mut dict);
        let ghost = c.var("ghost");
        assert!(matches!(
            build_aux_query(&c, ghost),
            Err(CoreError::UnknownVariable(_))
        ));
    }

    #[test]
    fn aux_query_evaluates_on_figure_3_instance() {
        use rdfcube_engine::{evaluate, Semantics};
        let mut g = rdfcube_rdf::parse_turtle(
            "<website1> <hasUrl> <URL1> ; <supportsBrowser> <firefox> .
             <website2> <hasUrl> <URL2> ; <supportsBrowser> <chrome> .
             <video1> <postedOn> <website1>, <website2> .
             <video1> rdf:type <Video> ; <viewNum> 7 .",
        )
        .unwrap();
        // Parse the classifier against the instance dictionary.
        let c = parse_query(
            "c(?x, ?d2) :- ?x rdf:type Video, ?x postedOn ?d1, ?d1 hasUrl ?d2, \
             ?d1 supportsBrowser ?d3",
            g.dict_mut(),
        )
        .unwrap();
        let d3 = c.vars().id("d3").unwrap();
        let aux = build_aux_query(&c, d3).unwrap();
        let rel = evaluate(&g, &aux, Semantics::Set).unwrap();
        // Paper's table: (video1, URL1, firefox), (video1, URL2, chrome).
        assert_eq!(rel.len(), 2);
        let url1 = g.dict().iri_id("URL1").unwrap();
        let firefox = g.dict().iri_id("firefox").unwrap();
        assert!(rel.rows().any(|r| r[1] == url1 && r[2] == firefox));
    }
}
