//! Extended analytical queries (Definition 2): Σ dimension restrictions.
//!
//! An extended AnQ pairs an [`AnalyticalQuery`] with a total function Σ
//! mapping each dimension to its admissible values: the full domain, or a
//! restricted subset. The paper defines the extended classifier as a union
//! of classifiers over the cross product of Σ values; we implement the
//! equivalent (and far cheaper) formulation the paper itself uses in
//! Example 4 — a selection over the classifier answer.
//!
//! [`ValueSelector`] covers the shapes the paper's operations produce:
//! `All` (unrestricted, Σ(dᵢ) = Vᵢ), `OneOf` (SLICE binds a single value,
//! DICE a set), and `IntRange` (Example 4 dices on `20 ≤ d_age ≤ 30`).

use crate::anq::AnalyticalQuery;
use crate::answer::{answer_with_classifier_relation, Cube};
use crate::error::CoreError;
use rdfcube_engine::{evaluate, evaluate_filtered, FilterExpr, Relation, Semantics, VarId};
use rdfcube_rdf::fx::FxHashSet;
use rdfcube_rdf::{Dictionary, Graph, Term, TermId};

/// The restriction Σ places on one dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSelector {
    /// The full domain Vᵢ — no restriction.
    All,
    /// A finite set of admissible values (SLICE: singleton; DICE: any set).
    OneOf(Vec<Term>),
    /// An inclusive numeric range, e.g. Example 4's `20 ≤ d_age ≤ 30`.
    IntRange {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

impl ValueSelector {
    /// A singleton selector (the shape SLICE produces).
    pub fn one(value: Term) -> Self {
        ValueSelector::OneOf(vec![value])
    }

    /// True if this selector admits every value.
    pub fn is_all(&self) -> bool {
        matches!(self, ValueSelector::All)
    }

    /// Compiles the selector against a dictionary for fast row filtering.
    pub fn compile(&self, dict: &Dictionary) -> CompiledSelector {
        match self {
            ValueSelector::All => CompiledSelector::All,
            ValueSelector::OneOf(terms) => {
                // Terms not present in the dictionary cannot match any data
                // row, so they simply drop out of the compiled set.
                let ids: FxHashSet<TermId> = terms.iter().filter_map(|t| dict.id(t)).collect();
                CompiledSelector::Ids(ids)
            }
            ValueSelector::IntRange { lo, hi } => CompiledSelector::IntRange { lo: *lo, hi: *hi },
        }
    }

    /// Conservative refinement check: true only if every value admitted by
    /// `self` is provably admitted by `older`. Used to decide whether a
    /// dice on an already-diced cube can be answered from its materialized
    /// answer (Proposition 1 requires the new Σ to select within the old).
    pub fn refines(&self, older: &ValueSelector) -> bool {
        match (self, older) {
            (_, ValueSelector::All) => true,
            (ValueSelector::All, _) => false,
            (ValueSelector::OneOf(new), ValueSelector::OneOf(old)) => {
                new.iter().all(|t| old.contains(t))
            }
            (ValueSelector::OneOf(new), ValueSelector::IntRange { lo, hi }) => new
                .iter()
                .all(|t| t.as_i64().is_some_and(|v| *lo <= v && v <= *hi)),
            (
                ValueSelector::IntRange { lo: nlo, hi: nhi },
                ValueSelector::IntRange { lo: olo, hi: ohi },
            ) => olo <= nlo && nhi <= ohi,
            // A range refines a finite set only in degenerate cases; treat
            // as non-refining (falls back to from-scratch evaluation).
            (ValueSelector::IntRange { .. }, ValueSelector::OneOf(_)) => false,
        }
    }
}

/// A [`ValueSelector`] compiled against a dictionary.
#[derive(Debug, Clone)]
pub enum CompiledSelector {
    /// Admits everything.
    All,
    /// Admits exactly these term ids.
    Ids(FxHashSet<TermId>),
    /// Admits numeric literals within the inclusive range.
    IntRange {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

impl CompiledSelector {
    /// True if the dimension value `id` is admitted.
    pub fn admits(&self, id: TermId, dict: &Dictionary) -> bool {
        match self {
            CompiledSelector::All => true,
            CompiledSelector::Ids(ids) => ids.contains(&id),
            CompiledSelector::IntRange { lo, hi } => dict
                .get(id)
                .and_then(Term::as_i64)
                .is_some_and(|v| *lo <= v && v <= *hi),
        }
    }
}

/// Σ — a total map from the query's dimensions to value restrictions,
/// stored positionally (index i restricts dimension dᵢ).
#[derive(Debug, Clone, PartialEq)]
pub struct Sigma {
    selectors: Vec<ValueSelector>,
}

impl Sigma {
    /// The unrestricted Σ over `n_dims` dimensions (every AnQ corresponds to
    /// an extended AnQ with Σ = {(dᵢ, Vᵢ)}).
    pub fn all(n_dims: usize) -> Self {
        Sigma {
            selectors: vec![ValueSelector::All; n_dims],
        }
    }

    /// Builds Σ from explicit per-dimension selectors.
    pub fn from_selectors(selectors: Vec<ValueSelector>) -> Self {
        Sigma { selectors }
    }

    /// Number of dimensions covered.
    pub fn len(&self) -> usize {
        self.selectors.len()
    }

    /// True if Σ covers no dimensions.
    pub fn is_empty(&self) -> bool {
        self.selectors.is_empty()
    }

    /// The selector for dimension `i`.
    pub fn selector(&self, i: usize) -> &ValueSelector {
        &self.selectors[i]
    }

    /// All selectors, positionally.
    pub fn selectors(&self) -> &[ValueSelector] {
        &self.selectors
    }

    /// Replaces the selector of dimension `i` (the Σ′ construction of the
    /// SLICE and DICE definitions).
    pub fn set(&mut self, i: usize, selector: ValueSelector) {
        self.selectors[i] = selector;
    }

    /// True if no dimension is restricted.
    pub fn is_unrestricted(&self) -> bool {
        self.selectors.iter().all(ValueSelector::is_all)
    }

    /// Σ with the dimensions at `removed` (sorted ascending) dropped — the
    /// DRILL-OUT construction.
    pub fn without_dims(&self, removed: &[usize]) -> Sigma {
        let selectors = self
            .selectors
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, s)| s.clone())
            .collect();
        Sigma { selectors }
    }

    /// Σ extended with an unrestricted trailing dimension — the DRILL-IN
    /// construction (Σ′ = Σ ∪ {(dₙ₊₁, Vₙ₊₁)}).
    pub fn with_new_dim(&self) -> Sigma {
        let mut selectors = self.selectors.clone();
        selectors.push(ValueSelector::All);
        Sigma { selectors }
    }

    /// Compiles every selector against `dict`.
    pub fn compile(&self, dict: &Dictionary) -> CompiledSigma {
        CompiledSigma {
            selectors: self.selectors.iter().map(|s| s.compile(dict)).collect(),
        }
    }

    /// True if `self` provably admits a subset of what `older` admits,
    /// dimension by dimension.
    pub fn refines(&self, older: &Sigma) -> bool {
        self.selectors.len() == older.selectors.len()
            && self
                .selectors
                .iter()
                .zip(&older.selectors)
                .all(|(n, o)| n.refines(o))
    }

    /// Compiles Σ to engine-level filters over the dimension variables, for
    /// push-down into classifier evaluation. `dim_vars[i]` must be the
    /// variable of dimension `i`.
    pub fn to_filters(&self, dim_vars: &[VarId], dict: &Dictionary) -> Vec<FilterExpr> {
        debug_assert_eq!(dim_vars.len(), self.selectors.len());
        self.selectors
            .iter()
            .zip(dim_vars)
            .filter_map(|(sel, &var)| match sel {
                ValueSelector::All => None,
                ValueSelector::OneOf(terms) => Some(FilterExpr::OneOf {
                    var,
                    set: terms.iter().filter_map(|t| dict.id(t)).collect(),
                }),
                ValueSelector::IntRange { lo, hi } => Some(FilterExpr::NumericBetween {
                    var,
                    lo: *lo,
                    hi: *hi,
                }),
            })
            .collect()
    }
}

/// A compiled Σ, ready to filter rows of dimension values.
#[derive(Debug, Clone)]
pub struct CompiledSigma {
    selectors: Vec<CompiledSelector>,
}

impl CompiledSigma {
    /// True if the dimension vector `dims` satisfies every selector.
    pub fn admits(&self, dims: &[TermId], dict: &Dictionary) -> bool {
        debug_assert_eq!(dims.len(), self.selectors.len());
        self.selectors
            .iter()
            .zip(dims)
            .all(|(sel, &id)| sel.admits(id, dict))
    }

    /// True if no selector restricts anything.
    pub fn is_all(&self) -> bool {
        self.selectors
            .iter()
            .all(|s| matches!(s, CompiledSelector::All))
    }
}

/// An extended analytical query `⟨c_Σ(x, d₁…dₙ), m(x, v), ⊕⟩`.
#[derive(Debug, Clone)]
pub struct ExtendedQuery {
    query: AnalyticalQuery,
    sigma: Sigma,
}

impl ExtendedQuery {
    /// Wraps a plain AnQ as the extended AnQ with unrestricted Σ.
    pub fn from_query(query: AnalyticalQuery) -> Self {
        let n = query.n_dims();
        ExtendedQuery {
            query,
            sigma: Sigma::all(n),
        }
    }

    /// Builds an extended AnQ with an explicit Σ.
    pub fn with_sigma(query: AnalyticalQuery, sigma: Sigma) -> Result<Self, CoreError> {
        if sigma.len() != query.n_dims() {
            return Err(CoreError::InvalidOperation(format!(
                "Σ covers {} dimensions but the query has {}",
                sigma.len(),
                query.n_dims()
            )));
        }
        Ok(ExtendedQuery { query, sigma })
    }

    /// The underlying analytical query.
    pub fn query(&self) -> &AnalyticalQuery {
        &self.query
    }

    /// The Σ restriction.
    pub fn sigma(&self) -> &Sigma {
        &self.sigma
    }

    /// Evaluates the Σ-filtered classifier relation over the instance,
    /// pushing Σ into pattern matching: bindings violating a restriction
    /// are pruned — compacted out of the evaluator's flat binding arena in
    /// place — the moment the dimension variable binds.
    pub fn classifier_relation(&self, instance: &Graph) -> Result<Relation, CoreError> {
        if self.sigma.is_unrestricted() {
            return Ok(evaluate(instance, self.query.classifier(), Semantics::Set)?);
        }
        let filters = self
            .sigma
            .to_filters(self.query.dim_vars(), instance.dict());
        Ok(evaluate_filtered(
            instance,
            self.query.classifier(),
            &filters,
            Semantics::Set,
        )?)
    }

    /// The naive formulation — evaluate the unrestricted classifier, then
    /// select — kept for the E7c ablation quantifying what push-down buys.
    pub fn classifier_relation_postfilter(&self, instance: &Graph) -> Result<Relation, CoreError> {
        let rel = evaluate(instance, self.query.classifier(), Semantics::Set)?;
        Ok(self.filter_classifier(rel, instance.dict()))
    }

    /// Applies the compiled Σ to a classifier relation whose schema is
    /// `[x, d₁…dₙ]`.
    pub fn filter_classifier(&self, rel: Relation, dict: &Dictionary) -> Relation {
        if self.sigma.is_unrestricted() {
            return rel;
        }
        let compiled = self.sigma.compile(dict);
        rel.select(|row| compiled.admits(&row[1..], dict))
    }

    /// `ans(Q, I)` for the extended query: Definition 1 semantics over the
    /// Σ-filtered classifier.
    pub fn answer(&self, instance: &Graph) -> Result<Cube, CoreError> {
        let c_rel = self.classifier_relation(instance)?;
        answer_with_classifier_relation(&self.query, c_rel, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_engine::{AggFunc, AggValue};
    use rdfcube_rdf::parse_turtle;

    fn example_4_instance() -> Graph {
        // Example 4's data: word counts per post.
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user1> <wrotePost> <p1>, <p2> .
             <p1> <hasWordCount> 100 . <p2> <hasWordCount> 120 .
             <user3> <wrotePost> <p3> . <p3> <hasWordCount> 570 .
             <user4> <wrotePost> <p4> . <p4> <hasWordCount> 410 .",
        )
        .unwrap()
    }

    fn example_4_query(g: &mut Graph) -> AnalyticalQuery {
        AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vwords) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p hasWordCount ?vwords",
            AggFunc::Avg,
            g.dict_mut(),
        )
        .unwrap()
    }

    #[test]
    fn example_4_unrestricted_answer() {
        // Paper: ans(Q) = {⟨28, Madrid, 210⟩, ⟨35, NY, 570⟩}.
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        let eq = ExtendedQuery::from_query(q);
        let cube = eq.answer(&g).unwrap();
        assert_eq!(cube.len(), 2);
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        assert_eq!(cube.get(&[age28, madrid]), Some(&AggValue::Float(210.0)));
    }

    #[test]
    fn example_4_dice_range_20_to_30() {
        // QDICE restricts dage to 20..=30; answer is {⟨28, Madrid, 210⟩}.
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        let mut sigma = Sigma::all(2);
        sigma.set(0, ValueSelector::IntRange { lo: 20, hi: 30 });
        let eq = ExtendedQuery::with_sigma(q, sigma).unwrap();
        let cube = eq.answer(&g).unwrap();
        assert_eq!(cube.len(), 1);
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        assert_eq!(cube.get(&[age28, madrid]), Some(&AggValue::Float(210.0)));
    }

    #[test]
    fn slice_binds_one_value() {
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        let mut sigma = Sigma::all(2);
        sigma.set(1, ValueSelector::one(Term::literal("NY")));
        let eq = ExtendedQuery::with_sigma(q, sigma).unwrap();
        let cube = eq.answer(&g).unwrap();
        assert_eq!(cube.len(), 1);
        let age35 = g.dict().id(&Term::integer(35)).unwrap();
        let ny = g.dict().id(&Term::literal("NY")).unwrap();
        assert_eq!(cube.get(&[age35, ny]), Some(&AggValue::Float(570.0)));
    }

    #[test]
    fn selector_for_unknown_value_yields_empty_cube() {
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        let mut sigma = Sigma::all(2);
        sigma.set(1, ValueSelector::one(Term::literal("Atlantis")));
        let eq = ExtendedQuery::with_sigma(q, sigma).unwrap();
        assert!(eq.answer(&g).unwrap().is_empty());
    }

    #[test]
    fn sigma_arity_mismatch_rejected() {
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        assert!(ExtendedQuery::with_sigma(q, Sigma::all(5)).is_err());
    }

    #[test]
    fn refinement_rules() {
        let all = ValueSelector::All;
        let small = ValueSelector::OneOf(vec![Term::integer(28)]);
        let big = ValueSelector::OneOf(vec![Term::integer(28), Term::integer(35)]);
        let range = ValueSelector::IntRange { lo: 20, hi: 30 };
        let wider = ValueSelector::IntRange { lo: 0, hi: 99 };

        assert!(small.refines(&all));
        assert!(small.refines(&big));
        assert!(!big.refines(&small));
        assert!(small.refines(&range)); // 28 ∈ [20,30]
        assert!(range.refines(&wider));
        assert!(!wider.refines(&range));
        assert!(!all.refines(&small));
        assert!(!range.refines(&big)); // conservative
    }

    #[test]
    fn pushdown_equals_postfilter() {
        let mut g = example_4_instance();
        let q = example_4_query(&mut g);
        let mut sigma = Sigma::all(2);
        sigma.set(0, ValueSelector::IntRange { lo: 20, hi: 30 });
        sigma.set(1, ValueSelector::one(Term::literal("Madrid")));
        let eq = ExtendedQuery::with_sigma(q, sigma).unwrap();
        let pushed = eq.classifier_relation(&g).unwrap();
        let post = eq.classifier_relation_postfilter(&g).unwrap();
        assert!(pushed.same_bag(&post));
        assert_eq!(pushed.len(), 2); // user1 and user4
    }

    #[test]
    fn sigma_shape_transformations() {
        let mut s = Sigma::all(3);
        s.set(1, ValueSelector::one(Term::integer(35)));
        assert!(!s.is_unrestricted());

        let dropped = s.without_dims(&[1]);
        assert_eq!(dropped.len(), 2);
        assert!(dropped.is_unrestricted());

        let grown = s.with_new_dim();
        assert_eq!(grown.len(), 4);
        assert!(grown.selector(3).is_all());

        assert!(s.refines(&Sigma::all(3)));
        assert!(!Sigma::all(3).refines(&s));
    }
}
