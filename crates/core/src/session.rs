//! OLAP sessions: materialized cubes + automatic rewriting-based answering.
//!
//! The session is the end-to-end embodiment of the paper's Figure 2: it
//! holds an AnS instance, materializes `ans(Q)` and `pres(Q)` for every
//! registered cube, and answers each OLAP transformation with the cheapest
//! strategy that is *provably correct* for it:
//!
//! * SLICE/DICE whose Σ refines the source's → σ over `ans(Q)` (Prop. 1),
//!   with `pres(Q_T)` derived by row selection on `pres(Q)`;
//! * DRILL-OUT with unrestricted Σ on the removed dimensions → Algorithm 1
//!   on `pres(Q)` (Prop. 2);
//! * DRILL-IN → Algorithm 2 on `pres(Q)` plus the instance (Prop. 3);
//! * anything else → transparent fallback to from-scratch evaluation.
//!
//! Every transformation materializes the result, so chains of operations
//! (slice → drill-out → drill-in → …) keep reusing prior work.

use crate::anq::AnalyticalQuery;
use crate::answer::Cube;
use crate::error::CoreError;
use crate::extended::ExtendedQuery;
use crate::olap::{apply, resolve_dims, OlapOp};
use crate::pres::PartialResult;
use crate::rewrite;
use crate::signature::{query_signature, BodySignature};
use rdfcube_engine::{AggFunc, VarId};
use rdfcube_rdf::Graph;
use std::fmt;

/// Handle to a materialized cube within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeHandle(usize);

/// How a transformed cube's answer was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// σ_dice over the materialized `ans(Q)` (Proposition 1).
    SelectionOnAns,
    /// Algorithm 1 over `pres(Q)` (Proposition 2).
    Algorithm1,
    /// Algorithm 2 over `pres(Q)` + the instance (Proposition 3).
    Algorithm2,
    /// The roll-up composition of Algorithms 1 and 2 over `pres(Q)` + the
    /// instance (extension; see [`rewrite::roll_up_from_pres`]).
    RollUpComposition,
    /// Full re-evaluation on the instance (no sound rewriting available).
    FromScratch,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::SelectionOnAns => "selection over ans(Q)",
            Strategy::Algorithm1 => "Algorithm 1 over pres(Q)",
            Strategy::Algorithm2 => "Algorithm 2 over pres(Q) + instance",
            Strategy::RollUpComposition => "roll-up composition over pres(Q) + instance",
            Strategy::FromScratch => "from-scratch evaluation",
        };
        f.write_str(s)
    }
}

/// A cube materialized by the session: its extended query, answer, and
/// partial result.
#[derive(Debug, Clone)]
pub struct MaterializedCube {
    eq: ExtendedQuery,
    ans: Cube,
    pres: PartialResult,
}

impl MaterializedCube {
    /// The extended query that defines the cube.
    pub fn query(&self) -> &ExtendedQuery {
        &self.eq
    }

    /// The materialized answer `ans(Q)`.
    pub fn answer(&self) -> &Cube {
        &self.ans
    }

    /// The materialized partial result `pres(Q)`.
    pub fn pres(&self) -> &PartialResult {
        &self.pres
    }
}

/// An interactive OLAP session over one AnS instance.
#[derive(Debug)]
pub struct OlapSession {
    instance: Graph,
    cubes: Vec<MaterializedCube>,
}

impl OlapSession {
    /// Opens a session over a materialized analytical-schema instance.
    ///
    /// The instance is compacted up front: OLAP sessions are read-heavy, so
    /// any pending insert delta is folded into the store's sorted CSR runs
    /// once, and every BGP evaluation afterwards is a pure index scan.
    pub fn new(mut instance: Graph) -> Self {
        instance.compact();
        OlapSession {
            instance,
            cubes: Vec::new(),
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Graph {
        &self.instance
    }

    /// Parses an analytical query from the paper's notation against this
    /// session's instance (constants are interned into its dictionary),
    /// without materializing anything. Combine with [`Self::answer_query`]
    /// or [`ExtendedQuery::with_sigma`].
    pub fn parse_query(
        &mut self,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> Result<ExtendedQuery, CoreError> {
        let q = AnalyticalQuery::parse(classifier, measure, agg, self.instance.dict_mut())?;
        Ok(ExtendedQuery::from_query(q))
    }

    /// Parses, validates and materializes a cube from the paper's notation.
    pub fn register(
        &mut self,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> Result<CubeHandle, CoreError> {
        let eq = self.parse_query(classifier, measure, agg)?;
        self.register_query(eq)
    }

    /// Materializes an already-built extended query.
    pub fn register_query(&mut self, eq: ExtendedQuery) -> Result<CubeHandle, CoreError> {
        let pres = PartialResult::compute(&eq, &self.instance)?;
        let ans = pres.to_cube(self.instance.dict())?;
        self.cubes.push(MaterializedCube { eq, ans, pres });
        Ok(CubeHandle(self.cubes.len() - 1))
    }

    /// The materialized cube behind `handle`.
    pub fn cube(&self, handle: CubeHandle) -> &MaterializedCube {
        &self.cubes[handle.0]
    }

    /// Shorthand for the answer of `handle`.
    pub fn answer(&self, handle: CubeHandle) -> &Cube {
        &self.cubes[handle.0].ans
    }

    /// Number of materialized cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True if no cube is materialized.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The paper's problem statement in its general form: answers an
    /// *arbitrary* extended query by searching the materialized cubes for
    /// one it can be soundly derived from — same canonical classifier body,
    /// measure and ⊕ (up to variable renaming and pattern order, see
    /// [`crate::signature`]) with compatibly related dimensions and Σ —
    /// and routing through Proposition 1 / Algorithm 1 / Algorithm 2.
    /// Falls back to from-scratch evaluation when no materialization helps.
    ///
    /// The answered query is materialized either way, so it becomes a
    /// candidate source for future queries.
    pub fn answer_query(&mut self, eq: ExtendedQuery) -> Result<(CubeHandle, Strategy), CoreError> {
        let derivation = self.find_derivation(&eq);
        let (ans, pres, strategy) = match derivation {
            Some((source_idx, d)) => self.derive(source_idx, &eq, d)?,
            None => {
                let (ans, pres) = rewrite::from_scratch_with_pres(&eq, &self.instance)?;
                (ans, pres, Strategy::FromScratch)
            }
        };
        self.cubes.push(MaterializedCube { eq, ans, pres });
        Ok((CubeHandle(self.cubes.len() - 1), strategy))
    }

    /// How a target query can be derived from a materialized cube.
    fn find_derivation(&self, target: &ExtendedQuery) -> Option<(usize, Derivation)> {
        let t_measure = query_signature(target.query().measure());
        let t_body = BodySignature::of(target.query().classifier());
        let t_root = t_body.name_of(target.query().root())?.to_string();
        let t_dims: Vec<String> = target
            .query()
            .dim_vars()
            .iter()
            .map(|&v| t_body.name_of(v).unwrap_or("?").to_string())
            .collect();

        let mut best: Option<(usize, Derivation)> = None;
        for (idx, cube) in self.cubes.iter().enumerate() {
            let sq = cube.eq.query();
            if sq.agg() != target.query().agg() || query_signature(sq.measure()) != t_measure {
                continue;
            }
            let s_body = BodySignature::of(sq.classifier());
            if s_body.text != t_body.text {
                continue;
            }
            let Some(s_root) = s_body.name_of(sq.root()) else {
                continue;
            };
            if s_root != t_root {
                continue;
            }
            let s_dims: Vec<String> = sq
                .dim_vars()
                .iter()
                .map(|&v| s_body.name_of(v).unwrap_or("?").to_string())
                .collect();

            let candidate = classify_derivation(
                &s_dims,
                cube.eq.sigma(),
                &t_dims,
                target.sigma(),
                sq,
                &s_body,
            );
            if let Some(d) = candidate {
                let rank = d.rank();
                let better = match &best {
                    None => true,
                    Some((_, prev)) => rank < prev.rank(),
                };
                if better {
                    best = Some((idx, d));
                }
            }
        }
        best
    }

    /// Executes a derivation against the source cube.
    fn derive(
        &self,
        source_idx: usize,
        target: &ExtendedQuery,
        d: Derivation,
    ) -> Result<(Cube, PartialResult, Strategy), CoreError> {
        let dict = self.instance.dict();
        let source = &self.cubes[source_idx];
        let target_names: Vec<String> = target
            .query()
            .dim_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (mut ans, mut pres, strategy, inherited_sigma) = match d {
            Derivation::Dice => (
                rewrite::dice_from_ans(&source.ans, target.sigma(), dict),
                rewrite::dice_pres(&source.pres, target.sigma(), dict),
                Strategy::SelectionOnAns,
                target.sigma().clone(),
            ),
            Derivation::DrillOut(removed) => {
                let (ans, pres) = rewrite::drill_out_from_pres(&source.pres, &removed, dict)?;
                let inherited = source.eq.sigma().without_dims(&removed);
                (ans, pres, Strategy::Algorithm1, inherited)
            }
            Derivation::DrillIn(var) => {
                let (ans, pres) = rewrite::drill_in_from_pres(
                    source.eq.query(),
                    &source.pres,
                    var,
                    &self.instance,
                )?;
                let inherited = source.eq.sigma().with_new_dim();
                (ans, pres, Strategy::Algorithm2, inherited)
            }
        };
        if target.sigma() != &inherited_sigma {
            ans = rewrite::dice_from_ans(&ans, target.sigma(), dict);
            pres = rewrite::dice_pres(&pres, target.sigma(), dict);
        }
        Ok((
            ans.with_dim_names(target_names.clone()),
            pres.with_dim_names(target_names),
            strategy,
        ))
    }

    /// Applies an OLAP operation to a materialized cube, answering the
    /// transformed query with the cheapest sound strategy; materializes and
    /// returns the new cube plus the strategy that produced it.
    pub fn transform(
        &mut self,
        handle: CubeHandle,
        op: &OlapOp,
    ) -> Result<(CubeHandle, Strategy), CoreError> {
        // ROLL-UP needs the dictionary to encode its mapping property, so
        // the rewritten query is built here rather than in bare `apply`.
        if let OlapOp::RollUp { dim, via } = op {
            return self.roll_up(handle, dim, via);
        }
        let source = &self.cubes[handle.0];
        let new_eq = apply(&source.eq, op)?;
        let (cube, pres, strategy) = self.answer_transformed(source, &new_eq, op)?;
        self.cubes.push(MaterializedCube {
            eq: new_eq,
            ans: cube,
            pres,
        });
        Ok((CubeHandle(self.cubes.len() - 1), strategy))
    }

    fn roll_up(
        &mut self,
        handle: CubeHandle,
        dim: &str,
        via: &str,
    ) -> Result<(CubeHandle, Strategy), CoreError> {
        let via_id = self
            .instance
            .dict_mut()
            .encode_owned(rdfcube_rdf::Term::iri(via));
        let source = &self.cubes[handle.0];
        let new_eq = crate::olap::apply_roll_up_encoded(&source.eq, dim, via_id)?;
        let dim_idx = source.eq.query().dim_index(dim)?;
        let coarse_name = new_eq.query().dim_names()[dim_idx].to_string();
        let (ans, pres) = rewrite::roll_up_from_pres(
            &source.pres,
            dim_idx,
            via_id,
            &coarse_name,
            &self.instance,
        )?;
        self.cubes.push(MaterializedCube {
            eq: new_eq,
            ans,
            pres,
        });
        Ok((
            CubeHandle(self.cubes.len() - 1),
            Strategy::RollUpComposition,
        ))
    }

    fn answer_transformed(
        &self,
        source: &MaterializedCube,
        new_eq: &ExtendedQuery,
        op: &OlapOp,
    ) -> Result<(Cube, PartialResult, Strategy), CoreError> {
        let dict = self.instance.dict();
        match op {
            OlapOp::Slice { .. } | OlapOp::Dice { .. } => {
                // Proposition 1 applies when the new Σ only narrows the old.
                if new_eq.sigma().refines(source.eq.sigma()) {
                    let ans = rewrite::dice_from_ans(&source.ans, new_eq.sigma(), dict);
                    let pres = rewrite::dice_pres(&source.pres, new_eq.sigma(), dict);
                    Ok((ans, pres, Strategy::SelectionOnAns))
                } else {
                    let (ans, pres) = rewrite::from_scratch_with_pres(new_eq, &self.instance)?;
                    Ok((ans, pres, Strategy::FromScratch))
                }
            }
            OlapOp::DrillOut { dims } => {
                let removed = resolve_dims(&source.eq, dims)?;
                // Algorithm 1 needs the removed dimensions unrestricted in
                // the source: pres(Q) lacks the rows a dropped restriction
                // would re-admit.
                let unrestricted = removed
                    .iter()
                    .all(|&i| source.eq.sigma().selector(i).is_all());
                if unrestricted {
                    let (ans, pres) = rewrite::drill_out_from_pres(&source.pres, &removed, dict)?;
                    Ok((ans, pres, Strategy::Algorithm1))
                } else {
                    let (ans, pres) = rewrite::from_scratch_with_pres(new_eq, &self.instance)?;
                    Ok((ans, pres, Strategy::FromScratch))
                }
            }
            OlapOp::DrillIn { var } => {
                let vid = source
                    .eq
                    .query()
                    .classifier()
                    .vars()
                    .id(var)
                    .ok_or_else(|| CoreError::UnknownVariable(var.clone()))?;
                let (ans, pres) = rewrite::drill_in_from_pres(
                    source.eq.query(),
                    &source.pres,
                    vid,
                    &self.instance,
                )?;
                Ok((ans, pres, Strategy::Algorithm2))
            }
            OlapOp::RollUp { .. } => {
                unreachable!("ROLL-UP is dispatched before apply(); see transform()")
            }
        }
    }
}

/// How a target query relates to a materialized source cube.
#[derive(Debug, Clone)]
enum Derivation {
    /// Same dimensions in the same order; the target Σ refines the source's.
    Dice,
    /// Target dimensions are an order-preserving subset; the listed source
    /// dimension indices are dropped (their source Σ must be unrestricted).
    DrillOut(Vec<usize>),
    /// Target has exactly one extra trailing dimension, existential in the
    /// source classifier (the variable to promote).
    DrillIn(VarId),
}

impl Derivation {
    /// Preference order when several sources apply (cheapest first).
    fn rank(&self) -> u8 {
        match self {
            Derivation::Dice => 0,
            Derivation::DrillOut(_) => 1,
            Derivation::DrillIn(_) => 2,
        }
    }
}

/// Decides whether (and how) a cube with canonical dimensions `s_dims` and
/// restriction `s_sigma` can answer a query with `t_dims`/`t_sigma`, given
/// that classifier bodies, measures, aggregates and roots already match.
fn classify_derivation(
    s_dims: &[String],
    s_sigma: &crate::extended::Sigma,
    t_dims: &[String],
    t_sigma: &crate::extended::Sigma,
    source_query: &AnalyticalQuery,
    s_body: &BodySignature,
) -> Option<Derivation> {
    if s_dims == t_dims {
        return t_sigma.refines(s_sigma).then_some(Derivation::Dice);
    }

    // DrillOut: t_dims is a strict, order-preserving subset of s_dims.
    if t_dims.len() < s_dims.len() {
        let mut removed = Vec::new();
        let mut kept_sigma_ok = true;
        let mut ti = 0usize;
        for (si, s_dim) in s_dims.iter().enumerate() {
            if ti < t_dims.len() && &t_dims[ti] == s_dim {
                // Kept dimension: the target's restriction must refine the
                // source's (equal or narrower — a trailing dice fixes up
                // strict refinement).
                if !t_sigma.selector(ti).refines(s_sigma.selector(si)) {
                    kept_sigma_ok = false;
                    break;
                }
                ti += 1;
            } else {
                // Dropped dimension: Algorithm 1 needs it unrestricted.
                if !s_sigma.selector(si).is_all() {
                    kept_sigma_ok = false;
                    break;
                }
                removed.push(si);
            }
        }
        if kept_sigma_ok && ti == t_dims.len() && !removed.is_empty() {
            return Some(Derivation::DrillOut(removed));
        }
        return None;
    }

    // DrillIn: t_dims = s_dims + one extra at the end.
    if t_dims.len() == s_dims.len() + 1 && t_dims[..s_dims.len()] == *s_dims {
        for ti in 0..s_dims.len() {
            if !t_sigma.selector(ti).refines(s_sigma.selector(ti)) {
                return None;
            }
        }
        let extra = &t_dims[s_dims.len()];
        // Find the source classifier variable with that canonical name; it
        // must be existential there (not in the head).
        let var = s_body
            .var_names
            .iter()
            .find(|(_, name)| name.as_str() == extra)
            .map(|(&v, _)| v)?;
        if source_query.classifier().head().contains(&var) {
            return None;
        }
        return Some(Derivation::DrillIn(var));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extended::ValueSelector;
    use rdfcube_engine::AggValue;
    use rdfcube_rdf::{parse_turtle, Term};

    fn session() -> OlapSession {
        let instance = parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap();
        OlapSession::new(instance)
    }

    fn register_example_1(s: &mut OlapSession) -> CubeHandle {
        s.register(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
        )
        .unwrap()
    }

    #[test]
    fn register_materializes_ans_and_pres() {
        let mut s = session();
        let h = register_example_1(&mut s);
        assert_eq!(s.answer(h).len(), 2);
        assert_eq!(s.cube(h).pres().len(), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slice_uses_selection_on_ans() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::SelectionOnAns);
        assert_eq!(s.answer(h2).len(), 1);
        // Verified against scratch.
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn widening_dice_falls_back_to_scratch() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, st2) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        assert_eq!(st2, Strategy::SelectionOnAns);
        // Widen back to {28, 35}: not a refinement → scratch.
        let (h3, st3) = s
            .transform(
                h2,
                &OlapOp::Dice {
                    constraints: vec![(
                        "dage".into(),
                        ValueSelector::OneOf(vec![Term::integer(28), Term::integer(35)]),
                    )],
                },
            )
            .unwrap();
        assert_eq!(st3, Strategy::FromScratch);
        assert_eq!(s.answer(h3).len(), 2);
    }

    #[test]
    fn drill_out_uses_algorithm_1() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn drill_out_on_sliced_dim_falls_back() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        let (h3, strategy) = s
            .transform(
                h2,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::FromScratch);
        // The drill-out dropped the slice: user1's posts are back in scope.
        let cube = s.answer(h3);
        let ny = s.instance().dict().id(&Term::literal("NY")).unwrap();
        let madrid = s.instance().dict().id(&Term::literal("Madrid")).unwrap();
        assert_eq!(cube.get(&[ny]), Some(&AggValue::Int(2)));
        assert_eq!(cube.get(&[madrid]), Some(&AggValue::Int(3)));
    }

    #[test]
    fn drill_out_on_remaining_restriction_still_uses_algorithm_1() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dcity".into(),
                    value: Term::literal("NY"),
                },
            )
            .unwrap();
        // Removing dage (unrestricted) keeps the dcity slice intact.
        let (h3, strategy) = s
            .transform(
                h2,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
    }

    #[test]
    fn drill_in_uses_algorithm_2_and_chains() {
        let mut s = session();
        let h = register_example_1(&mut s);
        // drill-out dage, then drill it back in: Example 3's round trip.
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        let (h3, strategy) = s
            .transform(h2, &OlapOp::DrillIn { var: "dage".into() })
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm2);
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
        // Same cells as the original cube, modulo dimension order
        // (dcity, dage) vs (dage, dcity).
        assert_eq!(s.answer(h3).len(), s.answer(h).len());
    }

    /// Helper: an independently-written extended query over the session's
    /// instance (fresh variable names, different pattern order).
    fn independent_query(
        s: &mut OlapSession,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> ExtendedQuery {
        // Parse against the live instance dictionary through a stub
        // registration path (dictionary interning only).
        let mut g = std::mem::replace(&mut s.instance, Graph::new());
        let q = AnalyticalQuery::parse(classifier, measure, agg, g.dict_mut()).unwrap();
        s.instance = g;
        ExtendedQuery::from_query(q)
    }

    #[test]
    fn answer_query_recognizes_renamed_dice() {
        let mut s = session();
        register_example_1(&mut s);
        // Same query, different variable names and pattern order, sliced.
        let mut eq = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
            "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
            AggFunc::Count,
        );
        let mut sigma = crate::extended::Sigma::all(2);
        sigma.set(0, ValueSelector::one(Term::integer(35)));
        eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();

        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::SelectionOnAns);
        // Stored under the new query's own dimension names.
        assert_eq!(
            s.answer(h).dim_names(),
            &["years".to_string(), "town".to_string()]
        );
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_derives_drill_out_from_materialization() {
        let mut s = session();
        register_example_1(&mut s);
        // A 1-D query whose body matches the registered 2-D cube.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_derives_drill_in_from_materialization() {
        let mut s = session();
        // Register a 1-D cube whose classifier mentions the city
        // existentially…
        s.register(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?c",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
            AggFunc::Count,
        )
        .unwrap();
        // …then ask the 2-D version: served by Algorithm 2.
        let eq = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u rdf:type Blogger, ?u hasAge ?years, ?u livesIn ?town",
            "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm2);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_falls_back_on_unrelated_queries() {
        let mut s = session();
        register_example_1(&mut s);
        // Different measure ⇒ no derivation.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u livesIn ?town",
            "w(?u, ?q) :- ?u wrotePost ?q",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::FromScratch);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_respects_sigma_soundness() {
        let mut s = session();
        let h = register_example_1(&mut s);
        // Slice the source on dage…
        let (sliced, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        let _ = sliced;
        // …then ask an unrestricted 1-D drill-out of dage. The sliced cube
        // must NOT be used (its removed dim is restricted); the original
        // 2-D cube (unrestricted) is a sound source via Algorithm 1.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?x) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?x",
            AggFunc::Count,
        );
        let (h2, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
        let madrid = s.instance().dict().id(&Term::literal("Madrid")).unwrap();
        // user1's three posts are present — the slice was not leaked.
        assert_eq!(s.answer(h2).get(&[madrid]), Some(&AggValue::Int(3)));
    }

    #[test]
    fn answer_query_combines_drill_out_with_dice() {
        let mut s = session();
        register_example_1(&mut s);
        // 1-D (city) with a restriction on the kept dim: Algorithm 1 then σ.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?x) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?x",
            AggFunc::Count,
        );
        let mut sigma = crate::extended::Sigma::all(1);
        sigma.set(0, ValueSelector::one(Term::literal("NY")));
        let eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        assert_eq!(s.answer(h).len(), 1);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn roll_up_in_a_session() {
        let instance = parse_turtle(
            "<Madrid> <locatedIn> <Spain> . <NY> <locatedIn> <USA> .
             <user1> rdf:type <Blogger> ; <livesIn> <Madrid> ; <wrotePost> <p1> .
             <user3> rdf:type <Blogger> ; <livesIn> <NY> ; <wrotePost> <p2> .
             <user4> rdf:type <Blogger> ; <livesIn> <NY> ; <wrotePost> <p3> .",
        )
        .unwrap();
        let mut s = OlapSession::new(instance);
        let h = s
            .register(
                "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
                "m(?x, ?p) :- ?x wrotePost ?p",
                AggFunc::Count,
            )
            .unwrap();
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::RollUp {
                    dim: "dcity".into(),
                    via: "locatedIn".into(),
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::RollUpComposition);
        let spain = s.instance().dict().id(&Term::iri("Spain")).unwrap();
        let usa = s.instance().dict().id(&Term::iri("USA")).unwrap();
        assert_eq!(s.answer(h2).get(&[spain]), Some(&AggValue::Int(1)));
        assert_eq!(s.answer(h2).get(&[usa]), Some(&AggValue::Int(2)));
        // Consistent with evaluating Q_ROLL-UP from scratch.
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
        // And the materialized roll-up supports further operations.
        let (h3, st3) = s
            .transform(
                h2,
                &OlapOp::Slice {
                    dim: "dcity_up".into(),
                    value: Term::iri("USA"),
                },
            )
            .unwrap();
        assert_eq!(st3, Strategy::SelectionOnAns);
        assert_eq!(s.answer(h3).len(), 1);
    }

    #[test]
    fn long_chain_remains_consistent_with_scratch() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h1, _) = s
            .transform(
                h,
                &OlapOp::Dice {
                    constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 40 })],
                },
            )
            .unwrap();
        let (h2, _) = s
            .transform(
                h1,
                &OlapOp::DrillOut {
                    dims: vec!["dcity".into()],
                },
            )
            .unwrap();
        let (h3, _) = s
            .transform(
                h2,
                &OlapOp::DrillIn {
                    var: "dcity".into(),
                },
            )
            .unwrap();
        for hi in [h1, h2, h3] {
            let scratch = s.cube(hi).query().answer(s.instance()).unwrap();
            assert!(s.answer(hi).same_cells(&scratch), "handle {hi:?} diverged");
        }
    }
}
