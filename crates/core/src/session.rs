//! OLAP sessions: a cost-based cube catalog + automatic rewriting-based
//! answering.
//!
//! The session is the end-to-end embodiment of the paper's Figure 2: it
//! holds an AnS instance and a [`CubeCatalog`] of materialized cubes
//! (`ans(Q)` + `pres(Q)` per registered query), and answers each OLAP
//! transformation with the *cheapest sound* strategy:
//!
//! * SLICE/DICE whose Σ refines a source's → σ over `ans(Q)` (Prop. 1);
//! * DRILL-OUT with unrestricted Σ on the removed dimensions → Algorithm 1
//!   on `pres(Q)` (Prop. 2);
//! * DRILL-IN → Algorithm 2 on `pres(Q)` plus the instance (Prop. 3);
//! * from-scratch evaluation, always applicable.
//!
//! Soundness (which derivations are *applicable*) is decided by the
//! catalog's classifier; *which* applicable route runs is decided by the
//! cost model ([`crate::cost`]) from materialized sizes and instance
//! statistics — there is no fixed preference order. The decision and its
//! evidence come back as an [`ExplainedStrategy`].
//!
//! Candidate sources are found through the catalog's
//! [`ViewKey`](crate::signature::ViewKey) index in
//! O(1) per query (one family probe), not by rescanning every cube; and a
//! session opened with [`OlapSession::with_budget`] keeps at most that
//! many bytes of materialized payload resident, evicting cold cubes'
//! payloads (benefit-weighted LRU) while keeping their handles valid —
//! an evicted cube is recomputed transparently the next time it is
//! touched.
//!
//! Every transformation materializes its result, so chains of operations
//! (slice → drill-out → drill-in → …) keep reusing prior work.

use crate::anq::AnalyticalQuery;
use crate::answer::Cube;
use crate::catalog::{CubeCatalog, Derivation};
use crate::cost::{self, ExplainedStrategy};
use crate::error::CoreError;
use crate::extended::ExtendedQuery;
use crate::olap::{apply, OlapOp};
use crate::pres::PartialResult;
use crate::rewrite;
use crate::shared::SharedSession;
use crate::signature::{query_signature, BodySignature, ViewSignature};
use rdfcube_engine::AggFunc;
use rdfcube_obs::{self as obs, QueryTrace};
use rdfcube_rdf::{Graph, Term};
use std::fmt;
use std::sync::Arc;

/// Handle to a materialized cube within a session. Handles stay valid for
/// the lifetime of the session even in budgeted sessions — eviction drops
/// a cube's payload, not its catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeHandle(pub(crate) usize);

/// How a transformed cube's answer was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// σ_dice over the materialized `ans(Q)` (Proposition 1).
    SelectionOnAns,
    /// Algorithm 1 over `pres(Q)` (Proposition 2).
    Algorithm1,
    /// Algorithm 2 over `pres(Q)` + the instance (Proposition 3).
    Algorithm2,
    /// The roll-up composition of Algorithms 1 and 2 over `pres(Q)` + the
    /// instance (extension; see [`rewrite::roll_up_from_pres`]).
    RollUpComposition,
    /// Full re-evaluation on the instance (no sound rewriting available,
    /// or every applicable one was estimated more expensive).
    FromScratch,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::SelectionOnAns => "selection over ans(Q)",
            Strategy::Algorithm1 => "Algorithm 1 over pres(Q)",
            Strategy::Algorithm2 => "Algorithm 2 over pres(Q) + instance",
            Strategy::RollUpComposition => "roll-up composition over pres(Q) + instance",
            Strategy::FromScratch => "from-scratch evaluation",
        };
        f.write_str(s)
    }
}

/// A borrowed view of one materialized cube: its extended query, answer,
/// and partial result.
///
/// Obtained from [`OlapSession::cube`]; in a budgeted session the payload
/// must be resident (see [`OlapSession::touch`]).
#[derive(Debug, Clone, Copy)]
pub struct MaterializedCube<'a> {
    eq: &'a ExtendedQuery,
    ans: &'a Cube,
    pres: &'a PartialResult,
}

impl<'a> MaterializedCube<'a> {
    /// The extended query that defines the cube.
    pub fn query(&self) -> &'a ExtendedQuery {
        self.eq
    }

    /// The materialized answer `ans(Q)`.
    pub fn answer(&self) -> &'a Cube {
        self.ans
    }

    /// The materialized partial result `pres(Q)`.
    pub fn pres(&self) -> &'a PartialResult {
        self.pres
    }
}

/// An interactive OLAP session over one AnS instance.
///
/// The session doubles as the **mutation plane** of the concurrent
/// architecture: it owns `&mut` access to the instance
/// ([`Self::insert`], [`Self::parse_query`]'s dictionary interning) and
/// to the catalog. For serving the same catalog to many threads at once,
/// convert it into a [`SharedSession`] with [`Self::into_shared`] and
/// back with [`SharedSession::into_session`] — the two types alternate
/// as serve/mutate epochs over the same `Arc`-shared data.
#[derive(Debug)]
pub struct OlapSession {
    instance: Arc<Graph>,
    catalog: CubeCatalog,
}

impl OlapSession {
    /// Opens a session over a materialized analytical-schema instance,
    /// with no memory budget (nothing is ever evicted).
    ///
    /// The instance is compacted up front: OLAP sessions are read-heavy, so
    /// any pending insert delta is folded into the store's sorted CSR runs
    /// once, and every BGP evaluation afterwards is a pure index scan.
    pub fn new(mut instance: Graph) -> Self {
        instance.compact();
        OlapSession {
            instance: Arc::new(instance),
            catalog: CubeCatalog::new(),
        }
    }

    /// Opens a session over the instance repartitioned into `shards`
    /// subject-hash shards (see [`Graph::with_shards`]): bulk loads and BGP
    /// steps then run one worker per shard (raise
    /// [`rdfcube_engine::set_eval_threads`] to enable fan-out), with shards
    /// skipped outright when a step's pushed-down constants cannot match
    /// them. Answers are bit-identical at any shard count. Like
    /// [`Self::new`], the instance is compacted up front — resharding folds
    /// the delta in as a side effect.
    pub fn with_shards(mut instance: Graph, shards: usize) -> Self {
        instance.set_shard_count(shards);
        Self::new(instance)
    }

    /// Reassembles a session from its shared parts (the
    /// [`SharedSession`] round trip).
    pub(crate) fn from_parts(instance: Arc<Graph>, catalog: CubeCatalog) -> Self {
        OlapSession { instance, catalog }
    }

    /// Converts this session into a [`SharedSession`]: an immutable,
    /// `Send + Sync` query plane over the same instance and catalog that
    /// any number of threads can query concurrently. No cube data is
    /// copied — the instance and all payloads travel behind their `Arc`s.
    pub fn into_shared(self) -> SharedSession {
        SharedSession::from_parts(self.instance, self.catalog)
    }

    /// Opens a session that keeps at most `budget_bytes` of materialized
    /// cube payload (`ans(Q)` + `pres(Q)`, by `approx_bytes`) resident.
    ///
    /// When the budget overflows, cold cubes are evicted by
    /// benefit-weighted LRU: their payloads are dropped but their catalog
    /// entries (query, signature, statistics) remain, so handles stay
    /// valid and the cube is recomputed on demand when touched again. The
    /// most recently produced cube is always kept resident — even if it
    /// alone exceeds the budget — so results are readable immediately.
    pub fn with_budget(instance: Graph, budget_bytes: usize) -> Self {
        let mut s = Self::new(instance);
        s.catalog.set_budget(Some(budget_bytes));
        s
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Graph {
        &self.instance
    }

    /// The cube catalog: budget gauges, hit/miss/eviction counters, and
    /// per-entry statistics.
    pub fn catalog(&self) -> &CubeCatalog {
        &self.catalog
    }

    /// Parses an analytical query from the paper's notation against this
    /// session's instance (constants are interned into its dictionary),
    /// without materializing anything. Combine with [`Self::answer_query`]
    /// or [`ExtendedQuery::with_sigma`].
    pub fn parse_query(
        &mut self,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> Result<ExtendedQuery, CoreError> {
        let dict = Arc::make_mut(&mut self.instance).dict_mut();
        let q = AnalyticalQuery::parse(classifier, measure, agg, dict)?;
        Ok(ExtendedQuery::from_query(q))
    }

    /// Inserts one triple into the instance (the thin mutation plane).
    /// Returns `true` if the triple was new.
    ///
    /// Materialized cubes are **not** recomputed eagerly: every entry
    /// carries the triple-count watermark it was built at, and
    /// [`Self::answer_query`]/[`Self::transform`] refresh a cube the next
    /// time it is asked to serve after the watermark moved. Direct handle
    /// reads ([`Self::cube`], [`Self::answer`]) keep returning the cells
    /// materialized at the cube's watermark until [`Self::touch`] or a
    /// query refreshes them.
    ///
    /// If snapshots from a previous shared epoch are still alive, the
    /// instance is cloned once (copy-on-write) so those readers keep
    /// their consistent view.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        Arc::make_mut(&mut self.instance).insert(s, p, o)
    }

    /// Bulk [`Self::insert`]; returns how many triples were new.
    pub fn insert_triples<I>(&mut self, triples: I) -> usize
    where
        I: IntoIterator<Item = (Term, Term, Term)>,
    {
        let g = Arc::make_mut(&mut self.instance);
        triples
            .into_iter()
            .filter(|(s, p, o)| g.insert(s, p, o))
            .count()
    }

    /// Folds any pending insert delta into the store's sorted CSR runs
    /// (worth calling after a large [`Self::insert_triples`] batch, and
    /// before [`Self::into_shared`]).
    pub fn compact_instance(&mut self) {
        Arc::make_mut(&mut self.instance).compact();
    }

    /// Parses, validates and materializes a cube from the paper's notation.
    pub fn register(
        &mut self,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> Result<CubeHandle, CoreError> {
        let eq = self.parse_query(classifier, measure, agg)?;
        self.register_query(eq)
    }

    /// Materializes an already-built extended query.
    pub fn register_query(&mut self, eq: ExtendedQuery) -> Result<CubeHandle, CoreError> {
        let pres = PartialResult::compute(&eq, &self.instance)?;
        let ans = pres.to_cube(self.instance.dict())?;
        let watermark = self.instance.len();
        Ok(CubeHandle(self.catalog.insert(eq, ans, pres, watermark)))
    }

    /// The materialized cube behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different session, or (in a
    /// budgeted session) if the cube's payload is currently evicted —
    /// call [`Self::touch`] first to recompute it, or use
    /// [`Self::try_cube`]/[`Self::cube_checked`] to observe the failure
    /// without panicking. (Unbudgeted sessions never evict.)
    pub fn cube(&self, handle: CubeHandle) -> MaterializedCube<'_> {
        self.cube_checked(handle)
            .unwrap_or_else(|e| panic!("{e}; call OlapSession::touch(handle) or use cube_checked"))
    }

    /// The materialized cube behind `handle`, or a typed [`CoreError`]
    /// telling apart a foreign handle from an evicted payload. The
    /// fallible accessor every internal (library) caller goes through —
    /// only [`Self::cube`] itself turns the error into a panic.
    pub fn cube_checked(&self, handle: CubeHandle) -> Result<MaterializedCube<'_>, CoreError> {
        let entry = self
            .catalog
            .get_entry(handle.0)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let (ans, pres) = entry
            .payload()
            .ok_or(CoreError::CubeNotResident(handle.0))?;
        Ok(MaterializedCube {
            eq: entry.query(),
            ans,
            pres,
        })
    }

    /// The materialized cube behind `handle`, or `None` while its payload
    /// is evicted (or the handle is foreign). The `Option` counterpart of
    /// [`Self::cube_checked`] for callers that poll rather than
    /// [`Self::touch`].
    pub fn try_cube(&self, handle: CubeHandle) -> Option<MaterializedCube<'_>> {
        self.cube_checked(handle).ok()
    }

    /// Shorthand for the answer of `handle` (same residency requirement as
    /// [`Self::cube`]).
    pub fn answer(&self, handle: CubeHandle) -> &Cube {
        self.cube(handle).ans
    }

    /// The extended query of `handle` — available whether or not the
    /// payload is resident.
    ///
    /// # Panics
    /// Panics on a foreign handle; see [`Self::try_query`].
    pub fn query(&self, handle: CubeHandle) -> &ExtendedQuery {
        self.try_query(handle)
            .unwrap_or_else(|| panic!("{}", CoreError::UnknownHandle(handle.0)))
    }

    /// The extended query of `handle`, or `None` for a foreign handle.
    pub fn try_query(&self, handle: CubeHandle) -> Option<&ExtendedQuery> {
        self.catalog.get_entry(handle.0).map(|e| e.query())
    }

    /// True if the cube's payload is materialized right now (false for
    /// foreign handles).
    pub fn is_resident(&self, handle: CubeHandle) -> bool {
        self.catalog
            .get_entry(handle.0)
            .is_some_and(|e| e.is_resident())
    }

    /// True if the cube's payload reflects the instance's current triple
    /// count (false after [`Self::insert`] until the cube refreshes, and
    /// for foreign handles).
    pub fn is_fresh(&self, handle: CubeHandle) -> bool {
        self.catalog
            .get_entry(handle.0)
            .is_some_and(|e| e.is_fresh(&self.instance))
    }

    /// Marks the cube as used (for the eviction policy) and recomputes its
    /// payload if it was evicted or went stale behind an insert. Returns
    /// `true` if a recompute happened.
    pub fn touch(&mut self, handle: CubeHandle) -> Result<bool, CoreError> {
        let recomputed = self.catalog.ensure_resident(handle.0, &self.instance)?;
        self.catalog.touch(handle.0);
        Ok(recomputed)
    }

    /// Number of materialized cubes (including evicted entries).
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// True if no cube is materialized.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// The paper's problem statement in its general form: answers an
    /// *arbitrary* extended query by probing the catalog for cubes it can
    /// be soundly derived from — same canonical classifier body, measure
    /// and ⊕ (up to variable renaming and pattern order, see
    /// [`crate::signature`]) with compatibly related dimensions and Σ —
    /// and running the cheapest estimated route among the applicable
    /// derivations and from-scratch evaluation.
    ///
    /// The answered query is materialized either way, so it becomes a
    /// candidate source for future queries — except when it is an *exact
    /// duplicate* of an existing cube (identity dice with equal Σ and
    /// equal dimension names): then the existing handle is returned
    /// directly, so repeated traffic for the same query cannot grow the
    /// catalog (or its family index) without bound.
    pub fn answer_query(
        &mut self,
        eq: ExtendedQuery,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        let start = std::time::Instant::now();
        let plan_span = obs::span("plan");
        let sig = ViewSignature::of(eq.query());
        // Deduplicate before planning, so the guarantee does not depend on
        // which candidate the cost model happens to pick (or reject): an
        // entry in the family with the same canonical dimensions, the same
        // Σ, and the same user-facing dimension names would materialize
        // cell-identically under identical names — reuse it. (The dedup
        // path, like every serving path, goes through `ensure_resident`,
        // which also recomputes cells whose watermark the instance grew
        // past — repeated traffic can never be served stale cells.)
        if let Some(idx) = find_duplicate(&self.catalog, &sig, &eq) {
            drop(plan_span);
            let rehydrated;
            let explained;
            {
                let sp = obs::span("duplicate");
                rehydrated = self.catalog.ensure_resident(idx, &self.instance)?;
                self.catalog.touch(idx);
                self.catalog.record_hit();
                explained =
                    duplicate_explained(&self.catalog, idx, &eq, &self.instance, rehydrated);
                if sp.active() {
                    sp.attr("rehydrated", u64::from(rehydrated));
                }
            }
            record_strategy_span(&explained);
            self.catalog
                .record_query(&eq, &sig, &explained, start.elapsed().as_nanos() as u64);
            return Ok((CubeHandle(idx), explained));
        }
        let (pick, mut explained) = plan_in(&self.catalog, &self.instance, &eq, &sig);
        if plan_span.active() {
            plan_span.attr("candidates", explained.candidates as u64);
        }
        drop(plan_span);
        record_strategy_span(&explained);
        let (ans, pres) = match pick {
            Some((source_idx, d)) => {
                let sp = obs::span("derive");
                explained.rehydrated = self.catalog.ensure_resident(source_idx, &self.instance)?;
                let derived = self.derive(source_idx, &eq, &d)?;
                // Count the hit (and the source's LRU/benefit credit) only
                // once the derivation actually succeeded — a failing
                // rewrite must not inflate counters or eviction scores.
                self.catalog.touch(source_idx);
                self.catalog.record_hit();
                if sp.active() {
                    sp.detail(|| explained.strategy.to_string());
                    let source_cells = self
                        .catalog
                        .get_entry(source_idx)
                        .map_or(0, |e| e.stats().ans_cells as u64);
                    sp.rows(source_cells, derived.0.len() as u64);
                    sp.attr("rehydrated", u64::from(explained.rehydrated));
                }
                derived
            }
            None => {
                let sp = obs::span("from_scratch");
                self.catalog.record_miss();
                let computed = rewrite::from_scratch_with_pres(&eq, &self.instance)?;
                if sp.active() {
                    sp.rows(computed.1.len() as u64, computed.0.len() as u64);
                }
                computed
            }
        };
        self.catalog
            .record_query(&eq, &sig, &explained, start.elapsed().as_nanos() as u64);
        let watermark = self.instance.len();
        let sp = obs::span("materialize");
        if sp.active() {
            sp.rows(ans.len() as u64, ans.len() as u64);
            sp.bytes((ans.approx_bytes() + pres.approx_bytes()) as u64);
        }
        let idx = self.catalog.insert_signed(eq, sig, ans, pres, watermark);
        drop(sp);
        Ok((CubeHandle(idx), explained))
    }

    /// [`Self::answer_query`] under a structured trace: brackets the call
    /// in a [`QueryTrace`] whose span tree records where the answer's
    /// time, rows and bytes went (`plan → strategy → derive/from_scratch
    /// (→ BGP steps, join, group-aggregate, cube build) → materialize`),
    /// returned alongside the usual handle and [`ExplainedStrategy`].
    /// Render it with [`QueryTrace::render`] or
    /// [`crate::explain_analyze`].
    ///
    /// Only this call is traced: concurrent queries on other threads (and
    /// untraced queries on this one) pay a single atomic-load branch per
    /// instrumented stage. If a trace is already active on this thread,
    /// the outer trace wins and the returned trace is empty.
    pub fn answer_traced(
        &mut self,
        eq: ExtendedQuery,
    ) -> Result<(CubeHandle, ExplainedStrategy, QueryTrace), CoreError> {
        let began = obs::trace_begin("answer_query");
        let result = self.answer_query(eq);
        let trace = if began {
            obs::sink().traces.inc();
            obs::trace_end().unwrap_or_default()
        } else {
            QueryTrace::default()
        };
        let (handle, explained) = result?;
        Ok((handle, explained, trace))
    }

    /// Runs one workload-driven view-selection cycle (see
    /// [`crate::advisor`]): mines the catalog's query log, enumerates
    /// candidate lattice ancestors of the logged shapes, and greedily
    /// materializes the best benefit-per-byte set under the session's
    /// memory budget. A no-op when the log has not grown since the last
    /// run, so calling it repeatedly is idempotent.
    pub fn advise(&mut self) -> Result<crate::advisor::AdvisorReport, CoreError> {
        crate::advisor::advise_catalog(&mut self.catalog, &self.instance)
    }

    /// Plans `eq` without executing or materializing anything: probes the
    /// catalog index, classifies the candidate family, costs every
    /// applicable derivation, and returns the would-be choice.
    ///
    /// This is the strategy-selection path benchmark E10 measures.
    pub fn explain_query(&self, eq: &ExtendedQuery) -> ExplainedStrategy {
        let sig = ViewSignature::of(eq.query());
        plan_in(&self.catalog, &self.instance, eq, &sig).1
    }

    /// The pre-catalog baseline for benchmark E10: linearly rescans every
    /// materialized cube, re-canonicalizing its signatures per probe
    /// instead of using the [`ViewKey`](crate::signature::ViewKey) family
    /// index. Both planners funnel into the same costing loop
    /// ([`plan_in`]'s), so on any catalog state they choose the identical
    /// strategy and source — only the candidate-discovery work differs,
    /// and that per-probe re-canonicalization is exactly what E10
    /// measures.
    pub fn explain_query_linear(&self, target: &ExtendedQuery) -> ExplainedStrategy {
        plan_linear(&self.catalog, &self.instance, target).1
    }

    /// Executes a derivation against the (resident) source cube.
    fn derive(
        &self,
        source_idx: usize,
        target: &ExtendedQuery,
        d: &Derivation,
    ) -> Result<(Cube, PartialResult), CoreError> {
        let entry = self
            .catalog
            .get_entry(source_idx)
            .ok_or(CoreError::UnknownHandle(source_idx))?;
        let (source_ans, source_pres) = entry
            .payload()
            .ok_or(CoreError::CubeNotResident(source_idx))?;
        derive_with(
            &self.instance,
            entry.query(),
            source_ans,
            source_pres,
            target,
            d,
        )
    }

    /// Applies an OLAP operation to a materialized cube, answering the
    /// transformed query with the cheapest sound strategy the catalog
    /// offers (any materialized cube may serve as the source, not just
    /// `handle`); materializes and returns the new cube plus the explained
    /// strategy that produced it.
    pub fn transform(
        &mut self,
        handle: CubeHandle,
        op: &OlapOp,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        // ROLL-UP needs the dictionary to encode its mapping property, so
        // the rewritten query is built here rather than in bare `apply`.
        if let OlapOp::RollUp { dim, via } = op {
            return self.roll_up(handle, dim, via);
        }
        let source_eq = self
            .try_query(handle)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let new_eq = apply(source_eq, op)?;
        self.answer_query(new_eq)
    }

    /// [`Self::transform`] under a structured trace, the way
    /// [`Self::answer_traced`] wraps [`Self::answer_query`]. The trace is
    /// empty if another trace is already active on this thread.
    pub fn transform_traced(
        &mut self,
        handle: CubeHandle,
        op: &OlapOp,
    ) -> Result<(CubeHandle, ExplainedStrategy, QueryTrace), CoreError> {
        let began = obs::trace_begin("answer_query");
        let result = self.transform(handle, op);
        let trace = if began {
            obs::sink().traces.inc();
            obs::trace_end().unwrap_or_default()
        } else {
            QueryTrace::default()
        };
        let (new_handle, explained) = result?;
        Ok((new_handle, explained, trace))
    }

    /// Lock-free snapshot of the session catalog's metrics registry (see
    /// [`CubeCatalog::metrics_snapshot`]).
    pub fn metrics_snapshot(&self) -> rdfcube_obs::Snapshot {
        self.catalog.metrics_snapshot()
    }

    fn roll_up(
        &mut self,
        handle: CubeHandle,
        dim: &str,
        via: &str,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        let start = std::time::Instant::now();
        let via_id = Arc::make_mut(&mut self.instance)
            .dict_mut()
            .encode_owned(rdfcube_rdf::Term::iri(via));
        // Validate the operation against the source query *before* paying
        // for a possible rehydration.
        let source_eq = self
            .try_query(handle)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let new_eq = crate::olap::apply_roll_up_encoded(source_eq, dim, via_id)?;
        let dim_idx = source_eq.query().dim_index(dim)?;
        let coarse_name = new_eq.query().dim_names()[dim_idx].to_string();
        let rehydrated = self.touch(handle)?;

        let entry = self
            .catalog
            .get_entry(handle.0)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let (_, source_pres) = entry
            .payload()
            .ok_or(CoreError::CubeNotResident(handle.0))?;
        let explained = ExplainedStrategy {
            strategy: Strategy::RollUpComposition,
            source: Some(handle),
            estimated_cost: rewrite::roll_up_cost(source_pres.len()),
            scratch_cost: rewrite::scratch_cost(&new_eq, &self.instance),
            candidates: 1,
            catalog_hit: true,
            rehydrated,
        };
        record_strategy_span(&explained);
        let sp = obs::span("derive");
        let (ans, pres) =
            rewrite::roll_up_from_pres(source_pres, dim_idx, via_id, &coarse_name, &self.instance)?;
        if sp.active() {
            sp.detail(|| explained.strategy.to_string());
            sp.rows(source_pres.len() as u64, ans.len() as u64);
        }
        drop(sp);
        self.catalog.record_hit();
        let new_sig = ViewSignature::of(new_eq.query());
        self.catalog.record_query(
            &new_eq,
            &new_sig,
            &explained,
            start.elapsed().as_nanos() as u64,
        );
        let watermark = self.instance.len();
        let sp = obs::span("materialize");
        if sp.active() {
            sp.rows(ans.len() as u64, ans.len() as u64);
            sp.bytes((ans.approx_bytes() + pres.approx_bytes()) as u64);
        }
        let idx = self
            .catalog
            .insert_signed(new_eq, new_sig, ans, pres, watermark);
        drop(sp);
        Ok((CubeHandle(idx), explained))
    }
}

/// Emits the zero-duration `strategy` marker span carrying the planner's
/// decision, so every trace records the chosen strategy (and its cost
/// evidence) as a span the shape tests can match against the returned
/// [`ExplainedStrategy`]. A no-op branch when untraced.
pub(crate) fn record_strategy_span(explained: &ExplainedStrategy) {
    let sp = obs::span("strategy");
    if sp.active() {
        sp.detail(|| explained.strategy.to_string());
        if explained.estimated_cost.is_finite() {
            sp.attr("estimated_cost", explained.estimated_cost as u64);
        }
        if explained.scratch_cost.is_finite() {
            sp.attr("scratch_cost", explained.scratch_cost as u64);
        }
        sp.attr("candidates", explained.candidates as u64);
        sp.attr("catalog_hit", u64::from(explained.catalog_hit));
    }
}

/// Finds an *exact duplicate* of `eq` in the catalog: an entry of the same
/// derivation family with identical canonical dimensions, identical Σ, and
/// identical user-facing dimension names. Such an entry would materialize
/// cell-identically under identical names, so serving paths reuse it
/// instead of growing the catalog.
pub(crate) fn find_duplicate(
    catalog: &CubeCatalog,
    sig: &ViewSignature,
    eq: &ExtendedQuery,
) -> Option<usize> {
    catalog.family(&sig.key).iter().copied().find(|&idx| {
        let e = catalog.entry(idx);
        e.signature().dims == sig.dims
            && e.query().sigma() == eq.sigma()
            && e.query().query().dim_names() == eq.query().dim_names()
    })
}

/// The explanation reported when a query is served by an exact duplicate
/// (an identity dice over the existing entry's `ans`).
pub(crate) fn duplicate_explained(
    catalog: &CubeCatalog,
    idx: usize,
    eq: &ExtendedQuery,
    instance: &Graph,
    rehydrated: bool,
) -> ExplainedStrategy {
    let stats = catalog.entry(idx).stats();
    ExplainedStrategy {
        strategy: Strategy::SelectionOnAns,
        source: Some(CubeHandle(idx)),
        estimated_cost: rewrite::dice_cost(stats.ans_cells),
        scratch_cost: rewrite::scratch_cost(eq, instance),
        candidates: 1,
        catalog_hit: true,
        rehydrated,
    }
}

/// The single costing loop every planner funnels through.
///
/// Candidates must be offered in ascending catalog-index order; the strict
/// `<` comparison keeps the first of equal-cost candidates. Because the
/// indexed planner ([`plan_in`]) and the linear baseline ([`plan_linear`])
/// both discover family members in ascending index order and both offer
/// into this loop, they can never disagree on the chosen strategy or
/// source — that is the explain-equivalence guarantee the test suite
/// checks.
struct Costing {
    scratch: f64,
    best: Option<(usize, Derivation, f64)>,
    candidates: usize,
}

impl Costing {
    fn new(scratch: f64) -> Self {
        Costing {
            scratch,
            best: None,
            candidates: 0,
        }
    }

    fn offer(
        &mut self,
        idx: usize,
        entry: &crate::catalog::CatalogEntry,
        d: Derivation,
        eq: &ExtendedQuery,
        instance: &Graph,
    ) {
        self.candidates += 1;
        let mut cost = cost::derivation_cost(&d, entry, eq, instance);
        if !entry.is_resident() || !entry.is_fresh(instance) {
            // Using an evicted — or stale, which serving treats the same
            // way — source first pays its recomputation. Family members
            // share the target's body and measure, so the recompute
            // estimate IS the target's scratch estimate (no per-candidate
            // re-derivation needed). It is charged discounted: a full
            // surcharge would always equal or exceed the target's own
            // scratch cost and such sources could never win, whereas the
            // recompute is an investment (the refreshed source serves
            // future queries too), so half is billed to this query.
            cost += cost::REHYDRATION_CHARGE * self.scratch;
        }
        if self.best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
            self.best = Some((idx, d, cost));
        }
    }

    fn finish(self) -> (Option<(usize, Derivation)>, ExplainedStrategy) {
        match self.best {
            Some((idx, d, cost)) if cost < self.scratch => {
                let explained = ExplainedStrategy {
                    strategy: cost::strategy_of(&d),
                    source: Some(CubeHandle(idx)),
                    estimated_cost: cost,
                    scratch_cost: self.scratch,
                    candidates: self.candidates,
                    catalog_hit: true,
                    rehydrated: false,
                };
                (Some((idx, d)), explained)
            }
            _ => (
                None,
                ExplainedStrategy::scratch(self.scratch, self.candidates),
            ),
        }
    }
}

/// Probes the catalog through the signature index and costs every
/// applicable derivation of `eq`; returns the cheapest pick (if it beats
/// from-scratch) and the explanation. Shared by [`OlapSession`] and
/// [`SharedSession`].
pub(crate) fn plan_in(
    catalog: &CubeCatalog,
    instance: &Graph,
    eq: &ExtendedQuery,
    sig: &ViewSignature,
) -> (Option<(usize, Derivation)>, ExplainedStrategy) {
    let mut costing = Costing::new(rewrite::scratch_cost(eq, instance));
    for &idx in catalog.family(&sig.key) {
        let entry = catalog.entry(idx);
        let Some(d) = entry.classify(sig, eq.sigma()) else {
            continue;
        };
        costing.offer(idx, entry, d, eq, instance);
    }
    costing.finish()
}

/// The linear-rescan planner (benchmark E10's baseline): visits every
/// catalog entry and re-canonicalizes its signatures per probe instead of
/// using the family index, then costs through the same [`Costing`] loop
/// as [`plan_in`].
pub(crate) fn plan_linear(
    catalog: &CubeCatalog,
    instance: &Graph,
    target: &ExtendedQuery,
) -> (Option<(usize, Derivation)>, ExplainedStrategy) {
    let t_sig = ViewSignature::of(target.query());
    let mut costing = Costing::new(rewrite::scratch_cost(target, instance));
    for idx in 0..catalog.len() {
        let entry = catalog.entry(idx);
        let sq = entry.query().query();
        // Recompute everything per cube, as the pre-catalog session did.
        if sq.agg() != t_sig.key.agg || query_signature(sq.measure()) != t_sig.key.measure {
            continue;
        }
        let s_body = BodySignature::of(sq.classifier());
        if s_body.text != t_sig.key.body {
            continue;
        }
        // Same canonical body text with a different fact (root) variable
        // is a different derivation family. The indexed planner has always
        // keyed on the root; this rescan's original omission of the check
        // was the explain-drift bug.
        if s_body.name_of(sq.root()) != Some(t_sig.key.root.as_str()) {
            continue;
        }
        let Some(d) = entry.classify(&t_sig, target.sigma()) else {
            continue;
        };
        costing.offer(idx, entry, d, target, instance);
    }
    costing.finish()
}

/// Executes a derivation of `target` from an already-materialized source
/// payload. Free-standing so [`SharedSession`] can run it outside any
/// catalog lock, against payload `Arc`s it snapshotted earlier.
pub(crate) fn derive_with(
    instance: &Graph,
    source_eq: &ExtendedQuery,
    source_ans: &Cube,
    source_pres: &PartialResult,
    target: &ExtendedQuery,
    d: &Derivation,
) -> Result<(Cube, PartialResult), CoreError> {
    let dict = instance.dict();
    let target_names: Vec<String> = target
        .query()
        .dim_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let (mut ans, mut pres, inherited_sigma) = match d {
        Derivation::Dice => (
            rewrite::dice_from_ans(source_ans, target.sigma(), dict),
            rewrite::dice_pres(source_pres, target.sigma(), dict),
            target.sigma().clone(),
        ),
        Derivation::DrillOut(removed) => {
            let (ans, pres) = rewrite::drill_out_from_pres(source_pres, removed, dict)?;
            let inherited = source_eq.sigma().without_dims(removed);
            (ans, pres, inherited)
        }
        Derivation::DrillIn(var) => {
            let (ans, pres) =
                rewrite::drill_in_from_pres(source_eq.query(), source_pres, *var, instance)?;
            let inherited = source_eq.sigma().with_new_dim();
            (ans, pres, inherited)
        }
    };
    if target.sigma() != &inherited_sigma {
        ans = rewrite::dice_from_ans(&ans, target.sigma(), dict);
        pres = rewrite::dice_pres(&pres, target.sigma(), dict);
    }
    Ok((
        ans.with_dim_names(target_names.clone()),
        pres.with_dim_names(target_names),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extended::ValueSelector;
    use rdfcube_engine::AggValue;
    use rdfcube_rdf::{parse_turtle, Term};

    fn session() -> OlapSession {
        let instance = parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap();
        OlapSession::new(instance)
    }

    fn register_example_1(s: &mut OlapSession) -> CubeHandle {
        s.register(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
        )
        .unwrap()
    }

    #[test]
    fn register_materializes_ans_and_pres() {
        let mut s = session();
        let h = register_example_1(&mut s);
        assert_eq!(s.answer(h).len(), 2);
        assert_eq!(s.cube(h).pres().len(), 5);
        assert_eq!(s.len(), 1);
        assert!(s.is_resident(h));
        assert!(s.catalog().budget().is_none());
    }

    #[test]
    fn slice_uses_selection_on_ans() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::SelectionOnAns);
        assert!(strategy.catalog_hit);
        assert_eq!(strategy.source, Some(h));
        assert!(strategy.estimated_cost < strategy.scratch_cost);
        assert_eq!(s.answer(h2).len(), 1);
        // Verified against scratch.
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn widening_dice_is_served_by_the_broadest_source() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, st2) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        assert_eq!(st2, Strategy::SelectionOnAns);
        // Widen back to {28, 35}: not a refinement of the sliced cube, but
        // the catalog finds the original unrestricted cube and answers by
        // σ over it (the pre-catalog session, which only ever looked at
        // the direct source, fell back to from-scratch here).
        let (h3, st3) = s
            .transform(
                h2,
                &OlapOp::Dice {
                    constraints: vec![(
                        "dage".into(),
                        ValueSelector::OneOf(vec![Term::integer(28), Term::integer(35)]),
                    )],
                },
            )
            .unwrap();
        assert_eq!(st3, Strategy::SelectionOnAns);
        assert_eq!(st3.source, Some(h), "served from the unrestricted cube");
        assert_eq!(s.answer(h3).len(), 2);
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
    }

    #[test]
    fn drill_out_uses_algorithm_1() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn drill_out_of_sliced_dim_is_rerouted_to_a_sound_source() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        // Dropping the sliced dimension re-admits the sliced-out rows, so
        // the sliced cube itself is NOT a sound Algorithm 1 source; the
        // catalog derives from the unrestricted original instead.
        let (h3, strategy) = s
            .transform(
                h2,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        assert_eq!(strategy.source, Some(h), "sliced cube must not serve");
        // user1's posts are back in scope — the slice was not leaked.
        let cube = s.answer(h3);
        let ny = s.instance().dict().id(&Term::literal("NY")).unwrap();
        let madrid = s.instance().dict().id(&Term::literal("Madrid")).unwrap();
        assert_eq!(cube.get(&[ny]), Some(&AggValue::Int(2)));
        assert_eq!(cube.get(&[madrid]), Some(&AggValue::Int(3)));
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
    }

    #[test]
    fn drill_out_falls_back_when_no_sound_source_exists() {
        // Only a *sliced* cube is materialized: dropping its restricted
        // dimension has no sound source anywhere in the catalog.
        let mut s = session();
        let mut eq = s
            .parse_query(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
                AggFunc::Count,
            )
            .unwrap();
        let mut sigma = crate::extended::Sigma::all(2);
        sigma.set(0, ValueSelector::one(Term::integer(35)));
        eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        let h = s.register_query(eq).unwrap();
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::FromScratch);
        assert!(!strategy.catalog_hit);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn drill_out_on_remaining_restriction_still_uses_algorithm_1() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dcity".into(),
                    value: Term::literal("NY"),
                },
            )
            .unwrap();
        // Removing dage (unrestricted) keeps the dcity slice intact.
        let (h3, strategy) = s
            .transform(
                h2,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
    }

    #[test]
    fn drill_in_uses_algorithm_2_and_chains() {
        let mut s = session();
        let h = register_example_1(&mut s);
        // drill-out dage, then drill it back in: Example 3's round trip.
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        let (h3, strategy) = s
            .transform(h2, &OlapOp::DrillIn { var: "dage".into() })
            .unwrap();
        assert_eq!(strategy, Strategy::Algorithm2);
        let scratch = s.cube(h3).query().answer(s.instance()).unwrap();
        assert!(s.answer(h3).same_cells(&scratch));
        // Same cells as the original cube, modulo dimension order
        // (dcity, dage) vs (dage, dcity).
        assert_eq!(s.answer(h3).len(), s.answer(h).len());
    }

    /// Helper: an independently-written extended query over the session's
    /// instance (fresh variable names, different pattern order).
    fn independent_query(
        s: &mut OlapSession,
        classifier: &str,
        measure: &str,
        agg: AggFunc,
    ) -> ExtendedQuery {
        s.parse_query(classifier, measure, agg).unwrap()
    }

    #[test]
    fn answer_query_recognizes_renamed_dice() {
        let mut s = session();
        register_example_1(&mut s);
        // Same query, different variable names and pattern order, sliced.
        let mut eq = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
            "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
            AggFunc::Count,
        );
        let mut sigma = crate::extended::Sigma::all(2);
        sigma.set(0, ValueSelector::one(Term::integer(35)));
        eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();

        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::SelectionOnAns);
        assert_eq!(strategy.candidates, 1);
        // Stored under the new query's own dimension names.
        assert_eq!(
            s.answer(h).dim_names(),
            &["years".to_string(), "town".to_string()]
        );
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_derives_drill_out_from_materialization() {
        let mut s = session();
        register_example_1(&mut s);
        // A 1-D query whose body matches the registered 2-D cube.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_derives_drill_in_from_materialization() {
        let mut s = session();
        // Register a 1-D cube whose classifier mentions the city
        // existentially…
        s.register(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?c",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
            AggFunc::Count,
        )
        .unwrap();
        // …then ask the 2-D version: served by Algorithm 2.
        let eq = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u rdf:type Blogger, ?u hasAge ?years, ?u livesIn ?town",
            "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm2);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_falls_back_on_unrelated_queries() {
        let mut s = session();
        register_example_1(&mut s);
        // Different measure ⇒ no derivation.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u livesIn ?town",
            "w(?u, ?q) :- ?u wrotePost ?q",
            AggFunc::Count,
        );
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::FromScratch);
        assert_eq!(strategy.candidates, 0);
        assert_eq!(s.catalog().counters().misses, 1);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn answer_query_respects_sigma_soundness() {
        let mut s = session();
        let h = register_example_1(&mut s);
        // Slice the source on dage…
        let (sliced, _) = s
            .transform(
                h,
                &OlapOp::Slice {
                    dim: "dage".into(),
                    value: Term::integer(35),
                },
            )
            .unwrap();
        let _ = sliced;
        // …then ask an unrestricted 1-D drill-out of dage. The sliced cube
        // must NOT be used (its removed dim is restricted); the original
        // 2-D cube (unrestricted) is a sound source via Algorithm 1.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?x) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?x",
            AggFunc::Count,
        );
        let (h2, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        assert_eq!(strategy.source, Some(h));
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
        let madrid = s.instance().dict().id(&Term::literal("Madrid")).unwrap();
        // user1's three posts are present — the slice was not leaked.
        assert_eq!(s.answer(h2).get(&[madrid]), Some(&AggValue::Int(3)));
    }

    #[test]
    fn answer_query_combines_drill_out_with_dice() {
        let mut s = session();
        register_example_1(&mut s);
        // 1-D (city) with a restriction on the kept dim: Algorithm 1 then σ.
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?x) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?x",
            AggFunc::Count,
        );
        let mut sigma = crate::extended::Sigma::all(1);
        sigma.set(0, ValueSelector::one(Term::literal("NY")));
        let eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma).unwrap();
        let (h, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::Algorithm1);
        assert_eq!(s.answer(h).len(), 1);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
    }

    #[test]
    fn explain_query_plans_without_materializing() {
        let mut s = session();
        register_example_1(&mut s);
        let eq = independent_query(
            &mut s,
            "k(?u, ?town) :- ?u rdf:type Blogger, ?u hasAge ?age, ?u livesIn ?town",
            "w(?u, ?x) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?x",
            AggFunc::Count,
        );
        let explained = s.explain_query(&eq);
        assert_eq!(explained, Strategy::Algorithm1);
        assert!(explained.catalog_hit);
        assert_eq!(s.len(), 1, "planning must not materialize");

        // The linear baseline agrees on the choice here.
        let legacy = s.explain_query_linear(&eq);
        assert_eq!(legacy.strategy, explained.strategy);
        assert_eq!(legacy.source, explained.source);
    }

    #[test]
    fn budgeted_session_evicts_and_rehydrates_transparently() {
        let instance = Arc::unwrap_or_clone(session().instance);
        // Measure one cube's footprint in an unbudgeted dry run.
        let mut probe = OlapSession::new(instance.clone());
        let h0 = register_example_1(&mut probe);
        let one = probe.cube(h0).answer().approx_bytes() + probe.cube(h0).pres().approx_bytes();

        let mut s = OlapSession::with_budget(instance, one + one / 2);
        let h = register_example_1(&mut s);
        // A second, derived cube pushes the first out...
        let (h2, _) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert!(s.catalog().counters().evictions >= 1);
        assert!(s.catalog().resident_bytes() <= s.catalog().budget().unwrap());
        // ...but its handle still works: touch rehydrates.
        if !s.is_resident(h) {
            assert!(s.touch(h).unwrap());
        }
        assert_eq!(s.answer(h).len(), 2);
        let scratch = s.cube(h).query().answer(s.instance()).unwrap();
        assert!(s.answer(h).same_cells(&scratch));
        // Touching h may have pushed h2 out in turn; its handle also
        // survives the round trip. try_cube reports residency without
        // panicking either way.
        if s.try_cube(h2).is_none() {
            s.touch(h2).unwrap();
        }
        let scratch2 = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch2));
    }

    #[test]
    fn exact_duplicate_queries_reuse_the_existing_entry() {
        let mut s = session();
        let h = register_example_1(&mut s);
        // Same query re-posed verbatim (same Σ, same dimension names, only
        // variable names and pattern order changed — the canonical dims
        // resolve to the same user-facing names here because the query
        // keeps them): the catalog returns the existing handle instead of
        // materializing a copy.
        let eq = independent_query(
            &mut s,
            "k(?u, ?dage, ?dcity) :- ?u livesIn ?dcity, ?u hasAge ?dage, ?u rdf:type Blogger",
            "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
            AggFunc::Count,
        );
        let (h2, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(h2, h, "duplicate must reuse the existing entry");
        assert_eq!(strategy, Strategy::SelectionOnAns);
        assert_eq!(s.len(), 1, "no copy was materialized");
        // Repeating it a hundred times still does not grow the catalog.
        for _ in 0..100 {
            let eq = independent_query(
                &mut s,
                "k(?u, ?dage, ?dcity) :- ?u livesIn ?dcity, ?u hasAge ?dage, ?u rdf:type Blogger",
                "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
                AggFunc::Count,
            );
            s.answer_query(eq).unwrap();
        }
        assert_eq!(s.len(), 1);
        // A renamed-dimension duplicate is NOT deduplicated: the caller
        // asked for the cube under different names.
        let renamed = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
            "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
            AggFunc::Count,
        );
        let (h3, _) = s.answer_query(renamed).unwrap();
        assert_ne!(h3, h);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn planner_rehydrates_evicted_sources_when_still_cheapest() {
        let instance = Arc::unwrap_or_clone(session().instance);
        let mut probe = OlapSession::new(instance.clone());
        let h0 = register_example_1(&mut probe);
        let one = probe.cube(h0).answer().approx_bytes() + probe.cube(h0).pres().approx_bytes();

        let mut s = OlapSession::with_budget(instance, one + one / 2);
        let h = register_example_1(&mut s);
        // Evict the base by materializing a sibling via drill-out.
        let (_, _) = s
            .transform(
                h,
                &OlapOp::DrillOut {
                    dims: vec!["dage".into()],
                },
            )
            .unwrap();
        assert!(!s.is_resident(h), "base should be the eviction victim");
        // A renamed identity query over the base's family: σ over ans(Q)
        // plus the discounted rehydration charge still beats from-scratch,
        // so the planner rehydrates the evicted base instead of falling
        // back.
        let eq = independent_query(
            &mut s,
            "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
            "w(?u, ?s) :- ?u wrotePost ?q, ?q postedOn ?s, ?u rdf:type Blogger",
            AggFunc::Count,
        );
        let (h2, strategy) = s.answer_query(eq).unwrap();
        assert_eq!(strategy, Strategy::SelectionOnAns);
        assert_eq!(strategy.source, Some(h));
        assert!(strategy.rehydrated, "the evicted source was recomputed");
        assert!(s.catalog().counters().rehydrations >= 1);
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
    }

    #[test]
    fn roll_up_in_a_session() {
        let instance = parse_turtle(
            "<Madrid> <locatedIn> <Spain> . <NY> <locatedIn> <USA> .
             <user1> rdf:type <Blogger> ; <livesIn> <Madrid> ; <wrotePost> <p1> .
             <user3> rdf:type <Blogger> ; <livesIn> <NY> ; <wrotePost> <p2> .
             <user4> rdf:type <Blogger> ; <livesIn> <NY> ; <wrotePost> <p3> .",
        )
        .unwrap();
        let mut s = OlapSession::new(instance);
        let h = s
            .register(
                "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
                "m(?x, ?p) :- ?x wrotePost ?p",
                AggFunc::Count,
            )
            .unwrap();
        let (h2, strategy) = s
            .transform(
                h,
                &OlapOp::RollUp {
                    dim: "dcity".into(),
                    via: "locatedIn".into(),
                },
            )
            .unwrap();
        assert_eq!(strategy, Strategy::RollUpComposition);
        let spain = s.instance().dict().id(&Term::iri("Spain")).unwrap();
        let usa = s.instance().dict().id(&Term::iri("USA")).unwrap();
        assert_eq!(s.answer(h2).get(&[spain]), Some(&AggValue::Int(1)));
        assert_eq!(s.answer(h2).get(&[usa]), Some(&AggValue::Int(2)));
        // Consistent with evaluating Q_ROLL-UP from scratch.
        let scratch = s.cube(h2).query().answer(s.instance()).unwrap();
        assert!(s.answer(h2).same_cells(&scratch));
        // And the materialized roll-up supports further operations.
        let (h3, st3) = s
            .transform(
                h2,
                &OlapOp::Slice {
                    dim: "dcity_up".into(),
                    value: Term::iri("USA"),
                },
            )
            .unwrap();
        assert_eq!(st3, Strategy::SelectionOnAns);
        assert_eq!(s.answer(h3).len(), 1);
    }

    #[test]
    fn long_chain_remains_consistent_with_scratch() {
        let mut s = session();
        let h = register_example_1(&mut s);
        let (h1, _) = s
            .transform(
                h,
                &OlapOp::Dice {
                    constraints: vec![("dage".into(), ValueSelector::IntRange { lo: 20, hi: 40 })],
                },
            )
            .unwrap();
        let (h2, _) = s
            .transform(
                h1,
                &OlapOp::DrillOut {
                    dims: vec!["dcity".into()],
                },
            )
            .unwrap();
        let (h3, _) = s
            .transform(
                h2,
                &OlapOp::DrillIn {
                    var: "dcity".into(),
                },
            )
            .unwrap();
        for hi in [h1, h2, h3] {
            let scratch = s.cube(hi).query().answer(s.instance()).unwrap();
            assert!(s.answer(hi).same_cells(&scratch), "handle {hi:?} diverged");
        }
    }
}
